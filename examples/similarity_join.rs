//! Fuzzy similarity join on bit-string fingerprints (the §3 workload).
//!
//! ```sh
//! cargo run --example similarity_join
//! ```
//!
//! Scenario: a deduplication pipeline fingerprints records as 16-bit
//! sketches and must find all pairs differing in at most one bit. We
//! compare three mapping schemas on the *same* data — the one-reducer
//! baseline, Splitting, and the weight-based algorithm — and use the §1.2
//! cost model to pick one for a hypothetical cluster.

use mapreduce_bounds::core::cost::CostModel;
use mapreduce_bounds::core::model::{validate_schema, MappingSchema};
use mapreduce_bounds::core::problems::hamming::{HammingProblem, SplittingSchema, WeightSchema2D};

fn main() {
    let b = 16;
    let problem = HammingProblem::distance_one(b);
    println!(
        "Similarity join on {b}-bit fingerprints ({} potential keys)\n",
        1u64 << b
    );

    // Candidate schemas across the tradeoff curve.
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "schema", "q (max)", "r", "valid"
    );
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    for c in [1u32, 2, 4, 8] {
        let s = SplittingSchema::new(b, c);
        let report = validate_schema(&problem, &s);
        frontier.push((report.max_load as f64, report.replication_rate));
        println!(
            "{:<24} {:>10} {:>10.3} {:>8}",
            s.name(),
            report.max_load,
            report.replication_rate,
            report.is_valid()
        );
    }
    for k in [2u32, 4] {
        let s = WeightSchema2D::new(b, k);
        let report = validate_schema(&problem, &s);
        frontier.push((report.max_load as f64, report.replication_rate));
        println!(
            "{:<24} {:>10} {:>10.3} {:>8}",
            s.name(),
            report.max_load,
            report.replication_rate,
            report.is_valid()
        );
    }

    // §1.2: pick the cheapest point for two cluster profiles.
    // Reducers compare all pairs → processing ∝ q per unit of data
    // (O(q²) work × O(1/q) reducers).
    println!("\nCluster cost model a·r + b·q (Example 1.1):");
    for (name, a, bb) in [
        ("communication-expensive (egress billed)", 500.0, 0.01),
        ("compute-expensive (spot CPUs)", 1.0, 0.5),
    ] {
        let model = CostModel::linear(a, bb);
        let (q, r, cost) = model
            .cheapest_point(&frontier)
            .expect("frontier is non-empty");
        println!("  {name}: best q = {q:.0}, r = {r:.2}, cost = {cost:.1}");
    }

    println!("\nCommunication-expensive clusters pick big reducers (small r);");
    println!("compute-expensive clusters pick small reducers and pay for the");
    println!("extra replication — the tradeoff the paper quantifies.");
}
