//! A two-round SQL-style analytics pipeline (§7.1's open direction).
//!
//! ```sh
//! cargo run --example analytics_pipeline
//! ```
//!
//! Scenario: a clickstream warehouse computes
//! `SELECT user, COUNT(*) FROM sessions ⋈ clicks ⋈ purchases GROUP BY user`
//! as a chain join followed by aggregation. We run the naive plan (join,
//! then shuffle every joined row to the aggregators) and the pushed plan
//! (join reducers emit per-user partial counts), and compare total
//! communication — the §6.3 two-phase insight applied to SQL.

use mapreduce_bounds::core::problems::join::aggregate::{
    count_by_first_var_naive, count_by_first_var_pushed,
};
use mapreduce_bounds::core::problems::join::{optimize_shares, Database, Query, SharesSchema};
use mapreduce_bounds::sim::EngineConfig;

fn main() {
    // sessions(U, S) ⋈ clicks(S, I) ⋈ purchases(I, P): chain of 3.
    let query = Query::chain(3);
    let db = Database::random(&query, 40, 1200, 2026);
    println!("Chain join of 3 relations, 1200 rows each, domain 40.\n");

    let cfg = EngineConfig::parallel(4);
    println!(
        "{:>6} {:>12} {:>18} {:>18} {:>8}",
        "p", "join rows", "naive total comm", "pushed total comm", "saving"
    );
    for p in [4u64, 16, 64] {
        let shares = optimize_shares(&query, &[1200; 3], p);
        let schema = SharesSchema::new(query.clone(), shares);
        let (naive_counts, naive) = count_by_first_var_naive(&schema, &db, &cfg).unwrap();
        let (pushed_counts, pushed) = count_by_first_var_pushed(&schema, &db, &cfg).unwrap();
        assert_eq!(naive_counts, pushed_counts, "plans must agree");
        println!(
            "{:>6} {:>12} {:>18} {:>18} {:>8.2}",
            p,
            naive.rounds[1].inputs,
            naive.total_communication(),
            pushed.total_communication(),
            naive.total_communication() as f64 / pushed.total_communication() as f64
        );
    }

    println!("\nPartial-aggregation push-down is the matrix-multiplication");
    println!("two-phase trick (§6.3) applied to SQL: round-2 communication");
    println!("shrinks from the join size to (#reducers × #distinct groups),");
    println!("so the saving grows with the join's output blow-up.");
}
