//! Quickstart: define a problem, pick a mapping schema, validate it, and
//! run it on the simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the Hamming-distance-1 problem of §3 through the whole library:
//! closed-form bounds → schema validation → simulated execution.

use mapreduce_bounds::core::model::validate_schema;
use mapreduce_bounds::core::problems::hamming::{
    theorem32_lower_bound, HammingProblem, SplittingSchema,
};

fn main() {
    // The problem: all pairs of 12-bit strings at Hamming distance 1.
    let b = 12;
    let problem = HammingProblem::distance_one(b);
    println!("Hamming-distance-1 problem, b = {b}");
    println!("  |I| = {} potential inputs", problem.closed_form_inputs());
    println!(
        "  |O| = {} potential outputs",
        problem.closed_form_outputs()
    );

    // The paper's lower-bound recipe (§2.4 instantiated by Theorem 3.2):
    // any schema with reducer size q has replication rate >= b / log2(q).
    println!("\nTheorem 3.2 lower bounds:");
    for log_q in [1u32, 2, 3, 4, 6, 12] {
        let q = 1u64 << log_q;
        println!(
            "  q = 2^{log_q:<2} -> r >= {:.3}",
            theorem32_lower_bound(b, q as f64)
        );
    }

    // The Splitting algorithm (§3.3) meets the bound exactly at q = 2^{b/c}.
    println!("\nSplitting algorithm, validated exhaustively:");
    println!(
        "  {:>3} {:>8} {:>12} {:>12} {:>8}",
        "c", "q", "r (measured)", "r (bound)", "valid"
    );
    for c in [1u32, 2, 3, 4, 6, 12] {
        let schema = SplittingSchema::new(b, c);
        let report = validate_schema(&problem, &schema);
        println!(
            "  {:>3} {:>8} {:>12.3} {:>12.3} {:>8}",
            c,
            schema.q(),
            report.replication_rate,
            theorem32_lower_bound(b, schema.q() as f64),
            report.is_valid()
        );
    }

    println!("\nEvery row sits exactly on the hyperbola r = b/log2(q) — the");
    println!("dots of Figure 1. Smaller reducers (more parallelism) cost");
    println!("proportionally more communication, exactly as the paper says.");
}
