//! Star-schema warehouse join with the Shares algorithm (§5.5).
//!
//! ```sh
//! cargo run --example warehouse_join
//! ```
//!
//! Scenario: a sales fact table joined with three dimension tables
//! (customer, product, store). The Shares algorithm distributes the join
//! over a reducer grid; the share optimiser puts all parallelism on the
//! fact-table attributes (dimension tuples are replicated, fact tuples are
//! not), exactly as §5.5.2 prescribes. We verify the distributed join
//! against the serial baseline and compare the measured replication rate
//! with the closed-form star-join formula.

use mapreduce_bounds::core::problems::join::{
    optimize_shares, star_replication, Database, Query, SharesSchema,
};
use mapreduce_bounds::lp::fractional_edge_cover;
use mapreduce_bounds::sim::EngineConfig;

fn main() {
    let num_dims = 3;
    let query = Query::star(num_dims);
    println!("Star join: fact(C,P,S) ⋈ customer(C,·) ⋈ product(P,·) ⋈ store(S,·)");
    let (rho, _) = fractional_edge_cover(&query.hypergraph()).unwrap();
    println!("Query hypergraph ρ (fractional edge cover) = {rho:.1}\n");

    // A fact table much larger than the dimensions, as §5.5.2 assumes.
    let domain = 24u32;
    let (fact_size, dim_size) = (4000usize, 120usize);
    let db = Database::random_with_sizes(
        &query,
        domain,
        &[fact_size, dim_size, dim_size, dim_size],
        99,
    );
    let serial = db.join(&query);
    println!(
        "fact: {fact_size} rows, dimensions: {dim_size} rows each -> {} join results\n",
        serial.len()
    );

    println!(
        "{:>6} {:>18} {:>12} {:>12} {:>14} {:>8}",
        "p", "shares", "q (max)", "r (measured)", "r (formula)", "correct"
    );
    let sizes = vec![
        fact_size as u64,
        dim_size as u64,
        dim_size as u64,
        dim_size as u64,
    ];
    for p in [8u64, 64, 512] {
        let shares = optimize_shares(&query, &sizes, p);
        let schema = SharesSchema::new(query.clone(), shares.clone());
        let (mut got, metrics) = schema.run(&db, &EngineConfig::parallel(4)).unwrap();
        got.sort_unstable();
        let formula = star_replication(fact_size as f64, dim_size as f64, num_dims, p as f64);
        println!(
            "{:>6} {:>18} {:>12} {:>12.3} {:>14.3} {:>8}",
            p,
            format!("{shares:?}"),
            metrics.load.max,
            metrics.replication_rate(),
            formula,
            got == serial
        );
    }

    println!("\nThe optimiser never shares the dimensions' private attributes,");
    println!("fact tuples go to exactly one reducer, and replication grows as");
    println!("p^((N-1)/N) — the §5.5.2 star-join analysis, measured.");
}
