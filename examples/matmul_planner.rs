//! One-phase vs two-phase matrix multiplication (§6).
//!
//! ```sh
//! cargo run --example matmul_planner
//! ```
//!
//! Multiplies two 32×32 matrices both ways on the simulator, verifies the
//! numeric results against the serial product, and reproduces the §6.3
//! conclusion: the two-phase method communicates less for every reducer
//! budget `q < n²`, with the optimal first-phase blocks at aspect ratio
//! 2:1.

use mapreduce_bounds::core::family::Scale;
use mapreduce_bounds::core::problems::matmul::problem::run_one_phase;
use mapreduce_bounds::core::problems::matmul::{
    one_phase_communication, two_phase_communication, Matrix, OnePhaseSchema, TwoPhaseMatMul,
};
use mapreduce_bounds::plan::{plan_family, ClusterSpec};
use mapreduce_bounds::sim::EngineConfig;

fn main() {
    let n = 32u32;
    let a = Matrix::random(n as usize, 41);
    let b = Matrix::random(n as usize, 42);
    let expected = a.multiply(&b);
    println!("Multiplying {n}x{n} matrices; n² = {}\n", n * n);

    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>10}",
        "q", "1-phase comm", "2-phase comm", "winner", "correct"
    );
    for q in [128u64, 256, 512, 1024, 2048] {
        // One-phase: q = 2sn → s = q/(2n).
        let s = (q / (2 * n as u64)) as u32;
        let s = (1..=s).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1);
        let one = OnePhaseSchema::new(n, s);
        let (got1, m1) = run_one_phase(&a, &b, &one, &EngineConfig::parallel(4)).unwrap();

        // Two-phase: best (s, t) with 2st ≤ q.
        let two = TwoPhaseMatMul::for_budget(n, q);
        let (got2, m2) = two.run(&a, &b, &EngineConfig::parallel(4)).unwrap();

        let c1 = m1.kv_pairs;
        let c2 = m2.total_communication();
        let ok = got1.max_abs_diff(&expected) < 1e-9 && got2.max_abs_diff(&expected) < 1e-9;
        println!(
            "{:>8} {:>16} {:>16} {:>16} {:>10}",
            q,
            c1,
            c2,
            if c2 < c1 { "two-phase" } else { "one-phase" },
            ok
        );
    }

    println!(
        "\nAnalytic curves (4n⁴/q vs 4n³/√q) cross at q = n² = {}:",
        n * n
    );
    for q in [256.0, 1024.0, (n * n) as f64, 4.0 * (n * n) as f64] {
        println!(
            "  q = {:>6}: one-phase {:>10.0}, two-phase {:>10.0}",
            q,
            one_phase_communication(n, q),
            two_phase_communication(n, q)
        );
    }
    println!("\nBelow n² the two-phase method always communicates less —");
    println!("the surprise §6.3 highlights. (Both run the same arithmetic.)");

    // The mr-plan decision layer makes this call automatically from a
    // cluster spec (registry instance n = 8, so the crossover is q = 64).
    // The round-structure search prices every candidate per round, so we
    // use a communication-leaning cluster (b = a/50) — the regime where
    // §6.3's communication comparison decides the winner; price compute
    // high enough and a multi-round tree's smaller reducers win even
    // with no budget at all, which is correct but not the §6 story.
    println!("\nmr-plan makes the same decision from a cluster's q-budget (n=8, n²=64):");
    for budget in [16u64, 32, 63, 64, 128] {
        let cluster = ClusterSpec::new(4, 1.0, 0.02).with_q_budget(budget);
        let plan = plan_family("matmul", &cluster, Scale::Default).expect("feasible budget");
        let report = plan.execute().expect("plan fits its own budget");
        println!(
            "  q-budget {budget:>4} → {:<26} measured (q={}, r={})",
            plan.schema, report.measured_q, report.measured_r
        );
    }
    println!("\n(`repro plan matmul --q-budget N` prints the full rationale.)");
}
