//! Triangle counting in a sparse social graph (§4's motivating workload).
//!
//! ```sh
//! cargo run --example social_triangles
//! ```
//!
//! Generates a sparse Erdős–Rényi "friendship" graph, runs the
//! node-partition triangle algorithm on the simulator at several
//! parallelism levels, verifies the distributed answer against the serial
//! baseline, and compares the measured replication rate with the §4.2
//! sparse-graph lower bound √(m/q). Also shows what a skewed power-law
//! graph does to reducer load (the §1.4 caveat).

use mapreduce_bounds::core::problems::triangle::{sparse_lower_bound_r, NodePartitionSchema};
use mapreduce_bounds::graph::{gen, subgraph};
use mapreduce_bounds::sim::{run_schema, EngineConfig};

fn main() {
    let (n, m) = (300usize, 3_000usize);
    let g = gen::gnm(n, m, 2024);
    let serial = subgraph::triangle_count(&g);
    println!("Friendship graph: {n} people, {m} edges, {serial} triangles (serial count)\n");

    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "k", "reducers", "max load q", "r (measured)", "bound sqrt(m/q)", "correct"
    );
    for k in [2u32, 3, 4, 6, 8] {
        let schema = NodePartitionSchema::new(n as u32, k);
        let (found, metrics) = run_schema(g.edges(), &schema, &EngineConfig::parallel(4))
            .expect("no q bound configured");
        let q = metrics.load.max as f64;
        println!(
            "{:>4} {:>10} {:>12} {:>12.2} {:>14.2} {:>10}",
            k,
            metrics.reducers,
            metrics.load.max,
            metrics.replication_rate(),
            sparse_lower_bound_r(m as u64, q),
            found.len() as u64 == serial
        );
    }

    println!("\nMore groups -> more, smaller reducers -> higher replication,");
    println!("tracking the sqrt(m/q) lower bound within a constant factor.\n");

    // The skew caveat (§1.4): power-law graphs concentrate load.
    let pl = gen::power_law(n, 2.2, 2.0 * m as f64 / n as f64, 7);
    let schema = NodePartitionSchema::new(n as u32, 4);
    let (_, uniform) = run_schema(g.edges(), &schema, &EngineConfig::parallel(4)).unwrap();
    let (_, skewed) = run_schema(pl.edges(), &schema, &EngineConfig::parallel(4)).unwrap();
    println!("Load skew (max/mean reducer load) at k = 4:");
    println!("  Erdős–Rényi graph: {:.2}", uniform.load.skew());
    println!(
        "  power-law graph:   {:.2}  <- hub nodes overload reducers,",
        skewed.load.skew()
    );
    println!("     motivating the skew-handling work the paper cites (§1.4).");
}
