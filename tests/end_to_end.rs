//! Cross-crate integration tests: each paper experiment exercised end to
//! end at reduced scale — problem model + mapping schema + simulator +
//! serial baseline + closed-form bound, all in one path.

use mapreduce_bounds::core::model::validate_schema;
use mapreduce_bounds::core::problems::hamming::{
    theorem32_lower_bound, HammingProblem, SplittingSchema, WeightSchema2D,
};
use mapreduce_bounds::core::problems::join::{optimize_shares, Database, Query, SharesSchema};
use mapreduce_bounds::core::problems::matmul::problem::run_one_phase;
use mapreduce_bounds::core::problems::matmul::{Matrix, OnePhaseSchema, TwoPhaseMatMul};
use mapreduce_bounds::core::problems::triangle::{NodePartitionSchema, TriangleProblem};
use mapreduce_bounds::core::problems::two_path::{BucketPairSchema, TwoPathProblem};
use mapreduce_bounds::graph::{gen, subgraph};
use mapreduce_bounds::sim::{run_schema, EngineConfig};

/// §3: the full Hamming-distance-1 pipeline — every splitting point lies
/// exactly on the Theorem 3.2 hyperbola, and the schemas are valid.
#[test]
fn hamming_splitting_exactly_on_the_hyperbola() {
    let b = 12;
    let problem = HammingProblem::distance_one(b);
    for c in [1u32, 2, 3, 4, 6, 12] {
        let schema = SplittingSchema::new(b, c);
        let report = validate_schema(&problem, &schema);
        assert!(report.is_valid());
        let bound = theorem32_lower_bound(b, schema.q() as f64);
        assert!(
            (report.replication_rate - bound).abs() < 1e-9,
            "c={c}: r={} vs hyperbola {bound}",
            report.replication_rate
        );
    }
}

/// §3.4: the weight-based algorithm fills the gap between log2 q = b/2 and
/// b with replication strictly between 1 and 2.
#[test]
fn hamming_weight_algorithm_fills_the_large_q_gap() {
    let b = 12;
    let problem = HammingProblem::distance_one(b);
    let splitting_q = SplittingSchema::new(b, 2).q(); // 2^{b/2}
    let schema = WeightSchema2D::new(b, 3); // two buckets per half
    let report = validate_schema(&problem, &schema);
    assert!(report.is_valid());
    assert!(report.replication_rate < 2.0);
    assert!(report.replication_rate > 1.0);
    // Its reducers are much larger than splitting's at c=2...
    assert!(report.max_load > splitting_q);
    // ...but still well below the whole input.
    assert!(report.max_load < problem.closed_form_inputs());
}

/// §4: triangles — distributed output identical to serial, replication
/// within a constant factor of n/√(2q), on both engines.
#[test]
fn triangles_end_to_end() {
    let (n, m) = (80usize, 600usize);
    let g = gen::gnm(n, m, 31);
    let expected = {
        let mut t = subgraph::triangles(&g);
        t.sort_unstable();
        t
    };
    for workers in [1usize, 4] {
        let schema = NodePartitionSchema::new(n as u32, 5);
        let cfg = if workers == 1 {
            EngineConfig::sequential()
        } else {
            EngineConfig::parallel(workers)
        };
        let (mut found, metrics) = run_schema(g.edges(), &schema, &cfg).unwrap();
        found.sort_unstable();
        assert_eq!(found, expected, "workers={workers}");
        assert!(metrics.replication_rate() <= 5.0 + 1e-9);
    }
    // The model validation agrees with the paper's bound on the complete
    // instance.
    let problem = TriangleProblem::new(n as u32);
    let schema = NodePartitionSchema::new(n as u32, 5);
    let report = validate_schema(&problem, &schema);
    assert!(report.is_valid());
    let bound =
        mapreduce_bounds::core::problems::triangle::lower_bound_r(n as u32, report.max_load as f64);
    assert!(report.replication_rate >= bound * 0.9);
    assert!(report.replication_rate <= bound * 4.0);
}

/// §5.4: 2-paths — the bucket-pair algorithm enforces its q budget inside
/// the engine and produces each 2-path exactly once.
#[test]
fn two_paths_with_enforced_budget() {
    let n = 40u32;
    let k = 4u32;
    let g = gen::gnm(n as usize, 200, 5);
    let schema = BucketPairSchema::new(n, k);
    // The engine enforces q = 2·⌈n/k⌉ (the schema's declared budget).
    let cfg = EngineConfig::sequential().with_max_reducer_inputs(2 * n.div_ceil(k) as u64);
    let (mut found, _) = run_schema(g.edges(), &schema, &cfg).unwrap();
    found.sort_unstable();
    let mut expected = subgraph::two_paths(&g);
    expected.sort_unstable();
    assert_eq!(found, expected);

    // Model-level validity too.
    let problem = TwoPathProblem::new(n);
    let report = validate_schema(&problem, &schema);
    assert!(report.is_valid());
}

/// §5.5: chain join with optimised shares — distributed result equals the
/// serial join and the optimiser leaves endpoint attributes unshared.
#[test]
fn chain_join_with_optimized_shares() {
    let query = Query::chain(3);
    let db = Database::random(&query, 20, 150, 77);
    let expected = db.join(&query);
    let shares = optimize_shares(&query, &[150, 150, 150], 16);
    assert_eq!(shares[0], 1, "endpoint A0 must not be shared");
    assert_eq!(shares[3], 1, "endpoint A3 must not be shared");
    let schema = SharesSchema::new(query, shares);
    let (mut got, metrics) = schema.run(&db, &EngineConfig::parallel(4)).unwrap();
    got.sort_unstable();
    assert_eq!(got, expected);
    assert!(metrics.replication_rate() >= 1.0);
}

/// §6: both matrix-multiplication methods compute the exact product, and
/// the two-phase method communicates less at equal q below n².
#[test]
fn matmul_two_phase_beats_one_phase() {
    let n = 16u32;
    let a = Matrix::random(n as usize, 1);
    let b = Matrix::random(n as usize, 2);
    let expected = a.multiply(&b);

    // Equal budget q = 64 < n² = 256.
    let one = OnePhaseSchema::new(n, 2); // q = 2sn = 64
    assert_eq!(one.q(), 64);
    let two = TwoPhaseMatMul::for_budget(n, 64);

    let (p1, m1) = run_one_phase(&a, &b, &one, &EngineConfig::sequential()).unwrap();
    let (p2, m2) = two.run(&a, &b, &EngineConfig::sequential()).unwrap();
    assert!(p1.max_abs_diff(&expected) < 1e-9);
    assert!(p2.max_abs_diff(&expected) < 1e-9);
    assert!(
        m2.total_communication() < m1.kv_pairs,
        "two-phase {} !< one-phase {}",
        m2.total_communication(),
        m1.kv_pairs
    );
}

/// The engine rejects a schema that exceeds the configured q mid-run
/// (failure injection: budget breach must be loud, not silent).
#[test]
fn oversized_reducer_is_rejected_loudly() {
    let g = gen::gnm(30, 150, 3);
    let schema = NodePartitionSchema::new(30, 2);
    let cfg = EngineConfig::sequential().with_max_reducer_inputs(10);
    let err = run_schema::<_, [u32; 3], _>(g.edges(), &schema, &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("exceeding the budget"), "got: {msg}");
}

/// A deliberately broken schema is caught by exhaustive validation
/// (failure injection: uncovered outputs must be detected).
#[test]
fn broken_schema_is_detected_by_validation() {
    use mapreduce_bounds::core::model::{MappingSchema, ReducerId};

    struct DropHalf;
    impl MappingSchema<TriangleProblem> for DropHalf {
        fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
            // Edges incident to node 0 go nowhere useful.
            if input.0 == 0 {
                vec![1]
            } else {
                vec![0]
            }
        }
        fn max_inputs_per_reducer(&self) -> u64 {
            1000
        }
    }
    let problem = TriangleProblem::new(8);
    let report = validate_schema(&problem, &DropHalf);
    assert!(!report.is_valid());
    assert!(report.uncovered_outputs > 0);
}
