//! Property-based tests (proptest) over the core invariants:
//!
//! * the engine is deterministic across worker counts,
//! * every schema covers every output and reports exact replication,
//! * the distributed algorithms agree with serial baselines on random
//!   instances,
//! * the LP edge covers are always feasible,
//! * upper bounds never dip below the corresponding lower bounds.

use mapreduce_bounds::core::model::validate_schema;
use mapreduce_bounds::core::problems::hamming::{
    theorem32_lower_bound, HammingProblem, SplittingSchema,
};
use mapreduce_bounds::core::problems::join::{Database, Query, SharesSchema};
use mapreduce_bounds::core::problems::triangle::NodePartitionSchema;
use mapreduce_bounds::core::problems::two_path::BucketPairSchema;
use mapreduce_bounds::graph::{gen, subgraph};
use mapreduce_bounds::lp::{fractional_edge_cover, Hypergraph};
use mapreduce_bounds::sim::{run_round, run_schema, EngineConfig, FnMapper, FnReducer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel and sequential engines produce identical outputs and
    /// metrics for arbitrary modular-fanout jobs.
    #[test]
    fn engine_parallel_equals_sequential(
        inputs in proptest::collection::vec(0u32..1000, 1..300),
        fanout in 1u32..5,
        buckets in 1u32..20,
        workers in 2usize..8,
    ) {
        let mapper = FnMapper(move |x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            for t in 0..fanout {
                emit((x + t) % buckets, *x);
            }
        });
        let reducer = FnReducer(|k: &u32, vs: &[u32], emit: &mut dyn FnMut((u32, u64))| {
            emit((*k, vs.iter().map(|&v| v as u64).sum()))
        });
        let (o1, m1) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        let (o2, m2) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(m1.clone(), m2);
        // Replication identity: Σ qᵢ = kv_pairs = r·|I|.
        prop_assert_eq!(m1.load.total, m1.kv_pairs);
        prop_assert!((m1.replication_rate() * inputs.len() as f64 - m1.kv_pairs as f64).abs() < 1e-6);
    }

    /// Splitting schemas are valid for every divisor pair and sit exactly
    /// on the lower bound.
    #[test]
    fn splitting_always_valid_and_tight(b in 2u32..=10, c_idx in 0usize..4) {
        let divisors: Vec<u32> = (1..=b).filter(|d| b.is_multiple_of(*d)).collect();
        let c = divisors[c_idx % divisors.len()];
        let problem = HammingProblem::distance_one(b);
        let schema = SplittingSchema::new(b, c);
        let report = validate_schema(&problem, &schema);
        prop_assert!(report.is_valid());
        let bound = theorem32_lower_bound(b, schema.q() as f64);
        prop_assert!((report.replication_rate - bound).abs() < 1e-9);
    }

    /// The triangle schema finds exactly the serial baseline's triangles
    /// on arbitrary sparse graphs and group counts.
    #[test]
    fn triangle_schema_matches_serial(
        n in 10usize..40,
        density in 0.05f64..0.6,
        k in 1u32..8,
        seed in 0u64..1000,
    ) {
        let max_m = n * (n - 1) / 2;
        let m = ((max_m as f64 * density) as usize).max(1);
        let g = gen::gnm(n, m, seed);
        let k = k.min(n as u32);
        let schema = NodePartitionSchema::new(n as u32, k);
        let (mut found, _) = run_schema(g.edges(), &schema, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        let mut expected = subgraph::triangles(&g);
        expected.sort_unstable();
        prop_assert_eq!(found, expected);
    }

    /// The bucket-pair 2-path schema emits every 2-path exactly once on
    /// arbitrary graphs.
    #[test]
    fn two_path_schema_exactly_once(
        n in 6u32..30,
        density in 0.1f64..0.7,
        k in 2u32..6,
        seed in 0u64..1000,
    ) {
        let max_m = (n * (n - 1) / 2) as usize;
        let m = ((max_m as f64 * density) as usize).max(1);
        let g = gen::gnm(n as usize, m, seed);
        let schema = BucketPairSchema::new(n, k);
        let (mut found, _) = run_schema(g.edges(), &schema, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        let mut expected = subgraph::two_paths(&g);
        expected.sort_unstable();
        prop_assert_eq!(found, expected);
    }

    /// Shares computes the correct join for arbitrary chain lengths, share
    /// grids, and databases.
    #[test]
    fn shares_join_correct(
        n_rels in 1usize..4,
        domain in 4u32..16,
        per_rel in 5usize..40,
        shares_seed in 0u64..100,
        seed in 0u64..1000,
    ) {
        let query = Query::chain(n_rels);
        let db = Database::random(&query, domain, per_rel.min((domain as usize).pow(2)), seed);
        let expected = db.join(&query);
        // Derive a pseudo-random share vector with product ≤ 16.
        let mut shares = vec![1u64; query.num_vars];
        let mut budget = 16u64;
        let mut state = shares_seed;
        for share in shares.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = 1u64 << (state % 3); // 1, 2, or 4
            let pick = pick.min(budget);
            *share = pick;
            budget /= pick;
        }
        let schema = SharesSchema::new(query, shares);
        let (mut got, metrics) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert!(metrics.replication_rate() >= 1.0 - 1e-9);
    }

    /// Fractional edge covers from the LP are always feasible and at most
    /// the number of edges.
    #[test]
    fn edge_cover_always_feasible(
        num_vertices in 2usize..8,
        extra_edges in 0usize..6,
        seed in 0u64..1000,
    ) {
        // Build a connected-ish random hypergraph: a spanning path plus
        // random extra edges, so every vertex is covered.
        let mut edges: Vec<Vec<usize>> = (0..num_vertices - 1).map(|i| vec![i, i + 1]).collect();
        let mut state = seed;
        for _ in 0..extra_edges {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            let a = (state % num_vertices as u64) as usize;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            let b = (state % num_vertices as u64) as usize;
            if a != b {
                edges.push(vec![a.min(b), a.max(b)]);
            }
        }
        let h = Hypergraph::from_edges(num_vertices, edges);
        let (rho, x) = fractional_edge_cover(&h).unwrap();
        // Feasibility at every vertex.
        for v in 0..num_vertices {
            let covered: f64 = h
                .edges()
                .iter()
                .zip(&x)
                .filter(|(e, _)| e.contains(&v))
                .map(|(_, &w)| w)
                .sum();
            prop_assert!(covered >= 1.0 - 1e-6, "vertex {} uncovered", v);
        }
        prop_assert!(rho <= h.num_edges() as f64 + 1e-6);
        prop_assert!(rho >= 1.0 - 1e-6);
    }

    /// For every problem/schema pair we expose, the measured (upper-bound)
    /// replication never dips below the recipe's lower bound at the
    /// schema's achieved q.
    #[test]
    fn upper_bounds_dominate_lower_bounds(b in 4u32..=10, c_idx in 0usize..3) {
        let divisors: Vec<u32> = (1..=b).filter(|d| b.is_multiple_of(*d)).collect();
        let c = divisors[c_idx % divisors.len()];
        let problem = HammingProblem::distance_one(b);
        let schema = SplittingSchema::new(b, c);
        let report = validate_schema(&problem, &schema);
        let recipe = problem.recipe();
        let lower = recipe.clamped_lower_bound(report.max_load as f64);
        prop_assert!(
            report.replication_rate >= lower - 1e-9,
            "r={} < lower bound {}", report.replication_rate, lower
        );
    }
}
