#![warn(missing_docs)]

//! # mapreduce-bounds
//!
//! A reproduction of Afrati, Das Sarma, Salihoglu & Ullman,
//! *Upper and Lower Bounds on the Cost of a Map-Reduce Computation*
//! (VLDB 2013, arXiv:1206.4377), as a Rust workspace.
//!
//! This facade crate re-exports the four member crates:
//!
//! * [`sim`] — an instrumented in-process MapReduce engine,
//! * [`graph`] — graph data structures, generators, and serial baselines,
//! * [`lp`] — simplex solver, fractional edge covers, the AGM bound,
//! * [`core`] — the paper's model: problems, mapping schemas, and the
//!   lower-bound recipe.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! table/figure reproduction index. The `repro` binary in `mr-bench`
//! regenerates every table and figure.

pub use mr_core as core;
pub use mr_graph as graph;
pub use mr_lp as lp;
pub use mr_sim as sim;
