#![warn(missing_docs)]

//! # mapreduce-bounds
//!
//! A reproduction of Afrati, Das Sarma, Salihoglu & Ullman,
//! *Upper and Lower Bounds on the Cost of a Map-Reduce Computation*
//! (VLDB 2013, arXiv:1206.4377), as a Rust workspace.
//!
//! This facade crate re-exports the six member crates:
//!
//! * [`sim`] — an instrumented in-process MapReduce engine,
//! * [`graph`] — graph data structures, generators, and serial baselines,
//! * [`lp`] — simplex solver, fractional edge covers, the AGM bound, and
//!   the Shares-exponent LP,
//! * [`core`] — the paper's model: problems, mapping schemas, and the
//!   lower-bound recipe,
//! * [`plan`] — the cost-based planner: given a cluster spec, pick the
//!   cheapest algorithm per family and lower it onto the engine,
//! * [`obs`] — the structured tracing recorder and metrics hub the
//!   execution stack reports into (spans, counters, Chrome
//!   `trace_event` export).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! table/figure reproduction index. The `repro` binary in `mr-bench`
//! regenerates every table and figure.

pub use mr_core as core;
pub use mr_graph as graph;
pub use mr_lp as lp;
pub use mr_obs as obs;
pub use mr_plan as plan;
pub use mr_sim as sim;
