#![warn(missing_docs)]

//! Linear-programming substrate for the map-reduce bounds reproduction.
//!
//! §5.5.1 of the paper derives lower bounds for multiway joins from the
//! parameter `ρ`, the value of the **optimal fractional edge cover** of the
//! query hypergraph (Atserias–Grohe–Marx \[6\], Grohe–Marx \[10\]). Computing
//! `ρ` in general requires solving a small linear program, so this crate
//! provides:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule (`min cᵀx` subject to mixed `≤ / ≥ / =` constraints
//!   and `x ≥ 0`),
//! * [`cover`] — hypergraphs, the fractional edge cover LP, `ρ`, the
//!   AGM output-size bound `|O| ≤ Π_e |R_e|^{x_e}`, and the
//!   [`share_exponents`] LP the `mr-plan` layer
//!   uses to derive Shares grids (`s_v = p^{x_v}`).

pub mod cover;
pub mod simplex;

pub use cover::{agm_bound, fractional_edge_cover, share_exponents, Hypergraph};
pub use simplex::{Constraint, ConstraintOp, LinearProgram, LpError, LpSolution};
