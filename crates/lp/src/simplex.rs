//! Dense two-phase primal simplex.
//!
//! Solves `min cᵀx` subject to a list of linear constraints
//! (`aᵀx ≤ b`, `aᵀx ≥ b`, or `aᵀx = b`) and `x ≥ 0`.
//!
//! The implementation is a textbook tableau method:
//!
//! 1. every constraint is converted to an equality by adding a slack
//!    (`≤`) or subtracting a surplus (`≥`) variable, with rows negated so
//!    all right-hand sides are non-negative;
//! 2. phase 1 minimises the sum of artificial variables to find a basic
//!    feasible solution (infeasible if the optimum is positive);
//! 3. phase 2 minimises the real objective, with artificial variables
//!    barred from re-entering the basis.
//!
//! Pivoting uses **Bland's rule** (smallest eligible index) in both the
//! entering and leaving choices, which guarantees termination. The LPs in
//! this workspace are tiny (edge-cover programs of a handful of variables),
//! so the `O(m·n)` per-iteration dense pricing is irrelevant to performance.

/// Numerical tolerance for feasibility/optimality tests.
const EPS: f64 = 1e-9;

/// The sense of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// One linear constraint `coeffs · x <op> rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient per structural variable (must match
    /// [`LinearProgram::num_vars`]).
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `min objective · x` s.t. `constraints`, `x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Number of structural (decision) variables.
    pub num_vars: usize,
    /// Objective coefficients (length `num_vars`).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub value: f64,
}

/// Solver failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

impl LinearProgram {
    /// Creates an LP with `num_vars` variables and the given minimisation
    /// objective.
    ///
    /// # Panics
    /// Panics if `objective.len() != num_vars`.
    pub fn minimize(num_vars: usize, objective: Vec<f64>) -> Self {
        assert_eq!(objective.len(), num_vars, "objective length mismatch");
        LinearProgram {
            num_vars,
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != num_vars`.
    pub fn constrain(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.num_vars, "constraint length mismatch");
        self.constraints.push(Constraint { coeffs, op, rhs });
        self
    }

    /// Solves the program with two-phase primal simplex.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        Tableau::build(self).solve()
    }
}

/// Internal simplex tableau in canonical form: every basic variable's
/// column is a unit vector.
struct Tableau {
    /// `rows x cols` coefficient matrix; the last column is the RHS.
    t: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Index of the first artificial variable (columns `>= art_start` and
    /// `< num_cols` are artificial).
    art_start: usize,
    /// Number of variable columns (excluding RHS).
    num_cols: usize,
    /// Number of structural variables.
    n: usize,
    /// Original objective, padded with zeros over slack/artificial columns.
    cost: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.constraints.len();
        let n = lp.num_vars;
        // Count slack/surplus columns (one per Le/Ge row).
        let num_slack = lp
            .constraints
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        // One artificial per row is sufficient (some could be elided for Le
        // rows with non-negative rhs, but uniformity keeps the code simple).
        let num_art = m;
        let num_cols = n + num_slack + num_art;
        let art_start = n + num_slack;

        let mut t = vec![vec![0.0; num_cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        for (i, c) in lp.constraints.iter().enumerate() {
            // Normalise row so rhs >= 0.
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for (j, &a) in c.coeffs.iter().enumerate() {
                t[i][j] = sign * a;
            }
            t[i][num_cols] = sign * c.rhs;
            let effective_op = match (c.op, flip) {
                (ConstraintOp::Eq, _) => ConstraintOp::Eq,
                (op, false) => op,
                (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Ge, true) => ConstraintOp::Le,
            };
            match effective_op {
                ConstraintOp::Le => {
                    t[i][slack_idx] = 1.0;
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    t[i][slack_idx] = -1.0;
                    slack_idx += 1;
                }
                ConstraintOp::Eq => {}
            }
            // Artificial variable, basic in this row.
            t[i][art_start + i] = 1.0;
            basis[i] = art_start + i;
        }

        let mut cost = vec![0.0; num_cols];
        cost[..n].copy_from_slice(&lp.objective);

        Tableau {
            t,
            basis,
            art_start,
            num_cols,
            n,
            cost,
        }
    }

    /// Reduced cost of column `j` under cost vector `c`:
    /// `r_j = c_j − Σ_i c_{basis[i]} · T[i][j]`.
    fn reduced_cost(&self, c: &[f64], j: usize) -> f64 {
        let mut r = c[j];
        for (i, row) in self.t.iter().enumerate() {
            let cb = c[self.basis[i]];
            if cb != 0.0 {
                r -= cb * row[j];
            }
        }
        r
    }

    /// Runs simplex to optimality for cost vector `c`.
    /// `allow` filters which columns may enter the basis.
    fn optimize(&mut self, c: &[f64], allow: impl Fn(usize) -> bool) -> Result<(), LpError> {
        loop {
            // Bland: entering column = smallest index with negative reduced
            // cost.
            let entering = (0..self.num_cols)
                .filter(|&j| allow(j))
                .find(|&j| self.reduced_cost(c, j) < -EPS);
            let Some(e) = entering else {
                return Ok(()); // optimal
            };
            // Ratio test, Bland tie-break on basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.t.len() {
                let a = self.t[i][e];
                if a > EPS {
                    let ratio = self.t[i][self.num_cols] / a;
                    let better = match leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < lr - EPS || (ratio < lr + EPS && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((l, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(l, e);
        }
    }

    /// Pivots on `(row, col)`: normalises the pivot row and eliminates the
    /// column from every other row.
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.t[row][col];
        debug_assert!(piv.abs() > EPS, "pivot element too small");
        for v in &mut self.t[row] {
            *v /= piv;
        }
        let pivot_row = self.t[row].clone();
        for (i, r) in self.t.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor != 0.0 {
                for (v, &p) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
            }
        }
        self.basis[row] = col;
    }

    fn solve(mut self) -> Result<LpSolution, LpError> {
        // Phase 1: minimise the sum of artificials.
        let mut phase1_cost = vec![0.0; self.num_cols];
        phase1_cost[self.art_start..].fill(1.0);
        self.optimize(&phase1_cost, |_| true)?;
        let phase1_value: f64 = (0..self.t.len())
            .map(|i| {
                if self.basis[i] >= self.art_start {
                    self.t[i][self.num_cols]
                } else {
                    0.0
                }
            })
            .sum();
        if phase1_value > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any basic artificials (at zero level) out of the basis.
        for i in 0..self.t.len() {
            if self.basis[i] >= self.art_start {
                if let Some(j) = (0..self.art_start).find(|&j| self.t[i][j].abs() > EPS) {
                    self.pivot(i, j);
                }
                // Otherwise the row is redundant (all-zero over real
                // columns); the artificial stays basic at value 0, which is
                // harmless for phase 2.
            }
        }
        // Phase 2: minimise the true objective; artificials may not enter.
        let art_start = self.art_start;
        let cost = self.cost.clone();
        self.optimize(&cost, |j| j < art_start)?;

        let mut x = vec![0.0; self.n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                x[b] = self.t[i][self.num_cols];
            }
        }
        let value = x
            .iter()
            .zip(&self.cost[..self.n])
            .map(|(xi, ci)| xi * ci)
            .sum();
        Ok(LpSolution { x, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivial_one_var() {
        // min x s.t. x >= 3
        let mut lp = LinearProgram::minimize(1, vec![1.0]);
        lp.constrain(vec![1.0], ConstraintOp::Ge, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 3.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn two_var_diet_style() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6
        let mut lp = LinearProgram::minimize(2, vec![2.0, 3.0]);
        lp.constrain(vec![1.0, 1.0], ConstraintOp::Ge, 4.0);
        lp.constrain(vec![1.0, 3.0], ConstraintOp::Ge, 6.0);
        let s = lp.solve().unwrap();
        // Optimal at intersection x=3, y=1: value 9.
        assert_close(s.value, 9.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn maximization_via_negation() {
        // max x + y s.t. x <= 2, y <= 3, x + y <= 4
        // == min -(x + y); optimum 4.
        let mut lp = LinearProgram::minimize(2, vec![-1.0, -1.0]);
        lp.constrain(vec![1.0, 0.0], ConstraintOp::Le, 2.0);
        lp.constrain(vec![0.0, 1.0], ConstraintOp::Le, 3.0);
        lp.constrain(vec![1.0, 1.0], ConstraintOp::Le, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, -4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 5, x <= 3  →  x=3, y=2, value 7.
        let mut lp = LinearProgram::minimize(2, vec![1.0, 2.0]);
        lp.constrain(vec![1.0, 1.0], ConstraintOp::Eq, 5.0);
        lp.constrain(vec![1.0, 0.0], ConstraintOp::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 7.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 5 and x <= 2 cannot hold.
        let mut lp = LinearProgram::minimize(1, vec![1.0]);
        lp.constrain(vec![1.0], ConstraintOp::Ge, 5.0);
        lp.constrain(vec![1.0], ConstraintOp::Le, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x >= 0 (implicit): unbounded below.
        let mut lp = LinearProgram::minimize(1, vec![-1.0]);
        lp.constrain(vec![1.0], ConstraintOp::Ge, 0.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x s.t. -x <= -2  (i.e. x >= 2)
        let mut lp = LinearProgram::minimize(1, vec![1.0]);
        lp.constrain(vec![-1.0], ConstraintOp::Le, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland's rule must terminate.
        let mut lp = LinearProgram::minimize(3, vec![-0.75, 150.0, -0.02]);
        lp.constrain(vec![0.25, -60.0, -0.04], ConstraintOp::Le, 0.0);
        lp.constrain(vec![0.5, -90.0, -0.02], ConstraintOp::Le, 0.0);
        lp.constrain(vec![0.0, 0.0, 1.0], ConstraintOp::Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(s.value.is_finite());
    }

    #[test]
    fn fractional_vertex_solution() {
        // Triangle edge cover: min x1+x2+x3 with each pair summing >= 1.
        // Optimum is x = (1/2, 1/2, 1/2), value 3/2 — a fractional vertex.
        let mut lp = LinearProgram::minimize(3, vec![1.0, 1.0, 1.0]);
        lp.constrain(vec![1.0, 1.0, 0.0], ConstraintOp::Ge, 1.0);
        lp.constrain(vec![1.0, 0.0, 1.0], ConstraintOp::Ge, 1.0);
        lp.constrain(vec![0.0, 1.0, 1.0], ConstraintOp::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, 1.5);
        for xi in &s.x {
            assert_close(*xi, 0.5);
        }
    }

    #[test]
    fn zero_constraint_lp() {
        // No constraints: min of a non-negative objective is 0 at origin.
        let lp = LinearProgram::minimize(2, vec![3.0, 5.0]);
        let s = lp.solve().unwrap();
        assert_close(s.value, 0.0);
    }

    #[test]
    fn conflicting_equalities_are_infeasible() {
        // x + y = 1 and x + y = 2 — the phase-1 optimum stays positive.
        let mut lp = LinearProgram::minimize(2, vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 1.0], ConstraintOp::Eq, 1.0);
        lp.constrain(vec![1.0, 1.0], ConstraintOp::Eq, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_beats_unbounded_in_reporting() {
        // Empty feasible region AND an objective that would be unbounded
        // on the relaxation: infeasibility must be detected first (phase 1
        // runs before phase 2 can chase the unbounded direction).
        let mut lp = LinearProgram::minimize(2, vec![-1.0, 0.0]);
        lp.constrain(vec![0.0, 1.0], ConstraintOp::Ge, 3.0);
        lp.constrain(vec![0.0, 1.0], ConstraintOp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_with_equality_side_constraint() {
        // min -x s.t. y = 1: x can grow without bound while the equality
        // pins y. The ray must be reported as Unbounded, not looped on.
        let mut lp = LinearProgram::minimize(2, vec![-1.0, 0.0]);
        lp.constrain(vec![0.0, 1.0], ConstraintOp::Eq, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_share_exponent_program_terminates_at_optimum() {
        // Regression for the planner's Shares path: the share-exponent LP
        // of the 4-cycle query R(A,B) ⋈ S(B,C) ⋈ T(C,D) ⋈ U(D,A).
        // Variables x_0..x_3, τ; max τ s.t. every edge's x-sum ≥ τ and
        // Σ x = 1. The optimum τ = 1/2 is *massively degenerate*: both
        // x = (¼,¼,¼,¼) and x = (½,0,½,0) (and every convex combination)
        // are optimal vertices, so the solver walks ties — Bland's rule
        // must terminate and report the right value, not cycle or return
        // a sub-optimal basic solution.
        let mut lp = LinearProgram::minimize(5, vec![0.0, 0.0, 0.0, 0.0, -1.0]);
        for (u, v) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            let mut coeffs = vec![0.0; 5];
            coeffs[u] = 1.0;
            coeffs[v] = 1.0;
            coeffs[4] = -1.0;
            lp.constrain(coeffs, ConstraintOp::Ge, 0.0);
        }
        lp.constrain(vec![1.0, 1.0, 1.0, 1.0, 0.0], ConstraintOp::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.value, -0.5); // τ = 1/2
        assert_close(s.x[..4].iter().sum::<f64>(), 1.0);
        // Whatever optimal vertex was returned, it must be feasible.
        for (u, v) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            assert!(s.x[u] + s.x[v] >= 0.5 - 1e-6, "edge ({u},{v}) under τ");
        }
    }
}
