//! Hypergraphs, fractional edge covers, and the AGM output bound.
//!
//! A multiway join `R_1 ⋈ … ⋈ R_s` over variables `A_1 … A_m` corresponds to
//! a hypergraph `G(q)` whose vertices are the variables and whose edges are
//! the relation schemas (§5.5). The **optimal fractional edge cover**
//! assigns a weight `x_e ≥ 0` to every edge so that each vertex is covered
//! with total weight ≥ 1, minimising `Σ x_e`; its value is the paper's
//! parameter `ρ`, and Atserias–Grohe–Marx show the join output is at most
//! `Π_e |R_e|^{x_e}`.

use crate::simplex::{ConstraintOp, LinearProgram, LpError};

/// A hypergraph over vertices `0..num_vertices`; each edge is the set of
/// vertices (query variables) of one relation schema.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph with no edges.
    pub fn new(num_vertices: usize) -> Self {
        Hypergraph {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Builds a hypergraph from an edge list.
    ///
    /// # Panics
    /// Panics if an edge mentions an out-of-range vertex or is empty.
    pub fn from_edges(num_vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        let mut h = Hypergraph::new(num_vertices);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// Adds one hyperedge.
    ///
    /// # Panics
    /// Panics if the edge is empty or mentions an out-of-range vertex.
    pub fn add_edge(&mut self, mut vertices: Vec<usize>) -> &mut Self {
        assert!(!vertices.is_empty(), "hyperedges must be non-empty");
        vertices.sort_unstable();
        vertices.dedup();
        for &v in &vertices {
            assert!(
                v < self.num_vertices,
                "vertex {v} out of range (num_vertices={})",
                self.num_vertices
            );
        }
        self.edges.push(vertices);
        self
    }

    /// Number of vertices (query variables, the paper's `m`).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges (relational atoms, the paper's `s`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The vertex sets of the edges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// The **chain-join** hypergraph: `N` binary edges
    /// `{0,1}, {1,2}, …, {N-1,N}` over `N+1` vertices (§5.5.2).
    pub fn chain(num_relations: usize) -> Self {
        Hypergraph::from_edges(
            num_relations + 1,
            (0..num_relations).map(|i| vec![i, i + 1]).collect(),
        )
    }

    /// The **cycle** hypergraph: `k` binary edges around `k` vertices
    /// (the triangle is `cycle(3)`).
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3, "a cycle needs at least 3 vertices");
        Hypergraph::from_edges(k, (0..k).map(|i| vec![i, (i + 1) % k]).collect())
    }

    /// The **clique** hypergraph: all `(k 2)` binary edges on `k` vertices.
    pub fn clique(k: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push(vec![i, j]);
            }
        }
        Hypergraph::from_edges(k, edges)
    }

    /// The **star-join** hypergraph (§5.5.2): a fact edge over all
    /// `N` dimension-shared attributes plus, per dimension table `i`, an
    /// edge over its shared attribute and `m1` private attributes.
    ///
    /// Vertex layout: `0..n_dims` are the fact-shared attributes;
    /// `n_dims + i*m1 ..` are dimension `i`'s private attributes.
    pub fn star(n_dims: usize, m1: usize) -> Self {
        let num_vertices = n_dims + n_dims * m1;
        let mut h = Hypergraph::new(num_vertices);
        h.add_edge((0..n_dims).collect()); // fact table
        for i in 0..n_dims {
            let mut e = vec![i];
            for j in 0..m1 {
                e.push(n_dims + i * m1 + j);
            }
            h.add_edge(e);
        }
        h
    }

    /// Builds the fractional edge cover LP:
    /// `min Σ_e x_e` s.t. `Σ_{e ∋ v} x_e ≥ 1` for every vertex `v`, `x ≥ 0`.
    pub fn edge_cover_lp(&self) -> LinearProgram {
        let ne = self.edges.len();
        let mut lp = LinearProgram::minimize(ne, vec![1.0; ne]);
        for v in 0..self.num_vertices {
            let coeffs: Vec<f64> = self
                .edges
                .iter()
                .map(|e| {
                    if e.binary_search(&v).is_ok() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            lp.constrain(coeffs, ConstraintOp::Ge, 1.0);
        }
        lp
    }
}

/// The optimal fractional edge cover: returns `(ρ, x)` where `ρ = Σ x_e` is
/// minimal. Fails with [`LpError::Infeasible`] when some vertex belongs to
/// no edge.
pub fn fractional_edge_cover(h: &Hypergraph) -> Result<(f64, Vec<f64>), LpError> {
    let sol = h.edge_cover_lp().solve()?;
    Ok((sol.value, sol.x))
}

/// The Atserias–Grohe–Marx bound on the join output size:
/// `|O| ≤ Π_e |R_e|^{x_e}` for any feasible fractional edge cover `x`.
///
/// # Panics
/// Panics if `sizes.len()` differs from the number of edges in `h`, or the
/// cover vector length mismatches.
pub fn agm_bound(h: &Hypergraph, sizes: &[f64], cover: &[f64]) -> f64 {
    assert_eq!(sizes.len(), h.num_edges(), "one size per relation");
    assert_eq!(cover.len(), h.num_edges(), "one weight per relation");
    sizes.iter().zip(cover).map(|(&s, &x)| s.powf(x)).product()
}

/// `g(q) = q^ρ`: the paper's upper bound on the number of join outputs a
/// reducer with `q` inputs can cover (§5.5.1), obtained by applying the AGM
/// bound with every relation of size `q`.
pub fn g_of_q(rho: f64, q: f64) -> f64 {
    q.powf(rho)
}

/// **Share exponents** for the Shares algorithm on `h`'s query, in the
/// spirit of the Afrati–Ullman share optimisation and the fractional-cover
/// machinery of Abo Khamis–Ngo–Suciu: weights `x_v ≥ 0` with
/// `Σ_v x_v = 1` so that each variable's share is `s_v = p^{x_v}` for a
/// reducer budget `p`.
///
/// A tuple of atom `e` is replicated to `Π_{v ∉ e} s_v = p^{1 − Σ_{v∈e} x_v}`
/// reducers, so the worst atom replicates `p^{1−τ}` times with
/// `τ = min_e Σ_{v∈e} x_v`. The optimal exponents therefore **maximise τ**
/// — an LP solved here by the two-phase simplex:
///
/// ```text
/// max τ  s.t.  Σ_{v∈e} x_v ≥ τ  for every atom e,
///              Σ_v x_v = 1,  x ≥ 0, τ ≥ 0.
/// ```
///
/// Returns `(τ, x)`. For the `k`-cycle query the optimum is the symmetric
/// `x_v = 1/k`, `τ = 2/k` — for the triangle, shares `p^{1/3}` per
/// variable, the planner's cycle-join configuration. Fails with
/// [`LpError::Infeasible`] only when the hypergraph has no edges at all
/// (no atom to cover any weight).
pub fn share_exponents(h: &Hypergraph) -> Result<(f64, Vec<f64>), LpError> {
    if h.num_edges() == 0 {
        return Err(LpError::Infeasible);
    }
    let m = h.num_vertices();
    // Variables: x_0 .. x_{m-1}, then τ at index m. Minimise -τ.
    let mut objective = vec![0.0; m + 1];
    objective[m] = -1.0;
    let mut lp = LinearProgram::minimize(m + 1, objective);
    for e in h.edges() {
        let mut coeffs = vec![0.0; m + 1];
        for &v in e {
            coeffs[v] = 1.0;
        }
        coeffs[m] = -1.0;
        lp.constrain(coeffs, ConstraintOp::Ge, 0.0);
    }
    let mut sum = vec![1.0; m + 1];
    sum[m] = 0.0;
    lp.constrain(sum, ConstraintOp::Eq, 1.0);
    let sol = lp.solve()?;
    let tau = sol.x[m];
    Ok((tau, sol.x[..m].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rho(h: &Hypergraph) -> f64 {
        fractional_edge_cover(h).expect("cover exists").0
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn triangle_rho_is_three_halves() {
        // Each edge gets weight 1/2; AGM gives the m^{3/2} triangle bound.
        assert_close(rho(&Hypergraph::cycle(3)), 1.5);
    }

    #[test]
    fn cycle_rho_is_half_length() {
        for k in 3..=8 {
            assert_close(rho(&Hypergraph::cycle(k)), k as f64 / 2.0);
        }
    }

    #[test]
    fn clique_rho_is_half_vertices() {
        for k in 2..=6 {
            assert_close(rho(&Hypergraph::clique(k)), k as f64 / 2.0);
        }
    }

    #[test]
    fn chain_rho_is_ceil_half_vertices() {
        // Path with N edges over N+1 vertices: ρ = ceil((N+1)/2).
        // For odd N this is the paper's (N+1)/2 (§5.5.2).
        for n in 1..=8usize {
            let expected = (n + 2) / 2; // ceil((n+1)/2)
            assert_close(rho(&Hypergraph::chain(n)), expected as f64);
        }
    }

    #[test]
    fn star_join_rho() {
        // Fact edge covers all shared attributes, but each dimension's
        // private attributes force its own edge to weight 1: ρ = N when
        // dimensions have private attributes (m1 >= 1). The fact edge is
        // then already covered by the dimension weights... but shared
        // attributes are covered by dimension edges too, so ρ = N exactly.
        for n_dims in 2..=4 {
            assert_close(rho(&Hypergraph::star(n_dims, 1)), n_dims as f64);
        }
        // With no private attributes the fact edge alone covers everything.
        assert_close(rho(&Hypergraph::star(3, 0)), 1.0);
    }

    #[test]
    fn single_edge_rho_is_one() {
        let h = Hypergraph::from_edges(2, vec![vec![0, 1]]);
        assert_close(rho(&h), 1.0);
    }

    #[test]
    fn isolated_vertex_is_infeasible() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert_eq!(fractional_edge_cover(&h).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn agm_bound_triangle() {
        // Triangle with all relations of size m: bound = m^{3/2}.
        let h = Hypergraph::cycle(3);
        let (_, x) = fractional_edge_cover(&h).unwrap();
        let m = 10_000.0f64;
        assert_close(agm_bound(&h, &[m, m, m], &x), m.powf(1.5));
    }

    #[test]
    fn agm_bound_uneven_sizes() {
        // Two-relation join R(A,B) ⋈ S(B,C): cover weights are 1 and 1, so
        // bound is |R|·|S|, the trivial cross-product bound.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2]]);
        let (r, x) = fractional_edge_cover(&h).unwrap();
        assert_close(r, 2.0);
        assert_close(agm_bound(&h, &[100.0, 50.0], &x), 5_000.0);
    }

    #[test]
    fn g_of_q_matches_power() {
        assert_close(g_of_q(1.5, 100.0), 1_000.0);
        assert_close(g_of_q(2.0, 32.0), 1_024.0);
    }

    #[test]
    fn duplicate_vertices_in_edge_are_deduped() {
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0, 0, 1, 1]);
        assert_eq!(h.edges()[0], vec![0, 1]);
        assert_close(rho(&h), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_rejected() {
        Hypergraph::new(1).add_edge(vec![]);
    }

    #[test]
    fn cycle_share_exponents_are_symmetric() {
        // The k-cycle optimum is unique: x_v = 1/k, τ = 2/k (summing the
        // k edge constraints gives 2 Σx ≥ kτ, tight only when all edge
        // sums are equal). The triangle case is the planner's Shares
        // configuration: shares p^{1/3} per variable.
        for k in 3..=6usize {
            let (tau, x) = share_exponents(&Hypergraph::cycle(k)).unwrap();
            assert_close(tau, 2.0 / k as f64);
            if k == 3 {
                for xi in &x {
                    assert_close(*xi, 1.0 / 3.0);
                }
            }
        }
    }

    #[test]
    fn share_exponents_are_feasible_and_normalised() {
        let cases = vec![
            Hypergraph::chain(4),
            Hypergraph::cycle(5),
            Hypergraph::clique(4),
            Hypergraph::star(3, 1),
            Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![2, 3], vec![0, 3]]),
        ];
        for h in cases {
            let (tau, x) = share_exponents(&h).unwrap();
            assert!(x.iter().all(|&xi| xi >= -1e-9), "negative exponent: {x:?}");
            assert_close(x.iter().sum::<f64>(), 1.0);
            for e in h.edges() {
                let covered: f64 = e.iter().map(|&v| x[v]).sum();
                assert!(
                    covered >= tau - 1e-6,
                    "edge {e:?} covered {covered} < τ = {tau}"
                );
            }
            // τ ≤ 1 always (any edge sum is at most Σ x = 1).
            assert!(tau <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn single_atom_takes_all_weight() {
        // One relation covering both variables: τ = 1, every exponent on
        // the atom's variables (no replication at all: s_v = p^{x_v},
        // Π_{v∉e} s_v = p^0 = 1).
        let h = Hypergraph::from_edges(2, vec![vec![0, 1]]);
        let (tau, x) = share_exponents(&h).unwrap();
        assert_close(tau, 1.0);
        assert_close(x.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn edgeless_hypergraph_is_infeasible() {
        assert_eq!(
            share_exponents(&Hypergraph::new(3)).unwrap_err(),
            LpError::Infeasible
        );
    }

    /// Property: the LP cover is feasible and no worse than any greedy
    /// integral cover.
    #[test]
    fn cover_feasibility_and_optimality_samples() {
        let cases = vec![
            Hypergraph::chain(4),
            Hypergraph::cycle(5),
            Hypergraph::clique(5),
            Hypergraph::star(3, 2),
            Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![2, 3], vec![0, 3]]),
        ];
        for h in cases {
            let (r, x) = fractional_edge_cover(&h).unwrap();
            // Feasibility.
            for v in 0..h.num_vertices() {
                let covered: f64 = h
                    .edges()
                    .iter()
                    .zip(&x)
                    .filter(|(e, _)| e.contains(&v))
                    .map(|(_, &xi)| xi)
                    .sum();
                assert!(covered >= 1.0 - 1e-6, "vertex {v} uncovered");
            }
            // All-ones is feasible, so ρ ≤ number of edges.
            assert!(r <= h.num_edges() as f64 + 1e-6);
            assert!(r >= 1.0 - 1e-6);
        }
    }
}
