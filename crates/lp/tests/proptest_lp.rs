//! Property tests for the simplex solver.
//!
//! The solver has no external reference implementation in this workspace,
//! so the properties checked are intrinsic:
//!
//! * returned solutions are primal-feasible,
//! * the optimum never exceeds the objective at independently constructed
//!   feasible points,
//! * scaling the objective scales the optimum,
//! * edge-cover LPs are never unbounded and always within `[1, #edges]`.

use mr_lp::{fractional_edge_cover, ConstraintOp, Hypergraph, LinearProgram};
use proptest::prelude::*;

/// Generates a random covering-style LP: `min c·x` s.t. `A x ≥ b` with
/// non-negative `A`, positive row sums, and positive `b` — always feasible
/// (scale x up) and bounded (c ≥ 0).
fn covering_lp() -> impl Strategy<Value = LinearProgram> {
    (2usize..5, 2usize..5).prop_flat_map(|(nvars, nrows)| {
        let c = proptest::collection::vec(0.1f64..5.0, nvars);
        let rows = proptest::collection::vec(proptest::collection::vec(0.0f64..3.0, nvars), nrows);
        let b = proptest::collection::vec(0.5f64..4.0, nrows);
        (c, rows, b).prop_filter_map("rows must have a positive entry", |(c, rows, b)| {
            if rows.iter().any(|r| r.iter().all(|&a| a < 0.2)) {
                return None;
            }
            let mut lp = LinearProgram::minimize(c.len(), c);
            for (row, rhs) in rows.into_iter().zip(b) {
                lp.constrain(row, ConstraintOp::Ge, rhs);
            }
            Some(lp)
        })
    })
}

fn is_feasible(lp: &LinearProgram, x: &[f64]) -> bool {
    lp.constraints.iter().all(|c| {
        let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, xi)| a * xi).sum();
        match c.op {
            ConstraintOp::Ge => lhs >= c.rhs - 1e-6,
            ConstraintOp::Le => lhs <= c.rhs + 1e-6,
            ConstraintOp::Eq => (lhs - c.rhs).abs() < 1e-6,
        }
    }) && x.iter().all(|&xi| xi >= -1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solutions_are_feasible_and_optimal_vs_candidates(lp in covering_lp()) {
        let sol = lp.solve().expect("covering LPs are feasible and bounded");
        prop_assert!(is_feasible(&lp, &sol.x), "infeasible solution {:?}", sol.x);

        // Candidate feasible point: set every variable to the max ratio
        // rhs / row-sum over the rows, times the variable count — a crude
        // uniform cover. Check the optimum is no worse.
        let nvars = lp.num_vars;
        let worst_ratio = lp
            .constraints
            .iter()
            .map(|c| {
                let s: f64 = c.coeffs.iter().sum();
                c.rhs / s.max(1e-9)
            })
            .fold(0.0f64, f64::max);
        let uniform = vec![worst_ratio * nvars as f64; nvars];
        if is_feasible(&lp, &uniform) {
            let uniform_cost: f64 = lp
                .objective
                .iter()
                .zip(&uniform)
                .map(|(c, x)| c * x)
                .sum();
            prop_assert!(
                sol.value <= uniform_cost + 1e-6,
                "optimum {} worse than uniform cover {}",
                sol.value,
                uniform_cost
            );
        }
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in covering_lp(), scale in 0.5f64..4.0) {
        let base = lp.solve().unwrap();
        let mut scaled = lp.clone();
        for c in &mut scaled.objective {
            *c *= scale;
        }
        let sol = scaled.solve().unwrap();
        prop_assert!(
            (sol.value - scale * base.value).abs() <= 1e-5 * (1.0 + base.value.abs()),
            "scaled optimum {} vs {}·{}",
            sol.value,
            scale,
            base.value
        );
    }

    #[test]
    fn random_edge_covers_are_sane(
        num_vertices in 2usize..7,
        arity_seed in 0u64..500,
    ) {
        // Random hypergraph guaranteed to cover all vertices: a loop of
        // binary edges plus pseudo-random extra hyperedges.
        let mut edges: Vec<Vec<usize>> =
            (0..num_vertices).map(|i| vec![i, (i + 1) % num_vertices]).collect();
        let mut state = arity_seed;
        for _ in 0..(arity_seed % 4) {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let a = (state as usize) % num_vertices;
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let b = (state as usize) % num_vertices;
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let c = (state as usize) % num_vertices;
            let mut e = vec![a, b, c];
            e.sort_unstable();
            e.dedup();
            edges.push(e);
        }
        let h = Hypergraph::from_edges(num_vertices, edges);
        let (rho, x) = fractional_edge_cover(&h).unwrap();
        prop_assert!(rho >= 1.0 - 1e-6);
        prop_assert!(rho <= h.num_edges() as f64 + 1e-6);
        prop_assert!(x.iter().all(|&w| (-1e-9..=1.0 + 1e-6).contains(&w)),
            "cover weights outside [0,1]: {x:?} (weights above 1 are never optimal)");
    }
}
