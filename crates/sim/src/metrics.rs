//! Measurements collected by the engine.
//!
//! [`RoundMetrics`] captures one round's communication picture exactly:
//! inputs, shuffled key-value pairs (the paper's communication cost),
//! reducer count, per-reducer load statistics, and outputs.
//! [`JobMetrics`] aggregates rounds; §6.3's two-phase matrix multiplication
//! is compared to the one-phase method on
//! [`total_communication`](JobMetrics::total_communication).

/// Distribution statistics over per-reducer input counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadStats {
    /// Smallest reducer input count (0 when there are no reducers).
    pub min: u64,
    /// Largest reducer input count — the *effective* `q` of the run.
    pub max: u64,
    /// Mean input count.
    pub mean: f64,
    /// Median input count.
    pub p50: u64,
    /// 95th-percentile input count.
    pub p95: u64,
    /// Sum of all input counts (= shuffled pairs).
    pub total: u64,
}

impl LoadStats {
    /// Computes statistics from raw per-reducer loads.
    pub fn from_loads(mut loads: Vec<u64>) -> Self {
        loads.sort_unstable();
        Self::from_sorted(&loads)
    }

    /// Computes statistics from loads already sorted ascending — the
    /// engine sorts its load vector once and shares it between these
    /// statistics and [`RoundMetrics::loads`].
    pub(crate) fn from_sorted(loads: &[u64]) -> Self {
        debug_assert!(
            loads.windows(2).all(|w| w[0] <= w[1]),
            "loads must be sorted ascending"
        );
        if loads.is_empty() {
            return LoadStats::default();
        }
        let total: u64 = loads.iter().sum();
        let n = loads.len();
        let pct = |p: f64| -> u64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            loads[idx.min(n - 1)]
        };
        LoadStats {
            min: loads[0],
            max: loads[n - 1],
            mean: total as f64 / n as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            total,
        }
    }

    /// Load skew: `max / mean` (1.0 for perfectly balanced loads, 0 when
    /// empty).
    pub fn skew(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Observability for the shuffle stage: how the engine spread the round's
/// key-value pairs over hash partitions.
///
/// A partition's *load* is the number of key-value pairs hashed to it. The
/// sequential engine has exactly one partition carrying every pair; the
/// parallel engine uses one partition per worker. The `max / mean` ratio
/// ([`partition_skew`](ShuffleStats::partition_skew)) is the engine-level
/// analogue of the paper's §1.4 data-skew caveat: keys are spread by hash,
/// so a heavy key (a §1.4 "hub") drags its whole partition with it and the
/// ratio rises above 1.
///
/// These numbers describe how a round was *executed*, not what it
/// *computed* — the same round at different worker counts yields different
/// `ShuffleStats` but identical outputs and semantic metrics. They are
/// therefore **excluded** from [`RoundMetrics`]' `PartialEq`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShuffleStats {
    /// Number of hash partitions the shuffle used (1 when sequential).
    pub partitions: u64,
    /// Smallest partition load (key-value pairs).
    pub min_partition_load: u64,
    /// Largest partition load (key-value pairs).
    pub max_partition_load: u64,
    /// Mean partition load.
    pub mean_partition_load: f64,
    /// Total bytes the shuffle's columns moved:
    /// `pairs × (8-byte fingerprint + size_of::<K>() + size_of::<V>())`.
    /// An in-process estimate of the paper's communication cost in bytes
    /// rather than pairs. `Some` only when the engine filled it — the
    /// pair width is known nowhere else, so
    /// [`from_partition_loads`](ShuffleStats::from_partition_loads)
    /// leaves it explicitly `None` (unknown) rather than a silent 0.
    pub bytes_moved: Option<u64>,
    /// Per-partition occupancy histogram: the raw pair count of every
    /// shuffle partition, in partition order. `partitions`, `min/max/mean`
    /// above are summaries of this vector; it is retained so skew is
    /// inspectable bucket by bucket (surfaced in `repro frontier`).
    pub bucket_loads: Vec<u64>,
}

impl ShuffleStats {
    /// Computes statistics from raw per-partition pair counts.
    /// `bytes_moved` is left `None` — only the engine knows the pair
    /// width, and an unknown must read as unknown, not as 0 bytes.
    pub fn from_partition_loads(loads: &[u64]) -> Self {
        if loads.is_empty() {
            return ShuffleStats::default();
        }
        let total: u64 = loads.iter().sum();
        ShuffleStats {
            partitions: loads.len() as u64,
            min_partition_load: *loads.iter().min().unwrap(),
            max_partition_load: *loads.iter().max().unwrap(),
            mean_partition_load: total as f64 / loads.len() as f64,
            bytes_moved: None,
            bucket_loads: loads.to_vec(),
        }
    }

    /// Partition skew: `max / mean` partition load (1.0 when perfectly
    /// balanced, 0 when the shuffle carried no pairs).
    pub fn partition_skew(&self) -> f64 {
        if self.mean_partition_load == 0.0 {
            0.0
        } else {
            self.max_partition_load as f64 / self.mean_partition_load
        }
    }
}

/// Exact measurements of one map-reduce round.
///
/// Equality compares the *semantic* fields only — inputs, pairs, reducers,
/// loads, outputs. The [`shuffle`](RoundMetrics::shuffle) execution
/// metadata varies with the worker count by design and is excluded, so the
/// determinism contract "sequential and parallel runs produce equal
/// metrics" stays assertable with `==`.
#[derive(Debug, Clone, Default)]
pub struct RoundMetrics {
    /// Number of map inputs.
    pub inputs: u64,
    /// Key-value pairs crossing the shuffle — the round's communication
    /// cost in the paper's unit (§2.3).
    pub kv_pairs: u64,
    /// Number of distinct reduce-keys (reducers in the paper's sense).
    pub reducers: u64,
    /// Number of outputs emitted by the reduce phase.
    pub outputs: u64,
    /// Per-reducer load distribution (summary statistics).
    pub load: LoadStats,
    /// Raw per-reducer input counts, sorted ascending. Retained so cost
    /// models can be evaluated exactly after the run.
    pub loads: Vec<u64>,
    /// How the shuffle distributed pairs over hash partitions (execution
    /// metadata; excluded from `PartialEq`).
    pub shuffle: ShuffleStats,
}

impl PartialEq for RoundMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.inputs == other.inputs
            && self.kv_pairs == other.kv_pairs
            && self.reducers == other.reducers
            && self.outputs == other.outputs
            && self.load == other.load
            && self.loads == other.loads
    }
}

impl RoundMetrics {
    /// Replication rate `r = (shuffled pairs) / (inputs)` (§2.2). Returns
    /// `NaN` for an empty input set.
    pub fn replication_rate(&self) -> f64 {
        self.kv_pairs as f64 / self.inputs as f64
    }

    /// Total reducer computation cost under a per-reducer cost model
    /// `f(q_i)` — e.g. `|q| (q*q) as f64` for the all-pairs comparison
    /// model of Example 1.1. The total is `Σ_i f(q_i)` over all reducers.
    pub fn compute_cost(&self, f: impl Fn(u64) -> f64) -> f64 {
        self.loads.iter().map(|&q| f(q)).sum()
    }
}

/// Metrics for a (possibly multi-round) job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobMetrics {
    /// Per-round measurements, in execution order.
    pub rounds: Vec<RoundMetrics>,
}

impl JobMetrics {
    /// Total communication across all rounds: the sum of shuffled key-value
    /// pairs. This is the quantity §6.3 compares between the one- and
    /// two-phase matrix-multiplication methods.
    pub fn total_communication(&self) -> u64 {
        self.rounds.iter().map(|r| r.kv_pairs).sum()
    }

    /// The largest reducer load over all rounds (the job's effective `q`).
    pub fn max_reducer_load(&self) -> u64 {
        self.rounds.iter().map(|r| r.load.max).max().unwrap_or(0)
    }

    /// Replication rate of the first round (the paper's `r` for one-round
    /// jobs).
    pub fn first_round_replication(&self) -> f64 {
        self.rounds
            .first()
            .map(RoundMetrics::replication_rate)
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_stats_basic() {
        let s = LoadStats::from_loads(vec![4, 1, 3, 2]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.total, 10);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Nearest-rank on an even count rounds up: index round(1.5) = 2.
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn load_stats_empty() {
        let s = LoadStats::from_loads(vec![]);
        assert_eq!(s.max, 0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn load_stats_uniform_has_skew_one() {
        let s = LoadStats::from_loads(vec![5; 20]);
        assert!((s.skew() - 1.0).abs() < 1e-12);
        assert_eq!(s.p95, 5);
    }

    #[test]
    fn replication_rate() {
        let m = RoundMetrics {
            inputs: 100,
            kv_pairs: 250,
            ..Default::default()
        };
        assert!((m.replication_rate() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn compute_cost_quadratic_model() {
        let m = RoundMetrics {
            loads: vec![2, 3],
            ..Default::default()
        };
        // Example 1.1: all-pairs work is q^2 per reducer.
        assert!((m.compute_cost(|q| (q * q) as f64) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_stats_from_loads() {
        let s = ShuffleStats::from_partition_loads(&[10, 30, 20, 0]);
        assert_eq!(s.partitions, 4);
        assert_eq!(s.min_partition_load, 0);
        assert_eq!(s.max_partition_load, 30);
        assert!((s.mean_partition_load - 15.0).abs() < 1e-12);
        assert!((s.partition_skew() - 2.0).abs() < 1e-12);
        // The raw histogram is retained in partition order; bytes are
        // *unknown* at this layer — explicitly None, never a silent 0.
        assert_eq!(s.bucket_loads, vec![10, 30, 20, 0]);
        assert_eq!(s.bytes_moved, None);
    }

    #[test]
    fn shuffle_stats_empty_and_balanced() {
        let empty = ShuffleStats::from_partition_loads(&[]);
        assert_eq!(empty.partitions, 0);
        assert_eq!(empty.partition_skew(), 0.0);
        let balanced = ShuffleStats::from_partition_loads(&[7; 8]);
        assert!((balanced.partition_skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_stats_are_excluded_from_round_equality() {
        // Execution metadata must not break the determinism contract: two
        // rounds that computed the same thing compare equal even if one
        // ran on 1 partition and the other on 8.
        let a = RoundMetrics {
            inputs: 10,
            kv_pairs: 20,
            shuffle: ShuffleStats::from_partition_loads(&[20]),
            ..Default::default()
        };
        let b = RoundMetrics {
            inputs: 10,
            kv_pairs: 20,
            shuffle: ShuffleStats::from_partition_loads(&[3, 2, 5, 10]),
            ..Default::default()
        };
        assert_eq!(a, b);
        let c = RoundMetrics {
            inputs: 11,
            ..b.clone()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn job_totals() {
        let j = JobMetrics {
            rounds: vec![
                RoundMetrics {
                    inputs: 10,
                    kv_pairs: 30,
                    load: LoadStats::from_loads(vec![10, 20]),
                    ..Default::default()
                },
                RoundMetrics {
                    inputs: 5,
                    kv_pairs: 5,
                    load: LoadStats::from_loads(vec![3]),
                    ..Default::default()
                },
            ],
        };
        assert_eq!(j.total_communication(), 35);
        assert_eq!(j.max_reducer_load(), 20);
        assert!((j.first_round_replication() - 3.0).abs() < 1e-12);
    }
}
