//! Measurements collected by the engine.
//!
//! [`RoundMetrics`] captures one round's communication picture exactly:
//! inputs, shuffled key-value pairs (the paper's communication cost),
//! reducer count, per-reducer load statistics, and outputs.
//! [`JobMetrics`] aggregates rounds; §6.3's two-phase matrix multiplication
//! is compared to the one-phase method on
//! [`total_communication`](JobMetrics::total_communication).

/// Distribution statistics over per-reducer input counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadStats {
    /// Smallest reducer input count (0 when there are no reducers).
    pub min: u64,
    /// Largest reducer input count — the *effective* `q` of the run.
    pub max: u64,
    /// Mean input count.
    pub mean: f64,
    /// Median input count.
    pub p50: u64,
    /// 95th-percentile input count.
    pub p95: u64,
    /// Sum of all input counts (= shuffled pairs).
    pub total: u64,
}

impl LoadStats {
    /// Computes statistics from raw per-reducer loads.
    pub fn from_loads(mut loads: Vec<u64>) -> Self {
        if loads.is_empty() {
            return LoadStats::default();
        }
        loads.sort_unstable();
        let total: u64 = loads.iter().sum();
        let n = loads.len();
        let pct = |p: f64| -> u64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            loads[idx.min(n - 1)]
        };
        LoadStats {
            min: loads[0],
            max: loads[n - 1],
            mean: total as f64 / n as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            total,
        }
    }

    /// Load skew: `max / mean` (1.0 for perfectly balanced loads, 0 when
    /// empty).
    pub fn skew(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Exact measurements of one map-reduce round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundMetrics {
    /// Number of map inputs.
    pub inputs: u64,
    /// Key-value pairs crossing the shuffle — the round's communication
    /// cost in the paper's unit (§2.3).
    pub kv_pairs: u64,
    /// Number of distinct reduce-keys (reducers in the paper's sense).
    pub reducers: u64,
    /// Number of outputs emitted by the reduce phase.
    pub outputs: u64,
    /// Per-reducer load distribution (summary statistics).
    pub load: LoadStats,
    /// Raw per-reducer input counts, sorted ascending. Retained so cost
    /// models can be evaluated exactly after the run.
    pub loads: Vec<u64>,
}

impl RoundMetrics {
    /// Replication rate `r = (shuffled pairs) / (inputs)` (§2.2). Returns
    /// `NaN` for an empty input set.
    pub fn replication_rate(&self) -> f64 {
        self.kv_pairs as f64 / self.inputs as f64
    }

    /// Total reducer computation cost under a per-reducer cost model
    /// `f(q_i)` — e.g. `|q| (q*q) as f64` for the all-pairs comparison
    /// model of Example 1.1. The total is `Σ_i f(q_i)` over all reducers.
    pub fn compute_cost(&self, f: impl Fn(u64) -> f64) -> f64 {
        self.loads.iter().map(|&q| f(q)).sum()
    }
}

/// Metrics for a (possibly multi-round) job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobMetrics {
    /// Per-round measurements, in execution order.
    pub rounds: Vec<RoundMetrics>,
}

impl JobMetrics {
    /// Total communication across all rounds: the sum of shuffled key-value
    /// pairs. This is the quantity §6.3 compares between the one- and
    /// two-phase matrix-multiplication methods.
    pub fn total_communication(&self) -> u64 {
        self.rounds.iter().map(|r| r.kv_pairs).sum()
    }

    /// The largest reducer load over all rounds (the job's effective `q`).
    pub fn max_reducer_load(&self) -> u64 {
        self.rounds.iter().map(|r| r.load.max).max().unwrap_or(0)
    }

    /// Replication rate of the first round (the paper's `r` for one-round
    /// jobs).
    pub fn first_round_replication(&self) -> f64 {
        self.rounds
            .first()
            .map(RoundMetrics::replication_rate)
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_stats_basic() {
        let s = LoadStats::from_loads(vec![4, 1, 3, 2]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.total, 10);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Nearest-rank on an even count rounds up: index round(1.5) = 2.
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn load_stats_empty() {
        let s = LoadStats::from_loads(vec![]);
        assert_eq!(s.max, 0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn load_stats_uniform_has_skew_one() {
        let s = LoadStats::from_loads(vec![5; 20]);
        assert!((s.skew() - 1.0).abs() < 1e-12);
        assert_eq!(s.p95, 5);
    }

    #[test]
    fn replication_rate() {
        let m = RoundMetrics {
            inputs: 100,
            kv_pairs: 250,
            ..Default::default()
        };
        assert!((m.replication_rate() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn compute_cost_quadratic_model() {
        let m = RoundMetrics {
            loads: vec![2, 3],
            ..Default::default()
        };
        // Example 1.1: all-pairs work is q^2 per reducer.
        assert!((m.compute_cost(|q| (q * q) as f64) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn job_totals() {
        let j = JobMetrics {
            rounds: vec![
                RoundMetrics {
                    inputs: 10,
                    kv_pairs: 30,
                    load: LoadStats::from_loads(vec![10, 20]),
                    ..Default::default()
                },
                RoundMetrics {
                    inputs: 5,
                    kv_pairs: 5,
                    load: LoadStats::from_loads(vec![3]),
                    ..Default::default()
                },
            ],
        };
        assert_eq!(j.total_communication(), 35);
        assert_eq!(j.max_reducer_load(), 20);
        assert!((j.first_round_replication() - 3.0).abs() < 1e-12);
    }
}
