//! Map-side combining.
//!
//! A *combiner* merges the values a single map worker emits for the same
//! key before the shuffle — the classic MapReduce optimisation for
//! associative-commutative reduce functions. The paper's replication rate
//! counts **pre-combine** pairs (each input's key-value pairs, §2.2);
//! combining lowers the *wire* communication below `r·|I|` without
//! changing the mapping schema. [`run_round_combined`] measures both
//! numbers so the gap is visible.
//!
//! The combine stage rides the columnar data plane end to end: each map
//! worker emits into a fingerprint column buffer, groups it with the same
//! radix/code-sort pass the engine's shuffle uses (key order is not
//! needed pre-shuffle, so the per-partition key sort is skipped), and
//! folds every group to one combined value. Each group's retained
//! fingerprint then routes the combined pair through the partitioned
//! shuffle without rehashing the key.

use crate::columnar::{group_partition, partition_of_hash, ColumnBuf};
use crate::engine::{
    pair_bytes, reduce_phase, run_chunked, shuffle_columns, EngineConfig, EngineError,
};
use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics};
use std::fmt::Debug;
use std::hash::Hash;

/// Merges the accumulated value with one more emitted value.
///
/// Must be associative and order-insensitive with respect to the final
/// reduce result for the engine's output to be independent of the worker
/// count (e.g. sums, min/max, set union).
pub trait Combiner<K, V>: Sync {
    /// Folds `next` into `acc`.
    fn combine(&self, key: &K, acc: &mut V, next: V);
}

/// Adapts a closure `Fn(&K, &mut V, V)` into a [`Combiner`].
pub struct FnCombiner<F>(pub F);

impl<K, V, F> Combiner<K, V> for FnCombiner<F>
where
    F: Fn(&K, &mut V, V) + Sync,
{
    fn combine(&self, key: &K, acc: &mut V, next: V) {
        (self.0)(key, acc, next)
    }
}

/// Metrics for a combined round: the standard [`RoundMetrics`] describe
/// the *post-combine* (wire) traffic; `pre_combine_pairs` preserves the
/// paper's replication accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedMetrics {
    /// Wire-level metrics (after combining).
    pub round: RoundMetrics,
    /// Key-value pairs emitted by mappers before combining — the
    /// numerator of the paper's replication rate.
    pub pre_combine_pairs: u64,
}

impl CombinedMetrics {
    /// The paper's replication rate: pre-combine pairs per input.
    pub fn model_replication_rate(&self) -> f64 {
        self.pre_combine_pairs as f64 / self.round.inputs as f64
    }

    /// Communication saved by the combiner (pairs).
    pub fn pairs_saved(&self) -> u64 {
        self.pre_combine_pairs - self.round.kv_pairs
    }
}

/// Executes map → (per-worker combine) → shuffle → reduce.
///
/// Each map worker combines its own emissions per key before they enter
/// the shuffle, exactly like Hadoop's combiner running on mapper output.
/// The reduce function then sees one value per (worker, key) pair, in
/// worker order.
///
/// With `workers > 1` the post-combine shuffle is hash-partitioned like
/// the plain engine's: every worker's combined column is scattered into
/// `P = workers` partitions by the retained fingerprints, partitions are
/// grouped and budget-checked concurrently, and the merged result is
/// reduced in key order. Combiner accounting stays exact under
/// partitioning — `pre_combine_pairs` is summed per worker before the
/// scatter, and the wire pair count is the sum of partition loads, so
/// neither depends on how keys hash.
pub fn run_round_combined<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    combiner: &dyn Combiner<K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, CombinedMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Clone + Debug + Send + Sync + 'static,
    V: Send + Sync,
    O: Send,
{
    let configured_workers = config.effective_workers();
    let workers = configured_workers.min(inputs.len().max(1));
    let chunk = inputs.len().div_ceil(workers);
    let chunks: Vec<&[I]> = if inputs.is_empty() {
        Vec::new()
    } else {
        inputs.chunks(chunk).collect()
    };
    let hint_for = |chunk_len: usize| -> usize {
        config
            .pairs_hint
            .map(|h| (h as usize).div_ceil(workers))
            .unwrap_or(chunk_len)
    };

    // Map + combine per worker: emit into a column buffer, group it in
    // fingerprint order (no key sort — the shuffle re-sorts anyway), and
    // fold each group's contiguous value run into one combined value.
    // Values arrive in emission order, so the fold order matches the old
    // incremental map-based combine exactly.
    let combine_chunk = |c: &[I]| -> (u64, ColumnBuf<K, V>) {
        let _span = mr_obs::span("engine.combine.chunk");
        let mut emitted = 0u64;
        let mut buf = ColumnBuf::with_capacity(hint_for(c.len()));
        for input in c {
            mapper.map(input, &mut |k, v| {
                emitted += 1;
                buf.emit(k, v);
            });
        }
        let run = group_partition(buf);
        let mut combined = ColumnBuf::with_capacity(run.len());
        let mut vals = run.values.into_iter();
        for g in run.groups {
            let mut acc = vals.next().expect("every group has a first value");
            for _ in 1..g.len {
                combiner.combine(&g.key, &mut acc, vals.next().expect("group length"));
            }
            // Re-fingerprint the surviving key: the descriptor no longer
            // carries its hash (keeping the directory small for the far
            // hotter plain-shuffle sort), and one hash per *distinct* key
            // is noise next to the per-pair work the combiner just saved.
            combined.emit(g.key, acc);
        }
        (emitted, combined)
    };

    let combine_span = mr_obs::span("engine.combine");
    let per_worker: Vec<(u64, ColumnBuf<K, V>)> = if workers <= 1 || chunks.len() <= 1 {
        chunks.into_iter().map(combine_chunk).collect()
    } else {
        run_chunked(config.executor, chunks, combine_chunk)
    };
    drop(combine_span);

    // Pre-combine accounting happens per worker, before any partitioning:
    // the paper's replication numerator is independent of the shuffle.
    let pre_combine_pairs: u64 = per_worker.iter().map(|(e, _)| *e).sum();

    // Post-combine shuffle: scatter each worker's combined column (worker
    // order — so a key's values arrive one-per-worker in worker order)
    // into P partitions by the retained fingerprints. P reuses the
    // input-clamped worker count so a huge worker count over a tiny input
    // stays cheap.
    let shuffle_span = mr_obs::span("engine.shuffle");
    let p = if configured_workers <= 1 { 1 } else { workers };
    let mut partitions: Vec<ColumnBuf<K, V>> = (0..p).map(|_| ColumnBuf::new()).collect();
    for (_, buf) in per_worker {
        if p <= 1 {
            partitions[0].append(buf);
        } else {
            for (pi, part) in buf
                .scatter(p, |h| partition_of_hash(h, p))
                .into_iter()
                .enumerate()
            {
                partitions[pi].append(part);
            }
        }
    }
    let wire_pairs: u64 = partitions.iter().map(|part| part.len() as u64).sum();
    let (shuffled, shuffle_stats) = shuffle_columns(
        partitions,
        config.max_reducer_inputs,
        configured_workers,
        pair_bytes::<K, V>(),
        config.executor,
    )?;
    drop(shuffle_span);

    let loads = shuffled.loads();
    let reducers = loads.len() as u64;
    let reduce_span = mr_obs::span("engine.reduce");
    let outputs = reduce_phase(&shuffled, reducer, configured_workers, config.executor);
    drop(reduce_span);

    let metrics = CombinedMetrics {
        round: RoundMetrics {
            inputs: inputs.len() as u64,
            kv_pairs: wire_pairs,
            reducers,
            outputs: outputs.len() as u64,
            load: LoadStats::from_loads(loads.clone()),
            loads: {
                let mut l = loads;
                l.sort_unstable();
                l
            },
            shuffle: shuffle_stats,
        },
        pre_combine_pairs,
    };
    Ok((outputs, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_round;
    use crate::mapper::{FnMapper, FnReducer};

    type WcMapper = FnMapper<fn(&String, &mut dyn FnMut(String, u64))>;
    type WcReducer = FnReducer<fn(&String, &[u64], &mut dyn FnMut((String, u64)))>;

    fn wordcount_mapper() -> WcMapper {
        FnMapper(|doc, emit| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        })
    }

    fn sum_reducer() -> WcReducer {
        FnReducer(|k, vs, emit| emit((k.clone(), vs.iter().sum())))
    }

    fn corpus() -> Vec<String> {
        (0..200)
            .map(|i| format!("a b{} c{} a a", i % 5, i % 3))
            .collect()
    }

    #[test]
    fn combined_output_equals_uncombined() {
        let docs = corpus();
        let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
        let (plain, _) = run_round(
            &docs,
            &wordcount_mapper(),
            &sum_reducer(),
            &EngineConfig::sequential(),
        )
        .unwrap();
        for workers in [1usize, 4] {
            let cfg = EngineConfig::parallel(workers);
            let (combined, m) =
                run_round_combined(&docs, &wordcount_mapper(), &combiner, &sum_reducer(), &cfg)
                    .unwrap();
            assert_eq!(plain, combined, "workers={workers}");
            // The combiner must save traffic: 200 docs × 5 words pre,
            // ≤ workers × distinct-words post.
            assert_eq!(m.pre_combine_pairs, 1000);
            assert!(m.round.kv_pairs <= (workers as u64) * 9);
            assert!(m.pairs_saved() > 900);
        }
    }

    #[test]
    fn model_replication_rate_is_pre_combine() {
        // The paper's r counts mapper emissions, not wire pairs: word
        // count remains r = 5 per document under the document view even
        // though the combiner collapses the wire traffic.
        let docs = corpus();
        let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
        let (_, m) = run_round_combined(
            &docs,
            &wordcount_mapper(),
            &combiner,
            &sum_reducer(),
            &EngineConfig::sequential(),
        )
        .unwrap();
        assert!((m.model_replication_rate() - 5.0).abs() < 1e-12);
        assert!(m.round.replication_rate() < 1.0); // wire rate collapsed
    }

    #[test]
    fn q_budget_applies_post_combine() {
        // With a combiner, per-key load is the number of workers, so a
        // q = workers budget passes where the raw job would overflow.
        let docs = corpus();
        let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
        let cfg = EngineConfig::parallel(4).with_max_reducer_inputs(4);
        assert!(
            run_round_combined(&docs, &wordcount_mapper(), &combiner, &sum_reducer(), &cfg).is_ok()
        );
        assert!(run_round(&docs, &wordcount_mapper(), &sum_reducer(), &cfg).is_err());
    }

    #[test]
    fn huge_worker_count_on_tiny_input_is_clamped() {
        // Regression twin of the engine test: the combined path's
        // partition count is clamped to the input size too.
        let docs: Vec<String> = vec!["a b".into(), "b c".into()];
        let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
        let (seq, _) = run_round_combined(
            &docs,
            &wordcount_mapper(),
            &combiner,
            &sum_reducer(),
            &EngineConfig::sequential(),
        )
        .unwrap();
        let (par, m) = run_round_combined(
            &docs,
            &wordcount_mapper(),
            &combiner,
            &sum_reducer(),
            &EngineConfig::parallel(100_000),
        )
        .unwrap();
        assert_eq!(seq, par);
        assert!(m.round.shuffle.partitions <= docs.len() as u64);
    }

    #[test]
    fn empty_input() {
        let docs: Vec<String> = vec![];
        let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
        let (out, m) = run_round_combined(
            &docs,
            &wordcount_mapper(),
            &combiner,
            &sum_reducer(),
            &EngineConfig::sequential(),
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(m.pre_combine_pairs, 0);
    }

    #[test]
    fn min_combiner() {
        let inputs: Vec<(u32, i64)> = (0..100).map(|i| (i % 7, 100 - i as i64)).collect();
        let mapper = FnMapper(|&(k, v): &(u32, i64), emit: &mut dyn FnMut(u32, i64)| emit(k, v));
        let combiner = FnCombiner(|_: &u32, acc: &mut i64, v: i64| *acc = (*acc).min(v));
        let reducer = FnReducer(|k: &u32, vs: &[i64], emit: &mut dyn FnMut((u32, i64))| {
            emit((*k, *vs.iter().min().unwrap()))
        });
        let (seq, _) = run_round_combined(
            &inputs,
            &mapper,
            &combiner,
            &reducer,
            &EngineConfig::sequential(),
        )
        .unwrap();
        let (par, _) = run_round_combined(
            &inputs,
            &mapper,
            &combiner,
            &reducer,
            &EngineConfig::parallel(3),
        )
        .unwrap();
        assert_eq!(seq, par);
        // Spot-check one group: keys 0..7, min over arithmetic sequence.
        let expected_min_for_0 = (0..100)
            .filter(|i| i % 7 == 0)
            .map(|i| 100 - i as i64)
            .min()
            .unwrap();
        assert!(seq.contains(&(0, expected_min_for_0)));
    }
}
