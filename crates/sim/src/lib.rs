#![warn(missing_docs)]

//! An instrumented, in-process MapReduce engine.
//!
//! The paper (Afrati et al., VLDB 2013) reasons about three quantities of a
//! single-round map-reduce computation:
//!
//! * the **replication rate** `r` — average number of key-value pairs the
//!   mappers create per input (§1.1, §2.2),
//! * the **reducer size** `q` — the maximum number of inputs any one
//!   reducer receives,
//! * the **communication cost** — total key-value pairs crossing the
//!   map→reduce shuffle (summed over rounds for multi-round jobs, §6.3).
//!
//! All three are *counting* properties of the dataflow, so a real cluster
//! is unnecessary: this engine executes map, shuffle, and reduce in
//! process — sequentially or across threads with bit-identical results —
//! and counts the quantities exactly.
//!
//! Modules:
//! * [`mapper`] — the `Mapper` and
//!   `Reducer` traits (and closure adapters),
//! * [`engine`] — single-round execution with an enforcable reducer-size
//!   budget, built on a columnar radix-partitioned shuffle (`P = workers`
//!   partitions, clamped to the input size, merged in key order so
//!   results never depend on the worker count),
//! * `columnar` (internal) — the flat data plane under the shuffle:
//!   fingerprint columns, radix bucket scatter, code-sort grouping,
//!   merged views,
//! * [`naive`] — the original `BTreeMap` shuffle, retained as the
//!   test-only regression oracle for the columnar path,
//! * [`delta`] — incremental execution: schemas held resident with
//!   per-reducer state, re-executing only the reducers a
//!   `Delta { added, removed }` dirties (exploiting §2.2 obliviousness),
//! * [`combiner`] — optional map-side combining with pre-/post-combine
//!   communication accounting,
//! * [`job`] — type-safe multi-round pipelines (round *i*'s reduce output
//!   feeds round *i+1*'s map),
//! * [`dag`] — a DAG of rounds over one token type, staged level by
//!   level on the execution substrate, for planner-searched round
//!   structures,
//! * [`pool`] — the resident work-stealing [`WorkerPool`] every fan-out
//!   runs on by default, with the per-call scoped-thread substrate
//!   retained as the [`Executor::Scoped`] oracle,
//! * [`metrics`] — per-round and per-job measurements,
//! * [`schema`] — running an abstract *mapping schema* (assignment of
//!   inputs to reducers) as a map-reduce job.

pub(crate) mod columnar;
pub mod combiner;
pub mod dag;
pub mod delta;
pub mod engine;
pub mod job;
pub mod mapper;
pub mod metrics;
pub mod naive;
pub mod pool;
pub mod schema;

pub use combiner::{run_round_combined, CombinedMetrics, Combiner, FnCombiner};
pub use dag::DagJob;
pub use delta::{
    run_round_combined_on, run_round_on, run_schema_retained, Delta, DeltaError, DeltaJob,
    DeltaMetrics, DeltaOutcome, DeltaPrediction, Pipeline, Seq,
};
pub use engine::{run_round, EngineConfig, EngineError};
pub use job::Job;
pub use mapper::{FnMapper, FnReducer, Mapper, Reducer};
pub use metrics::{JobMetrics, LoadStats, RoundMetrics, ShuffleStats};
pub use pool::{Executor, WorkerPool};
pub use schema::{run_schema, run_schema_dyn, run_schema_timed, DynSchema, SchemaJob};
