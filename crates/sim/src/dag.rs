//! A DAG of map-reduce rounds over one token type.
//!
//! [`Job`](crate::Job) chains rounds linearly with full type-safety;
//! planners need more: a **DAG** whose nodes are rounds, whose edges say
//! "this round's reduce output is (part of) that round's map input", and
//! whose per-node execution can be budgeted and measured individually.
//! [`DagJob`] is that executor. It trades `Job`'s per-round typing for a
//! single *token* type `T` shared by every round (an enum in practice),
//! which is what lets arbitrary topologies be built at run time — the
//! plan layer's round-structure search enumerates these.
//!
//! Execution contract (the same one every other path in this crate
//! obeys):
//!
//! * **Determinism** — outputs and semantic [`RoundMetrics`] are
//!   byte-identical at every worker count, because each round runs on the
//!   engine's order-insensitive shuffle and the staging below is fixed by
//!   the topology, not by thread timing.
//! * **Budget aborts** — each node may carry its own reducer budget;
//!   within a round the engine reports the smallest over-budget key
//!   (its smallest-offender contract), and when several nodes of one
//!   stage fail, the error of the smallest node index is returned, so
//!   multi-node failures are deterministic too.
//! * **Staging** — nodes execute in ASAP levels (a node runs as soon as
//!   all its dependencies have), each level submitted as one batch to the
//!   configured [`Executor`] — the resident
//!   [`WorkerPool`] by default — with
//!   concurrently-running nodes collected in index order.

use crate::delta::{run_round_on, Pipeline};
use crate::engine::{run_round, EngineConfig, EngineError};
use crate::mapper::{FnMapper, FnReducer, Mapper, Reducer};
use crate::metrics::{JobMetrics, RoundMetrics};
use crate::pool::{Executor, WorkerPool};
use crate::schema::{ReducerId, SchemaJob};
use std::fmt::Debug;
use std::hash::Hash;

type NodeFn<T> =
    Box<dyn Fn(&[T], &EngineConfig) -> Result<(Vec<T>, RoundMetrics), EngineError> + Sync>;

/// One node's run outcome, tagged with its index so a level's parallel
/// results can be re-ordered deterministically.
type NodeOutcome<T> = (usize, Result<(Vec<T>, RoundMetrics), EngineError>);

/// One round of a [`DagJob`]: a name, the rounds feeding it, optional
/// per-round engine overrides, and the round body.
struct DagNode<T> {
    name: String,
    deps: Vec<usize>,
    budget: Option<u64>,
    pairs_hint: Option<u64>,
    run: NodeFn<T>,
}

/// A DAG of map-reduce rounds over a uniform token type `T`.
///
/// Nodes are added in topological order (every dependency index must be
/// smaller than the node's own index). Nodes without dependencies read
/// the external inputs; a node with dependencies reads the concatenation
/// of its dependencies' outputs in declaration order. The job's outputs
/// are the concatenated outputs of every *sink* (a node no other node
/// depends on), in node order.
pub struct DagJob<T> {
    nodes: Vec<DagNode<T>>,
}

impl<T: Clone + Send + Sync + 'static> Default for DagJob<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> DagJob<T> {
    /// An empty DAG.
    pub fn new() -> Self {
        DagJob { nodes: Vec::new() }
    }

    /// Adds a round from an arbitrary body closure, returning its node
    /// index. The escape hatch behind [`add_round`](Self::add_round) /
    /// [`add_schema_round`](Self::add_schema_round).
    ///
    /// # Panics
    /// Panics unless every dependency index refers to an earlier node.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        deps: Vec<usize>,
        run: impl Fn(&[T], &EngineConfig) -> Result<(Vec<T>, RoundMetrics), EngineError>
            + Sync
            + 'static,
    ) -> usize {
        let idx = self.nodes.len();
        assert!(
            deps.iter().all(|&d| d < idx),
            "node {idx}: dependencies must point at earlier nodes (got {deps:?})"
        );
        self.nodes.push(DagNode {
            name: name.into(),
            deps,
            budget: None,
            pairs_hint: None,
            run: Box::new(run),
        });
        idx
    }

    /// Adds a mapper/reducer round, returning its node index.
    ///
    /// # Panics
    /// Panics unless every dependency index refers to an earlier node.
    pub fn add_round<K, V, M, R>(
        &mut self,
        name: impl Into<String>,
        deps: Vec<usize>,
        mapper: M,
        reducer: R,
    ) -> usize
    where
        K: Ord + Hash + Debug + Send + Sync + 'static,
        V: Send + Sync + 'static,
        M: Mapper<T, K, V> + 'static,
        R: Reducer<K, V, T> + 'static,
    {
        self.add_node(name, deps, move |inputs, cfg| {
            run_round(inputs, &mapper, &reducer, cfg)
        })
    }

    /// Adds a round executing a [`SchemaJob`] on the selected shuffle
    /// [`Pipeline`] — the DAG-shaped view of
    /// [`run_schema`](crate::run_schema), byte-identical to it (the
    /// degenerate single-node DAG *is* `run_schema`).
    ///
    /// # Panics
    /// Panics unless every dependency index refers to an earlier node.
    pub fn add_schema_round<S>(
        &mut self,
        name: impl Into<String>,
        deps: Vec<usize>,
        schema: S,
        pipeline: Pipeline,
    ) -> usize
    where
        S: SchemaJob<T, T> + 'static,
    {
        self.add_node(name, deps, move |inputs, cfg| {
            let mapper = FnMapper(|input: &T, emit: &mut dyn FnMut(ReducerId, T)| {
                for r in schema.assign(input) {
                    emit(r, input.clone());
                }
            });
            let reducer = FnReducer(|rid: &ReducerId, vs: &[T], emit: &mut dyn FnMut(T)| {
                schema.reduce(*rid, vs, emit)
            });
            run_round_on(pipeline, inputs, &mapper, &reducer, cfg)
        })
    }

    /// Sets a per-node reducer budget: the node's round runs with
    /// `max_reducer_inputs = q`, overriding the base configuration's
    /// budget for that round only.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn set_budget(&mut self, node: usize, q: u64) {
        self.nodes[node].budget = Some(q);
    }

    /// Sets a per-node pairs hint (a pure performance knob — see
    /// [`EngineConfig::with_pairs_hint`]), overriding the base
    /// configuration's hint for that round only.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn set_pairs_hint(&mut self, node: usize, pairs: u64) {
        self.nodes[node].pairs_hint = Some(pairs);
    }

    /// Number of rounds (nodes) in the DAG.
    pub fn num_rounds(&self) -> usize {
        self.nodes.len()
    }

    /// The node names, in node order.
    pub fn round_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// ASAP level of every node: 0 for source nodes, else one more than
    /// the deepest dependency.
    fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            levels[i] = node.deps.iter().map(|&d| levels[d] + 1).max().unwrap_or(0);
        }
        levels
    }

    /// Critical-path length: the number of sequential stages execution
    /// needs (1 for a single round, `num_rounds` for a linear chain).
    pub fn depth(&self) -> usize {
        self.levels().iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// Executes the DAG. See the module docs for the staging, output,
    /// and error contracts.
    pub fn run(
        &self,
        inputs: &[T],
        config: &EngineConfig,
    ) -> Result<(Vec<T>, JobMetrics), EngineError> {
        let _dag_span = mr_obs::span("dag.run");
        let levels = self.levels();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut results: Vec<Option<(Vec<T>, RoundMetrics)>> = Vec::new();
        results.resize_with(self.nodes.len(), || None);

        for level in 0..=max_level {
            let _level_span = mr_obs::span_with(|| format!("dag.level.{level}"));
            let stage: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| levels[i] == level)
                .collect();
            // Materialise each stage node's input stream up front (the
            // concatenation of its dependencies' outputs, or the external
            // inputs for a source node).
            let staged: Vec<(usize, Vec<T>)> = stage
                .iter()
                .map(|&i| {
                    let node = &self.nodes[i];
                    let input: Vec<T> = if node.deps.is_empty() {
                        inputs.to_vec()
                    } else {
                        node.deps
                            .iter()
                            .flat_map(|&d| {
                                results[d]
                                    .as_ref()
                                    .expect("dependency ran earlier")
                                    .0
                                    .iter()
                            })
                            .cloned()
                            .collect()
                    };
                    (i, input)
                })
                .collect();

            let outcomes: Vec<NodeOutcome<T>> = if staged.len() == 1 {
                let (i, input) = &staged[0];
                vec![(*i, self.run_node(*i, input, config))]
            } else {
                match config.executor {
                    Executor::Pool => WorkerPool::global().run(
                        staged
                            .iter()
                            .map(|(i, input)| {
                                let i = *i;
                                Box::new(move || (i, self.run_node(i, input, config)))
                                    as Box<dyn FnOnce() -> NodeOutcome<T> + Send + '_>
                            })
                            .collect(),
                    ),
                    Executor::Scoped => std::thread::scope(|scope| {
                        let handles: Vec<_> = staged
                            .iter()
                            .map(|(i, input)| {
                                let i = *i;
                                scope.spawn(move || (i, self.run_node(i, input, config)))
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    }),
                }
            };

            // Deterministic multi-failure contract: the smallest failing
            // node index wins (mirroring the engine's smallest-offender
            // rule within a round).
            let mut failures: Vec<(usize, EngineError)> = Vec::new();
            for (i, outcome) in outcomes {
                match outcome {
                    Ok(ok) => results[i] = Some(ok),
                    Err(e) => failures.push((i, e)),
                }
            }
            if let Some((_, e)) = failures.into_iter().min_by_key(|(i, _)| *i) {
                return Err(e);
            }
        }

        // Sinks in node order carry the job's outputs.
        let consumed: Vec<bool> = {
            let mut c = vec![false; self.nodes.len()];
            for node in &self.nodes {
                for &d in &node.deps {
                    c[d] = true;
                }
            }
            c
        };
        let mut outputs = Vec::new();
        let mut rounds = Vec::with_capacity(self.nodes.len());
        for (i, slot) in results.into_iter().enumerate() {
            let (out, metrics) = slot.expect("every node ran");
            if !consumed[i] {
                outputs.extend(out);
            }
            rounds.push(metrics);
        }
        Ok((outputs, JobMetrics { rounds }))
    }

    /// Executes the DAG, additionally reporting wall-clock time
    /// (execution metadata — determinism comparisons must use outputs
    /// and metrics only).
    pub fn run_timed(
        &self,
        inputs: &[T],
        config: &EngineConfig,
    ) -> Result<(Vec<T>, JobMetrics, std::time::Duration), EngineError> {
        let start = std::time::Instant::now();
        let (out, metrics) = self.run(inputs, config)?;
        Ok((out, metrics, start.elapsed()))
    }

    /// Runs one node under the base configuration with the node's
    /// budget/hint overrides applied.
    fn run_node(
        &self,
        i: usize,
        input: &[T],
        config: &EngineConfig,
    ) -> Result<(Vec<T>, RoundMetrics), EngineError> {
        let node = &self.nodes[i];
        let _span = mr_obs::span_with(|| format!("dag.node.{}", node.name));
        let mut cfg = config.clone();
        if let Some(q) = node.budget {
            cfg = cfg.with_max_reducer_inputs(q);
        }
        if let Some(h) = node.pairs_hint {
            cfg = cfg.with_pairs_hint(h);
        }
        (node.run)(input, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::run_schema;

    /// Sum tokens by residue class: one keyed round.
    fn sum_round(dag: &mut DagJob<u64>, name: &str, deps: Vec<usize>, modulus: u64) -> usize {
        dag.add_round(
            name,
            deps,
            FnMapper(move |x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(x % modulus, *x)),
            FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| {
                emit(k * 1_000_000 + vs.iter().sum::<u64>())
            }),
        )
    }

    #[test]
    fn linear_chain_matches_job_then() {
        // DAG a → b must equal Job::single(a).then(b).
        let mut dag: DagJob<u64> = DagJob::new();
        let a = sum_round(&mut dag, "a", vec![], 3);
        sum_round(&mut dag, "b", vec![a], 2);
        assert_eq!(dag.num_rounds(), 2);
        assert_eq!(dag.depth(), 2);
        let inputs: Vec<u64> = (0..30).collect();
        let (out, m) = dag.run(&inputs, &EngineConfig::sequential()).unwrap();

        let job: crate::Job<u64, u64> = crate::Job::single(
            FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(x % 3, *x)),
            FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| {
                emit(k * 1_000_000 + vs.iter().sum::<u64>())
            }),
        )
        .then(
            FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(x % 2, *x)),
            FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| {
                emit(k * 1_000_000 + vs.iter().sum::<u64>())
            }),
        );
        let (jout, jm) = job.run(inputs, &EngineConfig::sequential()).unwrap();
        assert_eq!(out, jout);
        assert_eq!(m, jm);
    }

    #[test]
    fn diamond_topology_is_worker_independent() {
        // fan-out → two parallel branches → join: the canonical diamond.
        let build = || {
            let mut dag: DagJob<u64> = DagJob::new();
            let src = sum_round(&mut dag, "src", vec![], 7);
            let left = sum_round(&mut dag, "left", vec![src], 3);
            let right = sum_round(&mut dag, "right", vec![src], 5);
            sum_round(&mut dag, "join", vec![left, right], 2);
            dag
        };
        assert_eq!(build().depth(), 3);
        let inputs: Vec<u64> = (0..200).map(|i| i * 13 + 1).collect();
        let (seq, ms) = build().run(&inputs, &EngineConfig::sequential()).unwrap();
        for workers in [1usize, 2, 4, 8, 16] {
            let (par, mp) = build()
                .run(&inputs, &EngineConfig::parallel(workers))
                .unwrap();
            assert_eq!(seq, par, "workers={workers}");
            assert_eq!(ms, mp, "workers={workers}");
        }
    }

    #[test]
    fn multiple_sinks_concatenate_in_node_order() {
        let mut dag: DagJob<u64> = DagJob::new();
        let src = sum_round(&mut dag, "src", vec![], 4);
        sum_round(&mut dag, "sink-a", vec![src], 2);
        sum_round(&mut dag, "sink-b", vec![src], 3);
        let (out, m) = dag
            .run(&(0..20).collect::<Vec<_>>(), &EngineConfig::sequential())
            .unwrap();
        assert_eq!(m.rounds.len(), 3);
        // sink-a's outputs come first, then sink-b's.
        let (a_out, _) = {
            let mut d: DagJob<u64> = DagJob::new();
            let s = sum_round(&mut d, "src", vec![], 4);
            sum_round(&mut d, "sink-a", vec![s], 2);
            d.run(&(0..20).collect::<Vec<_>>(), &EngineConfig::sequential())
                .unwrap()
        };
        assert_eq!(&out[..a_out.len()], &a_out[..]);
    }

    #[test]
    fn per_node_budget_aborts_with_the_offending_round() {
        let mut dag: DagJob<u64> = DagJob::new();
        let a = sum_round(&mut dag, "a", vec![], 10);
        let b = sum_round(&mut dag, "b", vec![a], 1); // funnels into 1 key
        dag.set_budget(b, 2);
        let err = dag
            .run(&(0..30).collect::<Vec<_>>(), &EngineConfig::sequential())
            .unwrap_err();
        assert!(
            matches!(err, EngineError::ReducerOverflow { load: 10, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn node_budget_overrides_the_base_config() {
        let mut dag: DagJob<u64> = DagJob::new();
        let n = sum_round(&mut dag, "only", vec![], 1); // all 30 on one key
        dag.set_budget(n, 64);
        // Base budget of 2 would abort; the node override lifts it.
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let (out, _) = dag.run(&(0..30).collect::<Vec<_>>(), &cfg).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn concurrent_failures_report_the_smallest_node() {
        // Two same-stage nodes both overflow; node index 1 must win.
        let build = || {
            let mut dag: DagJob<u64> = DagJob::new();
            let src = sum_round(&mut dag, "src", vec![], 16);
            let b = sum_round(&mut dag, "b", vec![src], 1);
            let c = sum_round(&mut dag, "c", vec![src], 1);
            dag.set_budget(b, 3);
            dag.set_budget(c, 2);
            dag
        };
        let inputs: Vec<u64> = (0..64).collect();
        for workers in [1usize, 4, 8] {
            let err = build()
                .run(&inputs, &EngineConfig::parallel(workers))
                .unwrap_err();
            // Node b (budget 3) fails with load 16; node c would fail
            // with budget 2 — but b has the smaller index.
            assert!(
                matches!(err, EngineError::ReducerOverflow { limit: 3, .. }),
                "workers={workers}: {err:?}"
            );
        }
    }

    #[test]
    fn single_schema_node_equals_run_schema() {
        #[derive(Clone)]
        struct Fan;
        impl SchemaJob<u64, u64> for Fan {
            fn assign(&self, x: &u64) -> Vec<ReducerId> {
                vec![x % 5, x % 7]
            }
            fn reduce(&self, r: ReducerId, inputs: &[u64], emit: &mut dyn FnMut(u64)) {
                emit(r * 1_000 + inputs.len() as u64);
            }
        }
        let inputs: Vec<u64> = (0..100).collect();
        let (expect, expect_m) = run_schema(&inputs, &Fan, &EngineConfig::sequential()).unwrap();
        for pipeline in Pipeline::ALL {
            let mut dag: DagJob<u64> = DagJob::new();
            dag.add_schema_round("fan", vec![], Fan, pipeline);
            assert_eq!(dag.depth(), 1);
            let (out, m) = dag.run(&inputs, &EngineConfig::parallel(4)).unwrap();
            assert_eq!(out, expect, "{}", pipeline.name());
            assert_eq!(m.rounds, vec![expect_m.clone()], "{}", pipeline.name());
        }
    }

    #[test]
    #[should_panic(expected = "dependencies must point at earlier nodes")]
    fn forward_dependencies_are_rejected() {
        let mut dag: DagJob<u64> = DagJob::new();
        dag.add_node("bad", vec![3], |_, _| {
            Ok((Vec::new(), RoundMetrics::default()))
        });
    }
}
