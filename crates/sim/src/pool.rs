//! The resident execution substrate: a persistent work-stealing pool.
//!
//! Every fan-out in this workspace used to spawn fresh threads through
//! [`std::thread::scope`] — once per map phase, per partition group-sort,
//! per reduce range, per DAG level, per dirty-reducer chunk, per sweep
//! q-point. On the small-and-medium rounds the planner actually emits,
//! that spawn + join barrier dominates wall-clock: the paper's cost model
//! prices communication, but the reproduction was paying orchestration.
//!
//! [`WorkerPool`] replaces the spawn with a **resident** pool:
//!
//! * **One spawn, ever.** [`WorkerPool::global`] lazily spawns
//!   `available_parallelism` workers on first use; every subsequent batch
//!   reuses them. A resident process (the future `mr-serve` daemon) pays
//!   thread creation once per lifetime, not once per request phase.
//! * **Injector + stealing.** A batch of tasks enters a shared injector
//!   queue. Idle workers pull (steal) tasks one at a time from the oldest
//!   batch, so load balances dynamically — the sweep's
//!   orders-of-magnitude point-cost spread and the engine's skewed
//!   partitions need exactly that. The *submitting* thread participates
//!   too: it drains its own batch alongside the workers, which both adds
//!   a lane and guarantees progress when batches nest (a DAG level's node
//!   task submits its round's map batch from inside a worker) or when the
//!   pool has zero threads.
//! * **Parked-idle protocol.** A worker that finds the injector empty
//!   parks on a condvar. Parked workers consume no CPU, so a resident
//!   pool costs nothing between requests; [`WorkerPool::parked`] exposes
//!   the count for the battery that pins this.
//! * **Determinism.** Results land in per-task slots indexed by
//!   submission order, so a batch's result vector is byte-identical no
//!   matter which worker ran what or in what order — the same
//!   chunk-order-in/chunk-order-out contract the scoped substrate had.
//!   [`Executor::Scoped`] retains that original substrate as the oracle,
//!   the way [`naive`](crate::naive) pins the columnar data plane.
//! * **Panic transparency.** A panicking task does not kill its worker:
//!   the payload is caught, the batch completes, and the payload is
//!   re-thrown on the submitting thread — observable behaviour matches
//!   the scoped substrate's `join().expect(..)`.
//!
//! # Safety story
//!
//! Tasks borrow from the submitting stack frame (`'env`), but resident
//! workers are `'static`; [`WorkerPool::run`] erases the lifetime with a
//! `transmute` exactly the way scoped threads do under the hood. The
//! erasure is sound for the same reason `std::thread::scope` is: `run`
//! does not return until every task of the batch has completed (the
//! completion latch), so no borrow outlives its frame.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Cached handles for the pool's always-on metrics counters.
struct PoolCounters {
    batches: mr_obs::Counter,
    tasks: mr_obs::Counter,
}

fn pool_counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        batches: mr_obs::global().counter("pool.batches"),
        tasks: mr_obs::global().counter("pool.tasks"),
    })
}

/// Which parallel substrate a fan-out executes on.
///
/// The engine's default is the resident [`WorkerPool`]; the original
/// per-call [`std::thread::scope`] substrate is retained as the oracle —
/// the substrate twin of [`Pipeline`](crate::Pipeline)'s data-plane pair.
/// Both satisfy the same determinism contract, so everything built on the
/// engine is parameterised over the substrate and differential tests can
/// cross-check them in one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The resident work-stealing pool (the production substrate).
    Pool,
    /// Fresh `std::thread::scope` threads per call (the oracle substrate).
    Scoped,
}

impl Executor {
    /// Both substrates, for exhaustive differential loops.
    pub const ALL: [Executor; 2] = [Executor::Pool, Executor::Scoped];

    /// Short display name (`"pool"` / `"scoped"`).
    pub fn name(self) -> &'static str {
        match self {
            Executor::Pool => "pool",
            Executor::Scoped => "scoped",
        }
    }
}

/// A lifetime-erased batch task.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch: its queue of pending tasks, the completion latch,
/// and the first caught panic payload.
struct Batch {
    /// Tasks not yet claimed. Workers and the submitting thread pop from
    /// the front; emptiness here does *not* mean completion (claimed
    /// tasks may still be running) — that is what `remaining` tracks.
    queue: Mutex<VecDeque<Task>>,
    /// Tasks not yet *finished*. Guarded by a mutex (not an atomic) so
    /// the completion wait is a standard condvar latch.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// First panic payload caught from a task, re-thrown at the caller.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Submission timestamp, stamped only while the trace recorder is
    /// enabled; every claim records a `pool.queue_wait` interval from it.
    enqueued: Option<Instant>,
}

impl Batch {
    fn new(tasks: VecDeque<Task>) -> Self {
        let n = tasks.len();
        Batch {
            queue: Mutex::new(tasks),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
            enqueued: mr_obs::now_if_enabled(),
        }
    }

    /// Claims the next unclaimed task, if any.
    fn pop(&self) -> Option<Task> {
        self.queue
            .lock()
            .expect("pool batch queue poisoned")
            .pop_front()
    }

    /// Records the queue-wait interval for a freshly claimed task and
    /// runs it under a `pool.task` span.
    fn run_claimed(&self, task: Task) {
        if let Some(enqueued) = self.enqueued {
            mr_obs::complete("pool.queue_wait", enqueued);
        }
        let _span = mr_obs::span("pool.task");
        self.run_task(task);
    }

    /// Runs one claimed task, capturing a panic instead of unwinding into
    /// the worker loop, and counts it finished.
    fn run_task(&self, task: Task) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().expect("pool panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = self.remaining.lock().expect("pool batch latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of the batch has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool batch latch poisoned");
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .expect("pool batch latch poisoned");
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Inner {
    /// The injector: batches with unclaimed tasks, oldest first.
    injector: Mutex<VecDeque<Arc<Batch>>>,
    /// Wakes parked workers when a batch arrives (or shutdown begins).
    work: Condvar,
    /// Number of workers currently parked on `work`.
    parked: AtomicUsize,
    /// Set once, by `Drop`; parked workers observe it and exit.
    shutdown: AtomicBool,
    /// Resident worker count, for the occupancy trace events.
    workers: usize,
}

/// A persistent pool of worker threads executing batches of tasks from a
/// shared injector queue. See the [module docs](self) for the protocol
/// and determinism contract; most callers want [`WorkerPool::global`].
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with its own `workers.max(1)` resident threads. Intended
    /// for lifecycle tests; production fan-outs share
    /// [`global`](WorkerPool::global).
    pub fn with_workers(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            injector: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            parked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            workers: workers.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mr-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// The process-wide resident pool, spawned on first use with
    /// `available_parallelism` workers and never torn down — the
    /// substrate every `EngineConfig { executor: Pool, .. }` fan-out
    /// shares.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WorkerPool::with_workers(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Number of workers currently parked idle (the between-requests
    /// steady state of a resident pool is `parked() == workers()`).
    pub fn parked(&self) -> usize {
        self.inner.parked.load(Ordering::SeqCst)
    }

    /// Executes a batch of tasks and returns their results **in task
    /// order**, independent of which thread ran what. Blocks until every
    /// task has finished; the submitting thread drains the batch
    /// alongside the workers (see the module docs). If a task panicked,
    /// the first payload is re-thrown here after the batch completes.
    pub fn run<'env, R: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        pool_counters().batches.incr();
        pool_counters().tasks.add(n as u64);
        if n == 1 {
            let task = tasks.into_iter().next().expect("len checked");
            let _span = mr_obs::span("pool.task");
            return vec![task()];
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let base = results.as_mut_ptr();
        let erased: VecDeque<Task> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| {
                // SAFETY: `i < n`, so the slot pointer is in bounds; slot
                // `i` is written by exactly this task; and `results` is
                // not read (or moved in a way that relocates its buffer)
                // until `batch.wait()` below has proven every task done.
                let slot = SlotPtr(unsafe { base.add(i) });
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let slot = slot;
                    unsafe { slot.0.write(Some(task())) }
                });
                // SAFETY: the lifetime erasure scoped threads perform
                // internally — sound because `batch.wait()` below blocks
                // this frame until every erased task has finished, so no
                // `'env` borrow survives the frame.
                unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                }
            })
            .collect();
        let batch = Arc::new(Batch::new(erased));
        {
            let mut injector = self.inner.injector.lock().expect("pool injector poisoned");
            injector.push_back(Arc::clone(&batch));
            self.inner.work.notify_all();
        }
        // Participate: drain our own batch so nested submissions (a pool
        // task submitting a sub-batch) and zero-spare-worker situations
        // always make progress, then wait out whatever was stolen.
        let caller_span = mr_obs::span("pool.caller");
        while let Some(task) = batch.pop() {
            batch.run_claimed(task);
        }
        drop(caller_span);
        batch.wait();
        if let Some(payload) = batch.panic.lock().expect("pool panic slot poisoned").take() {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("batch latch guarantees every slot is written"))
            .collect()
    }
}

impl Drop for WorkerPool {
    /// Tears the pool down (dedicated pools only — the global pool lives
    /// for the process). `run` borrows the pool, so no batch can be in
    /// flight while `Drop` runs.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.inner.injector.lock().expect("pool injector poisoned");
            self.inner.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A `Send`-able pointer to one result slot. Safety is argued at the two
/// unsafe sites in [`WorkerPool::run`].
struct SlotPtr<R>(*mut Option<R>);

// SAFETY: the pointee is owned by the submitting frame, written by exactly
// one task, and not read until the batch latch proves the writer finished.
unsafe impl<R: Send> Send for SlotPtr<R> {}

/// The resident worker: claim one task from the oldest batch with work,
/// run it, repeat; park on the condvar when the injector is empty.
fn worker_loop(inner: &Inner) {
    loop {
        let claimed: (Arc<Batch>, Task) = {
            let mut injector = inner.injector.lock().expect("pool injector poisoned");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut found = None;
                // Scan from the oldest batch; drop batches whose queues
                // have drained (their claimed tasks finish elsewhere).
                while let Some(front) = injector.front().cloned() {
                    let mut queue = front.queue.lock().expect("pool batch queue poisoned");
                    if let Some(task) = queue.pop_front() {
                        let drained = queue.is_empty();
                        drop(queue);
                        if drained {
                            injector.pop_front();
                        }
                        found = Some((front, task));
                        break;
                    }
                    drop(queue);
                    injector.pop_front();
                }
                if let Some(claimed) = found {
                    break claimed;
                }
                // Parked-idle protocol: no work anywhere — sleep until a
                // submission (or shutdown) signals the condvar.
                inner.parked.fetch_add(1, Ordering::SeqCst);
                injector = inner.work.wait(injector).expect("pool injector poisoned");
                inner.parked.fetch_sub(1, Ordering::SeqCst);
            }
        };
        let (batch, task) = claimed;
        mr_obs::instant_value(
            "pool.occupancy",
            inner
                .workers
                .saturating_sub(inner.parked.load(Ordering::SeqCst)) as u64,
        );
        batch.run_claimed(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Boxes a results-producing closure for [`WorkerPool::run`].
    fn job<'env, R: Send>(
        f: impl FnOnce() -> R + Send + 'env,
    ) -> Box<dyn FnOnce() -> R + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::with_workers(4);
        let results = pool.run((0..64).map(|i| job(move || i * i)).collect());
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_may_borrow_the_submitting_frame() {
        let pool = WorkerPool::with_workers(2);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(100).collect();
        let sums = pool.run(
            chunks
                .iter()
                .map(|c| job(move || c.iter().sum::<u64>()))
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::with_workers(2);
        assert_eq!(pool.run(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new()), []);
        assert_eq!(pool.run(vec![job(|| 7u8)]), vec![7]);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        // A pool task that itself submits a batch — the DAG-level shape
        // (node task → round phases). Caller participation guarantees
        // progress even on a single-worker pool.
        let pool = Arc::new(WorkerPool::with_workers(1));
        let outer: Vec<_> = (0..4u64)
            .map(|i| {
                let pool = Arc::clone(&pool);
                job(move || {
                    pool.run((0..4u64).map(|j| job(move || i * 10 + j)).collect())
                        .iter()
                        .sum::<u64>()
                })
            })
            .collect();
        let sums = pool.run(outer);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn a_panicking_task_resumes_at_the_caller_and_spares_the_pool() {
        let pool = WorkerPool::with_workers(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..8)
                    .map(|i| job(move || if i == 5 { panic!("task 5 exploded") } else { i }))
                    .collect(),
            )
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool survives and still executes fresh batches.
        assert_eq!(pool.run(vec![job(|| 1), job(|| 2)]), vec![1, 2]);
    }

    #[test]
    fn idle_workers_park() {
        let pool = WorkerPool::with_workers(3);
        pool.run((0..16).map(|i| job(move || i)).collect());
        // After the batch, workers drift back to the condvar. Poll with a
        // deadline — parking is prompt but asynchronous.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.parked() < pool.workers() {
            assert!(
                Instant::now() < deadline,
                "workers failed to park: {}/{}",
                pool.parked(),
                pool.workers()
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.parked(), 3);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().workers() >= 1);
    }

    #[test]
    fn executor_vocabulary() {
        assert_eq!(Executor::ALL.len(), 2);
        assert_eq!(Executor::Pool.name(), "pool");
        assert_eq!(Executor::Scoped.name(), "scoped");
    }
}
