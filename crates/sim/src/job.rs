//! Multi-round map-reduce pipelines.
//!
//! §6.3 of the paper analyses a **two-phase** matrix-multiplication job in
//! which the first round's reduce output (partial sums `x_ijk` grouped per
//! `(i,k)`) becomes the second round's map input. [`Job`] models exactly
//! this chaining: a `Job<I, O>` consumes inputs of type `I` and produces
//! outputs of type `O` after one or more rounds, accumulating
//! [`RoundMetrics`] per round so total communication can be compared across
//! strategies.

use crate::delta::{run_round_on, Pipeline};
use crate::engine::{run_round, EngineConfig, EngineError};
use crate::mapper::{FnMapper, FnReducer, Mapper, Reducer};
use crate::metrics::{JobMetrics, RoundMetrics};
use crate::schema::{ReducerId, SchemaJob};
use std::fmt::Debug;
use std::hash::Hash;

type RunFn<I, O> =
    Box<dyn Fn(Vec<I>, &EngineConfig) -> Result<(Vec<O>, Vec<RoundMetrics>), EngineError> + Sync>;

/// A chain of one or more map-reduce rounds taking `I` inputs to `O`
/// outputs.
pub struct Job<I, O> {
    run_fn: RunFn<I, O>,
    rounds: usize,
}

impl<I: Sync + 'static, O: Send + 'static> Job<I, O> {
    /// A single-round job from a mapper and reducer.
    pub fn single<K, V, M, R>(mapper: M, reducer: R) -> Job<I, O>
    where
        K: Ord + Hash + Debug + Send + Sync + 'static,
        V: Send + Sync + 'static,
        M: Mapper<I, K, V> + 'static,
        R: Reducer<K, V, O> + 'static,
    {
        Job {
            run_fn: Box::new(move |inputs, cfg| {
                let (out, m) = run_round(&inputs, &mapper, &reducer, cfg)?;
                Ok((out, vec![m]))
            }),
            rounds: 1,
        }
    }

    /// A single-round job executing a [`SchemaJob`] on the selected
    /// shuffle [`Pipeline`] — the `Job`-shaped view of
    /// [`run_schema`](crate::run_schema), so mapping schemas compose with
    /// [`then`](Job::then) chains and the delta subsystem's
    /// plane-parameterisation threads through multi-round jobs.
    pub fn from_schema<S>(schema: S, pipeline: Pipeline) -> Job<I, O>
    where
        I: Clone + Send + 'static,
        S: SchemaJob<I, O> + 'static,
    {
        Job {
            run_fn: Box::new(move |inputs, cfg| {
                let mapper = FnMapper(|input: &I, emit: &mut dyn FnMut(ReducerId, I)| {
                    for r in schema.assign(input) {
                        emit(r, input.clone());
                    }
                });
                let reducer = FnReducer(|rid: &ReducerId, vs: &[I], emit: &mut dyn FnMut(O)| {
                    schema.reduce(*rid, vs, emit)
                });
                let (out, m) = run_round_on(pipeline, &inputs, &mapper, &reducer, cfg)?;
                Ok((out, vec![m]))
            }),
            rounds: 1,
        }
    }

    /// A job from an arbitrary run function reporting `rounds` rounds —
    /// the adapter that lets run-time-shaped executors (a
    /// [`DagJob`](crate::DagJob) picked by the planner's round-structure
    /// search) present themselves through the `Job` interface. The
    /// function must uphold the crate's contracts itself: deterministic
    /// outputs/metrics at every worker count, and exactly `rounds`
    /// entries of metrics on success.
    pub fn from_fn(
        rounds: usize,
        run_fn: impl Fn(Vec<I>, &EngineConfig) -> Result<(Vec<O>, Vec<RoundMetrics>), EngineError>
            + Sync
            + 'static,
    ) -> Job<I, O> {
        Job {
            run_fn: Box::new(run_fn),
            rounds,
        }
    }

    /// Appends another round: this job's outputs become the next round's
    /// map inputs.
    pub fn then<K2, V2, O2, M, R>(self, mapper: M, reducer: R) -> Job<I, O2>
    where
        O: Sync,
        K2: Ord + Hash + Debug + Send + Sync + 'static,
        V2: Send + Sync + 'static,
        O2: Send + 'static,
        M: Mapper<O, K2, V2> + 'static,
        R: Reducer<K2, V2, O2> + 'static,
    {
        let prev = self.run_fn;
        let rounds = self.rounds + 1;
        Job {
            run_fn: Box::new(move |inputs, cfg| {
                let (mid, mut metrics) = prev(inputs, cfg)?;
                let (out, m) = run_round(&mid, &mapper, &reducer, cfg)?;
                metrics.push(m);
                Ok((out, metrics))
            }),
            rounds,
        }
    }

    /// Number of rounds in the chain.
    pub fn num_rounds(&self) -> usize {
        self.rounds
    }

    /// Executes the job.
    pub fn run(
        &self,
        inputs: Vec<I>,
        config: &EngineConfig,
    ) -> Result<(Vec<O>, JobMetrics), EngineError> {
        let (out, rounds) = (self.run_fn)(inputs, config)?;
        Ok((out, JobMetrics { rounds }))
    }

    /// Executes the job, additionally reporting its wall-clock time — the
    /// multi-round counterpart of
    /// [`run_schema_timed`](crate::schema::run_schema_timed).
    ///
    /// The timing covers all rounds (every map, shuffle, and reduce in the
    /// chain) and nothing else. Like every wall-clock figure in this
    /// crate it is *execution metadata*: determinism comparisons must use
    /// the outputs and metrics only. The plan-execution layer (`mr-plan`)
    /// lowers multi-round choices — the §6.3 two-phase matmul — through
    /// this entry point.
    pub fn run_timed(
        &self,
        inputs: Vec<I>,
        config: &EngineConfig,
    ) -> Result<(Vec<O>, JobMetrics, std::time::Duration), EngineError> {
        let start = std::time::Instant::now();
        let (out, metrics) = self.run(inputs, config)?;
        Ok((out, metrics, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    /// Two-round job: round 1 computes per-group sums, round 2 finds the
    /// global max of the sums — a miniature of the paper's
    /// "join followed by aggregation" example (§7.1).
    #[test]
    fn two_round_pipeline() {
        let job: Job<(u32, u32), u32> = Job::single(
            FnMapper(|&(g, x): &(u32, u32), emit: &mut dyn FnMut(u32, u32)| emit(g, x)),
            FnReducer(|g: &u32, vs: &[u32], emit: &mut dyn FnMut((u32, u32))| {
                emit((*g, vs.iter().sum()))
            }),
        )
        .then(
            FnMapper(|&(_, s): &(u32, u32), emit: &mut dyn FnMut(u8, u32)| emit(0, s)),
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(u32)| {
                emit(*vs.iter().max().unwrap())
            }),
        );
        assert_eq!(job.num_rounds(), 2);
        let inputs = vec![(0, 5), (1, 7), (0, 2), (1, 1), (2, 4)];
        let (out, metrics) = job.run(inputs, &EngineConfig::sequential()).unwrap();
        assert_eq!(out, vec![8]); // group 1 sums to 8
        assert_eq!(metrics.rounds.len(), 2);
        assert_eq!(metrics.rounds[0].inputs, 5);
        assert_eq!(metrics.rounds[1].inputs, 3); // three group sums
        assert_eq!(metrics.total_communication(), 5 + 3);
    }

    #[test]
    fn single_round_job_matches_run_round() {
        let job: Job<u32, u32> = Job::single(
            FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 3, *x)),
            FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.iter().sum())),
        );
        let (out, m) = job
            .run((0..9).collect(), &EngineConfig::sequential())
            .unwrap();
        assert_eq!(out, vec![9, 12, 15]); // per-residue sums mod 3
        assert_eq!(m.rounds.len(), 1);
        assert_eq!(m.max_reducer_load(), 3);
    }

    #[test]
    fn budget_enforced_in_later_rounds() {
        // Round 2 funnels everything to one key, violating q=2.
        let job: Job<u32, u32> = Job::single(
            FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x)),
            FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs[0])),
        )
        .then(
            FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x)),
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.iter().sum())),
        );
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let err = job.run((0..5).collect(), &cfg).unwrap_err();
        assert!(matches!(err, EngineError::ReducerOverflow { load: 5, .. }));
    }

    #[test]
    fn timed_run_matches_untimed_and_reports_a_duration() {
        let build = || -> Job<u32, u32> {
            Job::single(
                FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 3, *x)),
                FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.iter().sum())),
            )
        };
        let inputs: Vec<u32> = (0..9).collect();
        let (out, m) = build()
            .run(inputs.clone(), &EngineConfig::sequential())
            .unwrap();
        let (tout, tm, wall) = build()
            .run_timed(inputs, &EngineConfig::sequential())
            .unwrap();
        assert_eq!(out, tout);
        assert_eq!(m, tm);
        assert!(wall > std::time::Duration::ZERO);
    }

    #[test]
    fn timed_run_propagates_overflow() {
        let job: Job<u32, u32> = Job::single(
            FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x)),
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.iter().sum())),
        );
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        assert!(job.run_timed((0..5).collect(), &cfg).is_err());
    }

    #[test]
    fn from_schema_matches_run_schema_on_both_planes() {
        use crate::schema::run_schema;
        struct PairUp;
        impl SchemaJob<u32, (u32, u32)> for PairUp {
            fn assign(&self, input: &u32) -> Vec<ReducerId> {
                vec![(*input / 2) as ReducerId]
            }
            fn reduce(&self, _r: ReducerId, inputs: &[u32], emit: &mut dyn FnMut((u32, u32))) {
                for i in 0..inputs.len() {
                    for j in (i + 1)..inputs.len() {
                        emit((inputs[i], inputs[j]));
                    }
                }
            }
        }
        let inputs: Vec<u32> = (0..40).collect();
        let (expect, expect_m) = run_schema(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        for pipeline in Pipeline::ALL {
            let job: Job<u32, (u32, u32)> = Job::from_schema(PairUp, pipeline);
            assert_eq!(job.num_rounds(), 1);
            let (out, m) = job.run(inputs.clone(), &EngineConfig::parallel(4)).unwrap();
            assert_eq!(out, expect, "{}", pipeline.name());
            assert_eq!(m.rounds, vec![expect_m.clone()], "{}", pipeline.name());
        }
    }

    #[test]
    fn parallel_pipeline_is_deterministic() {
        let build = || -> Job<u32, (u32, u32)> {
            Job::single(
                FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
                    emit(*x % 10, *x);
                    emit((*x + 1) % 10, *x);
                }),
                FnReducer(|k: &u32, vs: &[u32], emit: &mut dyn FnMut((u32, u32))| {
                    emit((*k, vs.iter().sum()))
                }),
            )
        };
        let inputs: Vec<u32> = (0..1000).collect();
        let (seq, ms) = build()
            .run(inputs.clone(), &EngineConfig::sequential())
            .unwrap();
        let (par, mp) = build().run(inputs, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(seq, par);
        assert_eq!(ms, mp);
    }
}
