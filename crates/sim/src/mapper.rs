//! The `Mapper` and `Reducer` traits.
//!
//! A map-reduce round is specified by a [`Mapper`] that turns each input
//! into key-value pairs independently of all other inputs (§2.3: "a map
//! function turns input objects into key-value pairs independently, without
//! knowing what else is in the input") and a [`Reducer`] applied once per
//! distinct key to the full list of values shuffled to that key.
//!
//! Both traits take `&self` and must be [`Sync`] so the engine can share
//! them across worker threads. [`FnMapper`] / [`FnReducer`] adapt plain
//! closures.

/// Turns one input into zero or more key-value pairs.
pub trait Mapper<I, K, V>: Sync {
    /// Emits the key-value pairs for `input` through `emit`.
    ///
    /// Must be a pure function of `input`: the engine may invoke mappers
    /// from multiple threads in any order.
    fn map(&self, input: &I, emit: &mut dyn FnMut(K, V));
}

/// Processes one reduce-key and its associated list of values.
///
/// In the paper's terminology (§1.1) a *reducer* is the pair
/// (reduce-key, value list); this trait is the reduce *function* applied to
/// each such reducer.
pub trait Reducer<K, V, O>: Sync {
    /// Emits outputs for `key` given every value shuffled to it.
    fn reduce(&self, key: &K, values: &[V], emit: &mut dyn FnMut(O));
}

/// Adapts a closure `Fn(&I, &mut dyn FnMut(K, V))` into a [`Mapper`].
pub struct FnMapper<F>(pub F);

impl<I, K, V, F> Mapper<I, K, V> for FnMapper<F>
where
    F: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
{
    fn map(&self, input: &I, emit: &mut dyn FnMut(K, V)) {
        (self.0)(input, emit)
    }
}

/// Adapts a closure `Fn(&K, &[V], &mut dyn FnMut(O))` into a [`Reducer`].
pub struct FnReducer<F>(pub F);

impl<K, V, O, F> Reducer<K, V, O> for FnReducer<F>
where
    F: Fn(&K, &[V], &mut dyn FnMut(O)) + Sync,
{
    fn reduce(&self, key: &K, values: &[V], emit: &mut dyn FnMut(O)) {
        (self.0)(key, values, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_mapper_adapts_closures() {
        let m = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(*x % 3, *x);
            emit(*x % 5, *x);
        });
        let mut pairs = Vec::new();
        m.map(&7, &mut |k, v| pairs.push((k, v)));
        assert_eq!(pairs, vec![(1, 7), (2, 7)]);
    }

    #[test]
    fn fn_reducer_adapts_closures() {
        let r = FnReducer(|k: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| {
            emit(*k + vs.iter().sum::<u32>())
        });
        let mut out = Vec::new();
        r.reduce(&10, &[1, 2, 3], &mut |o| out.push(o));
        assert_eq!(out, vec![16]);
    }
}
