//! The columnar shuffle data plane.
//!
//! This module is the engine's hot path. Instead of inserting every
//! `(K, V)` emission into a per-partition `BTreeMap` (comparison-bound,
//! pointer-chasing, one allocation per distinct key), the shuffle moves
//! flat **columns**:
//!
//! 1. **Fingerprint at emit.** Every key is hashed exactly once, as the
//!    mapper emits it, to a seed-free 64-bit fingerprint
//!    ([`fingerprint_of`]). Emissions land in [`ColumnBuf`]s — three
//!    parallel arrays `(hashes, keys, vals)` — so the map phase is pure
//!    appends.
//! 2. **Radix partition by hash bits.** The *top* fingerprint bits route a
//!    pair to its shuffle partition ([`partition_of_hash`], one partition
//!    per worker); inside a partition the *low* bits select a cache-sized
//!    radix bucket ([`bucket_count`] of them). A key's pairs always share
//!    a fingerprint, so they always share a partition and a bucket. The
//!    sequential engine routes emissions straight into bucket columns;
//!    the parallel engine scatters per-partition columns into buckets
//!    afterwards ([`group_partition`]).
//! 3. **Group each bucket with an open-addressing table.** A small
//!    linear-probing table (bucket-sized, cache-resident) maps each
//!    fingerprint to a group id in one `O(n)` pass — no per-pair sort at
//!    all ([`group_buckets`]). Groups are discovered in first-arrival
//!    order, so a prefix sum over group sizes places every value with one
//!    more pass. Distinct keys that collide on the full 64-bit
//!    fingerprint (possible, vanishingly rare) are detected during
//!    probing and that bucket falls back to an exact sort-based path
//!    (`(fingerprint, arrival)` code sort plus a key-compare repair), so
//!    grouping is exact for *any* `Hash` impl.
//!
//! The result is a [`GroupedRun`]: a flat `values` column holding every
//! group's values contiguously (arrival order within a group) plus one
//! [`Group`] descriptor per distinct key — no per-key `Vec`, no tree
//! nodes. Sorting the group *descriptors* by key
//! ([`GroupedRun::sort_groups_by_key`]) then restores the engine's
//! determinism contract — outputs in ascending key order, values in
//! emission order within a key — at the cost of one sort over distinct
//! keys instead of one over all pairs; for large directories with
//! fixed-width unsigned keys even that is an `O(n)` LSD radix sort
//! rather than a comparison sort. The retained
//! [`naive`](crate::naive) module implements the old `BTreeMap` pipeline
//! and is the regression oracle proving the two paths byte-identical.

use std::any::TypeId;
use std::hash::{Hash, Hasher};

/// Multiplier of the MUM fingerprint mix (the splitmix64 increment — an
/// odd constant with well-spread bits).
const MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// Nonzero seed state so the all-zero input does not fix-point to zero.
const SEED: u64 = 0x2545_f491_4f6c_dd1d;

/// A deterministic, seed-free fingerprint hasher.
///
/// `std`'s `RandomState` is randomly seeded per process, which would make
/// partition loads — and the committed bench baselines — irreproducible;
/// this hasher produces the same fingerprint for the same key bytes on
/// every run. Each integer write is one MUM step (wyhash's primitive: a
/// 64×64→128 multiply whose halves are folded together with xor — a
/// single widening multiply instruction, yet every input bit reaches both
/// the top output bits that route partitions and the low bits that select
/// radix buckets). The hash runs once per mapper emission, so its latency
/// is map-phase hot; this is deliberately the cheapest mix that still
/// passes the spread tests below.
struct FingerprintHasher(u64);

impl FingerprintHasher {
    #[inline]
    fn mix(&mut self, x: u64) {
        let m = u128::from(self.0 ^ x).wrapping_mul(u128::from(MUL));
        self.0 = (m >> 64) as u64 ^ m as u64;
    }
}

impl Hasher for FingerprintHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.mix(u64::from(x));
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.mix(u64::from(x));
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.mix(u64::from(x));
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.mix(x);
    }

    #[inline]
    fn write_u128(&mut self, x: u128) {
        self.mix(x as u64);
        self.mix((x >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_i8(&mut self, x: i8) {
        self.mix(x as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, x: i16) {
        self.mix(x as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, x: i32) {
        self.mix(x as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, x: i64) {
        self.mix(x as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Every write already ran a full MUM avalanche; no extra
        // finalisation pass is needed.
        self.0
    }
}

/// The key's 64-bit shuffle fingerprint, computed once at emit time.
#[inline]
pub(crate) fn fingerprint_of<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FingerprintHasher(SEED);
    key.hash(&mut h);
    h.finish()
}

/// The shuffle partition (in `0..partitions`) that owns fingerprint `h`:
/// a multiply-shift on the **top** hash bits, so any partition count —
/// not just powers of two — radix-partitions the fingerprint space into
/// contiguous ranges. Every pair of a given key lands in the same
/// partition, which is what lets grouping and budget checks run
/// per-partition without cross-talk.
#[inline]
pub(crate) fn partition_of_hash(h: u64, partitions: usize) -> usize {
    ((u128::from(h) * partitions as u128) >> 64) as usize
}

/// Flat, append-only emission storage: three parallel columns
/// `(hashes, keys, vals)` of equal length. This is the unit the map
/// phase fills, the radix scatter routes, and the grouping stage
/// consumes — `(K, V)` pairs never exist as boxed or tree-resident
/// values anywhere in the data plane.
pub(crate) struct ColumnBuf<K, V> {
    /// Per-emission key fingerprints (computed once, at emit).
    pub hashes: Vec<u64>,
    /// Emitted keys, in emission order.
    pub keys: Vec<K>,
    /// Emitted values, in emission order.
    pub vals: Vec<V>,
}

impl<K, V> ColumnBuf<K, V> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty buffer with all three columns preallocated for `n`
    /// emissions — the reallocation fix for the map phase: a worker that
    /// knows (or can bound) its emission count never grows mid-map.
    pub fn with_capacity(n: usize) -> Self {
        ColumnBuf {
            hashes: Vec::with_capacity(n),
            keys: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
        }
    }

    /// Number of buffered emissions.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Appends a pair whose fingerprint is already known.
    #[inline]
    pub fn push(&mut self, hash: u64, key: K, val: V) {
        self.hashes.push(hash);
        self.keys.push(key);
        self.vals.push(val);
    }

    /// Appends all of `other`'s emissions (in order) to `self`.
    pub fn append(&mut self, mut other: ColumnBuf<K, V>) {
        self.hashes.append(&mut other.hashes);
        self.keys.append(&mut other.keys);
        self.vals.append(&mut other.vals);
    }

    /// Splits the buffer into `parts` buffers routed by `route(hash)`,
    /// preserving arrival order within each part. A counting pass sizes
    /// every part exactly before a single move pass fills them — no
    /// growth reallocation, the second half of the map-scatter
    /// reallocation fix.
    pub fn scatter(self, parts: usize, route: impl Fn(u64) -> usize) -> Vec<ColumnBuf<K, V>> {
        let _span = mr_obs::span("columnar.scatter");
        let mut counts = vec![0usize; parts];
        for &h in &self.hashes {
            counts[route(h)] += 1;
        }
        let mut out: Vec<ColumnBuf<K, V>> =
            counts.into_iter().map(ColumnBuf::with_capacity).collect();
        let ColumnBuf { hashes, keys, vals } = self;
        for ((h, k), v) in hashes.into_iter().zip(keys).zip(vals) {
            out[route(h)].push(h, k, v);
        }
        out
    }
}

impl<K: Hash, V> ColumnBuf<K, V> {
    /// Appends a mapper emission, fingerprinting the key exactly once.
    #[inline]
    pub fn emit(&mut self, key: K, val: V) {
        let h = fingerprint_of(&key);
        self.push(h, key, val);
    }
}

/// One reduce group: a distinct key and the `values[start..start + len]`
/// slice of its [`GroupedRun`]. Deliberately *without* the key's
/// fingerprint: the hash has done its routing and grouping work by the
/// time a descriptor exists, and dropping it keeps the directory — the
/// thing [`GroupedRun::sort_groups_by_key`] moves around — as small as
/// possible (16 bytes for `u64` keys instead of 24).
#[derive(Clone, Copy)]
pub(crate) struct Group<K> {
    /// The distinct reduce key.
    pub key: K,
    /// Offset of the group's first value in the run's `values` column.
    pub start: u32,
    /// Number of values in the group — the reducer's load.
    pub len: u32,
}

/// A grouped shuffle partition: one flat `values` column holding every
/// group's values contiguously (emission order within a group), plus one
/// [`Group`] descriptor per distinct key. Produced in deterministic
/// (bucket, first-arrival) order by [`group_buckets`];
/// [`sort_groups_by_key`](Self::sort_groups_by_key) reorders the
/// descriptors (not the values) into ascending key order.
pub(crate) struct GroupedRun<K, V> {
    /// Group descriptors. Keys are distinct within a run.
    pub groups: Vec<Group<K>>,
    /// Every group's values, concatenated.
    pub values: Vec<V>,
}

impl<K, V> GroupedRun<K, V> {
    /// Number of distinct keys (reducers) in the run.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// The value slice of group `i`.
    #[cfg(test)]
    pub fn values_of(&self, i: usize) -> &[V] {
        let g = &self.groups[i];
        &self.values[g.start as usize..(g.start + g.len) as usize]
    }
}

impl<K: Ord + 'static, V> GroupedRun<K, V> {
    /// Sorts the group descriptors into ascending key order. Values stay
    /// put — descriptors carry their `(start, len)` windows with them —
    /// so this costs one pass over *distinct keys*, not over pairs. Keys
    /// are distinct within a run, so the order is total and deterministic.
    ///
    /// Large directories with fixed-width unsigned keys (`u64`/`u32`)
    /// take an LSD radix path — `O(n)` counting passes over the bytes
    /// that actually vary — which was the one comparison sort left on
    /// the columnar plane. Everything else (or anything below
    /// [`RADIX_MIN`], where one comparison sort beats eight counting
    /// passes) falls back to `sort_unstable_by`. Both orders are the
    /// same total key order, so the choice is invisible to callers.
    pub fn sort_groups_by_key(&mut self) {
        if self.groups.len() >= RADIX_MIN
            && (radix_sort_groups_as::<K, u64>(&mut self.groups)
                || radix_sort_groups_as::<K, u32>(&mut self.groups))
        {
            return;
        }
        self.groups.sort_unstable_by(|a, b| a.key.cmp(&b.key));
    }
}

/// Directory length below which the comparison sort wins: a radix pass
/// costs up to eight full counting sweeps regardless of size, so small
/// directories are cheaper to pdqsort.
const RADIX_MIN: usize = 2048;

/// Fixed-width unsigned key types the group directory can be
/// radix-sorted on: the `u64` image must order exactly like `Ord`.
trait RadixKey: Copy + 'static {
    /// The key as a `u64` whose natural order matches the key's `Ord`.
    fn radix(self) -> u64;
}

impl RadixKey for u64 {
    fn radix(self) -> u64 {
        self
    }
}

impl RadixKey for u32 {
    fn radix(self) -> u64 {
        u64::from(self)
    }
}

/// Radix-sorts the directory if `K` *is* the radix-capable type `T`
/// (checked by `TypeId`), returning whether it did. This is a concrete
/// per-type downcast, not specialisation: stable Rust cannot dispatch on
/// "K is u64" generically, but it can compare `TypeId`s and reinterpret
/// the vector once the types are proven identical.
fn radix_sort_groups_as<K: 'static, T: RadixKey>(groups: &mut Vec<Group<K>>) -> bool {
    if TypeId::of::<K>() != TypeId::of::<T>() {
        return false;
    }
    // SAFETY: `TypeId` equality above proves `K` and `T` are the same
    // type, so `Vec<Group<K>>` and `Vec<Group<T>>` are the same type and
    // the pointer cast is an identity reinterpretation.
    let groups = unsafe { &mut *(std::ptr::from_mut(groups) as *mut Vec<Group<T>>) };
    radix_sort_groups(groups);
    true
}

/// LSD radix sort of a group directory by key: one stable counting pass
/// per key byte, low to high, skipping bytes that are constant across
/// the directory (for dense key spaces most of the high bytes are).
fn radix_sort_groups<T: RadixKey>(groups: &mut Vec<Group<T>>) {
    let mut or_all = 0u64;
    let mut and_all = u64::MAX;
    for g in groups.iter() {
        let k = g.key.radix();
        or_all |= k;
        and_all &= k;
    }
    // A bit varies across keys iff it is set in some key but not all.
    let varying = or_all ^ and_all;
    if varying == 0 {
        return; // all keys equal (or directory empty / singleton)
    }
    let mut src = std::mem::take(groups);
    let mut dst = src.clone(); // same-length scratch; contents overwritten
    for byte in 0..8 {
        let shift = byte * 8;
        if (varying >> shift) & 0xFF == 0 {
            continue;
        }
        let mut counts = [0usize; 256];
        for g in &src {
            counts[((g.key.radix() >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, c) in offsets.iter_mut().zip(counts) {
            *o = acc;
            acc += c;
        }
        for g in &src {
            let b = ((g.key.radix() >> shift) & 0xFF) as usize;
            dst[offsets[b]] = *g;
            offsets[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *groups = src;
}

/// Cache-sizing policy for the radix bucketing: aim for ~1024-pair
/// buckets (columns plus probe table stay L1/L2 resident), power-of-two
/// so the selector is a mask, capped at 256 buckets per partition. The
/// bucket of fingerprint `h` is `h & (bucket_count - 1)` — the *low*
/// bits, independent of the top bits that select the partition, so
/// buckets refine partitions.
pub(crate) fn bucket_count(n: usize) -> usize {
    (n / 1024).next_power_of_two().clamp(1, 256)
}

/// Reusable scratch for [`group_buckets`]: every vector is cleared and
/// refilled per bucket, so one partition's grouping performs O(buckets)
/// allocations total instead of O(buckets × vectors).
#[derive(Default)]
struct GroupScratch {
    /// Open-addressing probe table: fingerprint → local group id
    /// (`u32::MAX` = empty). Sized to 2× the bucket, power of two.
    table: Vec<u32>,
    /// Local group id of each bucket position.
    group_of: Vec<u32>,
    /// First-arrival bucket position of each local group (ascending).
    reps: Vec<u32>,
    /// Member count of each local group.
    lens: Vec<u32>,
    /// Prefix sums of `lens`: each group's offset in the bucket's value
    /// segment. Consumed as write cursors by the value scatter.
    starts: Vec<u32>,
}

/// Groups every bucket of one shuffle partition, appending to a single
/// [`GroupedRun`]. Buckets must refine the partition by fingerprint
/// (all pairs of one key in one bucket, e.g. routed by
/// `hash & (bucket_count - 1)`); within each bucket pairs must be in
/// emission order. Group descriptors come out in deterministic
/// (bucket, first-arrival) order — callers that need the engine's
/// ascending-key contract follow with
/// [`GroupedRun::sort_groups_by_key`]. Within every group, values are in
/// arrival (= emission) order.
pub(crate) fn group_buckets<K: Ord, V>(buckets: Vec<ColumnBuf<K, V>>) -> GroupedRun<K, V> {
    let total: usize = buckets.iter().map(ColumnBuf::len).sum();
    assert!(
        total <= u32::MAX as usize,
        "a shuffle partition exceeds the u32 index space ({total} pairs)"
    );
    let mut run = GroupedRun {
        // Sized for the key-heavy extreme (every key distinct would be
        // `total` groups; half that covers the common word-count-like
        // shape without doubling-realloc copies of a six-figure
        // directory). Duplicate-heavy workloads leave the excess
        // capacity unused — it is transient and O(total) either way.
        groups: Vec::with_capacity((total / 2).max(16)),
        values: Vec::with_capacity(total),
    };
    let mut scratch = GroupScratch::default();
    for bucket in buckets {
        group_bucket_hashed(bucket, &mut run, &mut scratch);
    }
    run
}

/// Groups one shuffle partition that is not yet bucketed: radix-scatter
/// by low fingerprint bits, then [`group_buckets`].
pub(crate) fn group_partition<K: Ord, V>(buf: ColumnBuf<K, V>) -> GroupedRun<K, V> {
    let bc = bucket_count(buf.len());
    if bc <= 1 {
        group_buckets(vec![buf])
    } else {
        let mask = (bc - 1) as u64;
        group_buckets(buf.scatter(bc, |h| (h & mask) as usize))
    }
}

/// Groups one radix bucket with a linear-probing fingerprint table —
/// `O(n)`, no sorting — and appends its groups to `out`.
///
/// The probe pass assigns each pair a local group id (first-arrival
/// order) and compares keys whenever two pairs share a fingerprint; if
/// any such pair has *different* keys (a full 64-bit collision), the
/// bucket is handed to the exact sort-based cold path instead.
fn group_bucket_hashed<K: Ord, V>(
    bucket: ColumnBuf<K, V>,
    out: &mut GroupedRun<K, V>,
    scratch: &mut GroupScratch,
) {
    let n = bucket.len();
    if n == 0 {
        return;
    }
    let GroupScratch {
        table,
        group_of,
        reps,
        lens,
        starts,
    } = scratch;
    let ColumnBuf {
        hashes,
        keys,
        mut vals,
    } = bucket;

    // Probe: one pass assigns local group ids in first-arrival order.
    // The table holds group ids; a slot's fingerprint lives in
    // `hashes[reps[id]]`, keeping the table itself 4 bytes per slot so
    // a whole bucket's table stays cache-resident. The probe start skips
    // the low 8 bits — those selected the bucket and are constant here.
    let tsize = (n * 2).next_power_of_two();
    let tmask = tsize - 1;
    table.clear();
    table.resize(tsize, u32::MAX);
    group_of.clear();
    reps.clear();
    lens.clear();
    let mut collided = false;
    for (j, &h) in hashes.iter().enumerate() {
        let mut idx = (h >> 8) as usize & tmask;
        // SAFETY for the unchecked reads below: `idx` is always masked by
        // `tmask = table.len() - 1`; any non-empty slot holds a group id
        // `< reps.len()` (assigned from `reps.len()` at insertion); every
        // `reps` entry is a bucket position `< n = hashes.len()`. All
        // three invariants are established by this loop itself.
        let gid = loop {
            let slot = unsafe { *table.get_unchecked(idx) };
            if slot == u32::MAX {
                let g = reps.len() as u32;
                unsafe { *table.get_unchecked_mut(idx) = g };
                reps.push(j as u32);
                lens.push(0);
                break g;
            }
            let rep = unsafe { *reps.get_unchecked(slot as usize) } as usize;
            if unsafe { *hashes.get_unchecked(rep) } == h {
                if keys[rep] != keys[j] {
                    collided = true;
                }
                break slot;
            }
            idx = (idx + 1) & tmask;
        };
        unsafe { *lens.get_unchecked_mut(gid as usize) += 1 };
        group_of.push(gid);
    }
    if collided {
        // A full 64-bit fingerprint collision between distinct keys:
        // essentially never for a real hash, but correctness cannot
        // depend on that. Regroup this bucket exactly by sorting.
        group_bucket_sorted(ColumnBuf { hashes, keys, vals }, out);
        return;
    }

    // Prefix-sum the group sizes into per-group value offsets (relative
    // to this bucket's segment of the output column).
    let g = reps.len();
    starts.clear();
    starts.reserve(g);
    let mut acc = 0u32;
    for &l in lens.iter() {
        starts.push(acc);
        acc += l;
    }

    // Directory: move exactly one key per group out of the key column.
    // Reps ascend (first-arrival order), so a single forward consume of
    // the iterator visits each key once, dropping non-representatives.
    let base = out.values.len() as u32;
    out.groups.reserve(g);
    let mut key_it = keys.into_iter();
    let mut consumed: u32 = 0;
    for ((&rep, &len), &start) in reps.iter().zip(lens.iter()).zip(starts.iter()) {
        while consumed < rep {
            key_it.next();
            consumed += 1;
        }
        let key = key_it.next().expect("rep indexes a live key");
        consumed += 1;
        out.groups.push(Group {
            key,
            start: base + start,
            len,
        });
    }
    drop(key_it);

    // Values: one scatter pass moves every value directly to its final
    // slot in the output column, advancing its group's cursor.
    let old_len = out.values.len();
    out.values.reserve(n);
    // SAFETY: `starts` are prefix sums of `lens`, and each position
    // advances its own group's cursor, so the n destinations are exactly
    // the distinct offsets 0..n — every output slot in the reserved
    // region is written once, every source slot is read once. `vals`'
    // length is zeroed first so its elements are never dropped in place
    // (a panic in the safe indexing below would leak, not double-drop),
    // and the output length is raised only after all n writes.
    unsafe {
        let dst = out.values.as_mut_ptr().add(old_len);
        let src = vals.as_ptr();
        vals.set_len(0);
        for (j, &gid) in group_of.iter().enumerate() {
            // Every gid is < g = starts.len() (assigned by the probe pass).
            let cursor = starts.get_unchecked_mut(gid as usize);
            let d = *cursor;
            *cursor = d + 1;
            std::ptr::copy_nonoverlapping(src.add(j), dst.add(d as usize), 1);
        }
        out.values.set_len(old_len + n);
    }
}

/// Exact sort-based grouping of one bucket — the cold path for full
/// fingerprint collisions (and the reference the hot path must match):
/// sort `(fingerprint, arrival)` codes, gather the columns, repair
/// collision runs by key, run-scan the boundaries.
fn group_bucket_sorted<K: Ord, V>(bucket: ColumnBuf<K, V>, out: &mut GroupedRun<K, V>) {
    let n = bucket.len();
    if n == 0 {
        return;
    }
    let ColumnBuf { hashes, keys, vals } = bucket;

    // Pack (fingerprint, arrival) into one integer and pdqsort it: equal
    // fingerprints become adjacent, arrival order survives inside them,
    // and the sort never touches a key.
    let mut codes: Vec<u128> = hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| (u128::from(h) << 32) | i as u128)
        .collect();
    codes.sort_unstable();
    let mut order: Vec<u32> = codes.iter().map(|&c| c as u32).collect();
    let hash_at = |j: usize| (codes[j] >> 32) as u64;

    let mut keys = take_in_order(keys, &order);
    let mut vals = take_in_order(vals, &order);

    // Collision repair: a run of equal fingerprints holding more than one
    // distinct key is re-sorted by (key, arrival) so the boundary scan
    // below cuts exact per-key groups.
    let mut j = 0;
    while j < n {
        let mut end = j + 1;
        while end < n && hash_at(end) == hash_at(j) {
            end += 1;
        }
        if keys[j + 1..end].iter().any(|k| *k != keys[j]) {
            co_sort_by_key(&mut keys[j..end], &mut vals[j..end], &mut order[j..end]);
        }
        j = end;
    }

    // Run-scan: one pass cuts group boundaries (fingerprint change, or —
    // inside a repaired collision run — key change).
    let mut bounds: Vec<(u64, u32)> = Vec::new();
    for j in 0..n {
        if j == 0 || hash_at(j) != hash_at(j - 1) || keys[j] != keys[j - 1] {
            bounds.push((hash_at(j), 1));
        } else {
            bounds.last_mut().expect("non-empty at j > 0").1 += 1;
        }
    }

    // Append: the whole value column moves once; exactly one key per
    // group survives (the duplicates drop here).
    let mut start = out.values.len() as u32;
    out.values.append(&mut vals);
    let mut key_it = keys.into_iter();
    for (_hash, len) in bounds {
        let key = key_it.next().expect("every group has a first key");
        for _ in 1..len {
            key_it.next();
        }
        out.groups.push(Group { key, start, len });
        start += len;
    }
}

/// Reorders `keys`, `vals`, and `arrivals` jointly so they ascend by
/// `(key, arrival)`. Used only to repair fingerprint-collision runs;
/// `O(m log m)` via an index sort plus cycle-following swaps, so even an
/// adversarial `Hash` impl that collides everything degrades gracefully.
fn co_sort_by_key<K: Ord, V>(keys: &mut [K], vals: &mut [V], arrivals: &mut [u32]) {
    let m = keys.len();
    let mut perm: Vec<u32> = (0..m as u32).collect();
    {
        let keys: &[K] = keys;
        let arrivals: &[u32] = arrivals;
        perm.sort_unstable_by(|&a, &b| {
            keys[a as usize]
                .cmp(&keys[b as usize])
                .then_with(|| arrivals[a as usize].cmp(&arrivals[b as usize]))
        });
    }
    // Apply the permutation in place with swaps: position i receives the
    // element that started at perm[i]; indices already passed are chased
    // to wherever earlier swaps moved their element.
    for i in 0..m {
        let mut from = perm[i] as usize;
        while from < i {
            from = perm[from] as usize;
        }
        keys.swap(i, from);
        vals.swap(i, from);
        arrivals.swap(i, from);
        perm[i] = from as u32;
    }
}

/// Consumes `src` and returns its elements reordered so slot `i` holds
/// `src[order[i]]` — the move-gather that realises a sort permutation
/// over a column without cloning.
///
/// `order` must be a permutation of `0..src.len()`; this is verified up
/// front (cheap next to the sort that produced `order`), so the unsafe
/// block below is sound for every caller: each source slot is read
/// exactly once, and the source vector's length is zeroed first so its
/// elements are never dropped in place.
pub(crate) fn take_in_order<T>(mut src: Vec<T>, order: &[u32]) -> Vec<T> {
    let n = src.len();
    assert_eq!(order.len(), n, "order length must match the column length");
    let mut seen = vec![false; n];
    for &i in order {
        let i = i as usize;
        assert!(
            i < n && !seen[i],
            "order is not a permutation of 0..{n} (index {i})"
        );
        seen[i] = true;
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    let base = src.as_mut_ptr();
    // SAFETY: `order` is a verified permutation of 0..n, so every slot of
    // `src` is moved out exactly once. Setting src's length to 0 first
    // transfers drop responsibility for all n elements to this loop (and
    // then to `out`); `src`'s allocation is still freed normally. No
    // operation between `set_len` and the final push can panic.
    unsafe {
        src.set_len(0);
        for &i in order {
            out.push(std::ptr::read(base.add(i as usize)));
        }
    }
    out
}

/// The merged view over every partition's [`GroupedRun`]: a global
/// ascending-key order across runs, without moving any values.
///
/// Keys are disjoint across runs (hash partitioning), so a P-way merge of
/// the per-run ascending key sequences yields the exact global key order
/// a single sorted map would have produced. The merge materialises only
/// `(run, group)` index pairs — and for the common single-partition case
/// not even that: one run's directory already *is* the global order, so
/// the view indexes it directly.
pub(crate) struct Shuffled<K, V> {
    /// One grouped run per shuffle partition, groups ascending by key.
    runs: Vec<GroupedRun<K, V>>,
    /// `(run index, group index)` pairs in global ascending key order;
    /// `None` when there is exactly one run (identity order).
    order: Option<Vec<(u32, u32)>>,
}

impl<K: Ord, V> Shuffled<K, V> {
    /// Merges per-partition runs (each with groups already ascending by
    /// key, keys disjoint across runs) into one globally key-ordered
    /// view.
    pub fn merge(runs: Vec<GroupedRun<K, V>>) -> Self {
        if runs.len() == 1 {
            return Shuffled { runs, order: None };
        }
        let total: usize = runs.iter().map(GroupedRun::len).sum();
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(total);
        let mut heads: Vec<usize> = vec![0; runs.len()];
        loop {
            let mut best: Option<usize> = None;
            for (ri, run) in runs.iter().enumerate() {
                if heads[ri] < run.len() {
                    best = Some(match best {
                        None => ri,
                        Some(b) => {
                            if run.groups[heads[ri]].key < runs[b].groups[heads[b]].key {
                                ri
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            let Some(b) = best else { break };
            order.push((b as u32, heads[b] as u32));
            heads[b] += 1;
        }
        Shuffled {
            runs,
            order: Some(order),
        }
    }
}

impl<K, V> Shuffled<K, V> {
    /// Total number of reduce groups.
    pub fn len(&self) -> usize {
        match &self.order {
            Some(order) => order.len(),
            None => self.runs[0].len(),
        }
    }

    /// The `i`-th group in global key order: `(key, values)`. Random
    /// access twin of [`for_each_in`](Self::for_each_in), which the
    /// engine's batch loops use instead.
    #[cfg(test)]
    pub fn entry(&self, i: usize) -> (&K, &[V]) {
        let (run, g) = match &self.order {
            Some(order) => {
                let (r, g) = order[i];
                (&self.runs[r as usize], g as usize)
            }
            None => (&self.runs[0], i),
        };
        (&run.groups[g].key, run.values_of(g))
    }

    /// Applies `f` to every group in `range` of the global key order —
    /// the reduce phase's inner loop. Dispatching on the order
    /// representation once per *range* (instead of once per entry, as
    /// [`entry`](Self::entry) must) keeps the single-run fast path a
    /// straight directory walk.
    pub fn for_each_in(&self, range: std::ops::Range<usize>, mut f: impl FnMut(&K, &[V])) {
        match &self.order {
            None => {
                let run = &self.runs[0];
                for g in &run.groups[range] {
                    f(
                        &g.key,
                        &run.values[g.start as usize..(g.start + g.len) as usize],
                    );
                }
            }
            Some(order) => {
                for &(r, gi) in &order[range] {
                    let run = &self.runs[r as usize];
                    let g = &run.groups[gi as usize];
                    f(
                        &g.key,
                        &run.values[g.start as usize..(g.start + g.len) as usize],
                    );
                }
            }
        }
    }

    /// Per-group loads (value counts) in global key order.
    pub fn loads(&self) -> Vec<u64> {
        match &self.order {
            Some(order) => order
                .iter()
                .map(|&(r, g)| u64::from(self.runs[r as usize].groups[g as usize].len))
                .collect(),
            None => self.runs[0]
                .groups
                .iter()
                .map(|g| u64::from(g.len))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_spread() {
        for k in 0u64..500 {
            assert_eq!(fingerprint_of(&k), fingerprint_of(&k));
        }
        // 500 distinct keys must reach every one of 8 partitions.
        let mut seen = [false; 8];
        for k in 0u64..500 {
            seen[partition_of_hash(fingerprint_of(&k), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash failed to reach a partition");
        // And every one of 16 low-bit buckets.
        let mut low = [false; 16];
        for k in 0u64..500 {
            low[(fingerprint_of(&k) & 15) as usize] = true;
        }
        assert!(low.iter().all(|&s| s), "low bits are not spread");
    }

    #[test]
    fn partition_of_hash_is_in_range_for_any_count() {
        for p in [1usize, 2, 3, 7, 8, 1000] {
            for h in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert!(partition_of_hash(h, p) < p);
            }
        }
    }

    #[test]
    fn take_in_order_moves_each_element_once() {
        let src = vec!["a".to_string(), "b".into(), "c".into(), "d".into()];
        let out = take_in_order(src, &[2, 0, 3, 1]);
        assert_eq!(out, vec!["c", "a", "d", "b"]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn take_in_order_rejects_duplicates() {
        take_in_order(vec![1, 2, 3], &[0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn take_in_order_rejects_out_of_range() {
        take_in_order(vec![1, 2, 3], &[0, 1, 3]);
    }

    #[test]
    fn co_sort_matches_reference_sort() {
        // Reference: sort (key, arrival, val) tuples directly.
        let keys0 = [3u64, 1, 3, 2, 1, 1, 2];
        let vals0 = ["a", "b", "c", "d", "e", "f", "g"];
        let arr0: Vec<u32> = (0..keys0.len() as u32).collect();
        let mut expect: Vec<(u64, u32, &str)> = keys0
            .iter()
            .zip(&arr0)
            .zip(&vals0)
            .map(|((&k, &a), &v)| (k, a, v))
            .collect();
        expect.sort();
        let mut keys = keys0.to_vec();
        let mut vals = vals0.to_vec();
        let mut arr = arr0.clone();
        co_sort_by_key(&mut keys, &mut vals, &mut arr);
        let got: Vec<(u64, u32, &str)> = keys
            .iter()
            .zip(&arr)
            .zip(&vals)
            .map(|((&k, &a), &v)| (k, a, v))
            .collect();
        assert_eq!(got, expect);
    }

    /// Builds a ColumnBuf with *fabricated* fingerprints, to drive the
    /// collision paths that real 64-bit fingerprints essentially never
    /// hit.
    fn buf_with_hashes(rows: &[(u64, u64, u64)]) -> ColumnBuf<u64, u64> {
        let mut buf = ColumnBuf::with_capacity(rows.len());
        for &(h, k, v) in rows {
            buf.push(h, k, v);
        }
        buf
    }

    fn groups_of(run: &GroupedRun<u64, u64>) -> Vec<(u64, Vec<u64>)> {
        (0..run.len())
            .map(|i| (run.groups[i].key, run.values_of(i).to_vec()))
            .collect()
    }

    #[test]
    fn grouping_splits_full_fingerprint_collisions_by_key() {
        // Three distinct keys share one fingerprint; values interleave.
        // The probe pass must detect the collision and fall back to the
        // exact sort-based path.
        let mut run = group_partition(buf_with_hashes(&[
            (7, 100, 0),
            (7, 200, 1),
            (7, 100, 2),
            (7, 300, 3),
            (7, 200, 4),
            (7, 100, 5),
        ]));
        run.sort_groups_by_key();
        assert_eq!(
            groups_of(&run),
            vec![(100, vec![0, 2, 5]), (200, vec![1, 4]), (300, vec![3]),]
        );
    }

    #[test]
    fn collision_bucket_coexists_with_clean_buckets() {
        // One fabricated collision among ordinary pairs: only the
        // affected bucket takes the cold path; the rest group by table.
        let mut rows: Vec<(u64, u64, u64)> = (0..5_000u64)
            .map(|i| (fingerprint_of(&(i % 50)), i % 50, i))
            .collect();
        assert!(bucket_count(rows.len()) > 1, "need several buckets");
        rows.push((fingerprint_of(&3u64), 1_000, 777)); // same print, new key
        let mut run = group_partition(buf_with_hashes(&rows));
        run.sort_groups_by_key();
        assert_eq!(run.len(), 51);
        let by_key = groups_of(&run);
        assert_eq!(by_key[50], (1_000, vec![777]));
        let expect3: Vec<u64> = (0..5_000).filter(|v| v % 50 == 3).collect();
        assert_eq!(by_key[3], (3, expect3));
    }

    #[test]
    fn grouping_preserves_arrival_order_within_key() {
        let rows: Vec<(u64, u64, u64)> = (0..100)
            .map(|i| (fingerprint_of(&(i % 7)), i % 7, i))
            .collect();
        let mut run = group_partition(buf_with_hashes(&rows));
        run.sort_groups_by_key();
        assert_eq!(run.len(), 7);
        for gi in 0..run.len() {
            let k = run.groups[gi].key;
            let expect: Vec<u64> = (0..100).filter(|v| v % 7 == k).collect();
            assert_eq!(run.values_of(gi), expect.as_slice(), "key {k}");
        }
    }

    #[test]
    fn grouping_large_partition_uses_buckets_and_stays_exact() {
        // Big enough that bucket_count > 1: 20_000 pairs over 5_000 keys.
        let rows: Vec<(u64, u64, u64)> = (0..20_000u64)
            .map(|i| {
                let k = (i * 2_654_435_761) % 5_000;
                (fingerprint_of(&k), k, i)
            })
            .collect();
        assert!(bucket_count(rows.len()) > 1);
        let mut run = group_partition(buf_with_hashes(&rows));
        run.sort_groups_by_key();
        assert_eq!(run.len(), 5_000);
        // Keys ascend and every value is in arrival order.
        for w in run.groups.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        for gi in 0..run.len() {
            let vs = run.values_of(gi);
            assert!(vs.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(run.values.len(), 20_000);
    }

    #[test]
    fn hot_and_cold_grouping_agree() {
        // The table path and the sort path must produce identical groups
        // (after the key sort) on the same pairs.
        let rows: Vec<(u64, u64, u64)> = (0..2_000u64)
            .map(|i| {
                let k = (i * 7 + 1) % 311;
                (fingerprint_of(&k), k, i)
            })
            .collect();
        let mut hot = GroupedRun {
            groups: Vec::new(),
            values: Vec::new(),
        };
        group_bucket_hashed(
            buf_with_hashes(&rows),
            &mut hot,
            &mut GroupScratch::default(),
        );
        hot.sort_groups_by_key();
        let mut cold = GroupedRun {
            groups: Vec::new(),
            values: Vec::new(),
        };
        group_bucket_sorted(buf_with_hashes(&rows), &mut cold);
        cold.sort_groups_by_key();
        assert_eq!(groups_of(&hot), groups_of(&cold));
    }

    #[test]
    fn merge_interleaves_disjoint_runs_in_key_order() {
        let mut a = group_partition(buf_with_hashes(&[
            (fingerprint_of(&1u64), 1, 10),
            (fingerprint_of(&5u64), 5, 50),
        ]));
        a.sort_groups_by_key();
        let mut b = group_partition(buf_with_hashes(&[
            (fingerprint_of(&2u64), 2, 20),
            (fingerprint_of(&4u64), 4, 40),
        ]));
        b.sort_groups_by_key();
        let shuffled = Shuffled::merge(vec![a, b]);
        let keys: Vec<u64> = (0..shuffled.len()).map(|i| *shuffled.entry(i).0).collect();
        assert_eq!(keys, vec![1, 2, 4, 5]);
        assert_eq!(shuffled.loads(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn single_run_merge_is_identity() {
        let mut run = group_partition(buf_with_hashes(&[
            (fingerprint_of(&3u64), 3, 30),
            (fingerprint_of(&1u64), 1, 10),
            (fingerprint_of(&2u64), 2, 20),
        ]));
        run.sort_groups_by_key();
        let shuffled = Shuffled::merge(vec![run]);
        assert_eq!(shuffled.len(), 3);
        let keys: Vec<u64> = (0..shuffled.len()).map(|i| *shuffled.entry(i).0).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(shuffled.loads(), vec![1, 1, 1]);
    }

    #[test]
    fn scatter_preserves_arrival_order_and_counts() {
        let rows: Vec<(u64, u64, u64)> = (0..1000u64).map(|i| (i % 16, i, i)).collect();
        let parts = buf_with_hashes(&rows).scatter(4, |h| (h % 4) as usize);
        assert_eq!(parts.iter().map(ColumnBuf::len).sum::<usize>(), 1000);
        for (pi, part) in parts.iter().enumerate() {
            assert!(part.hashes.iter().all(|&h| (h % 4) as usize == pi));
            // Within a part, values (== arrival stamps) strictly ascend.
            assert!(part.vals.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bucket_count_policy() {
        assert_eq!(bucket_count(1), 1);
        assert_eq!(bucket_count(1024), 1);
        assert_eq!(bucket_count(4096), 4);
        assert_eq!(bucket_count(300_000), 256);
        assert_eq!(bucket_count(10_000_000), 256);
    }

    /// A directory of `n` distinct keys produced by a multiplicative
    /// scramble (so arrival order is far from sorted), with start/len
    /// payloads tied to the key to verify descriptors move as units.
    fn scrambled_directory(n: u64) -> Vec<Group<u64>> {
        (0..n)
            .map(|i| {
                let key = ((i * 2_654_435_761) % (1 << 40)) | (i << 40);
                Group {
                    key,
                    start: (key % 7_919) as u32,
                    len: (key % 13) as u32 + 1,
                }
            })
            .collect()
    }

    #[test]
    fn radix_directory_sort_matches_comparison_sort() {
        // Both sides of the RADIX_MIN threshold, for both radix-capable
        // key widths: the sorted directory must be byte-identical to
        // what the comparison sort produces (same keys AND payloads).
        for n in [
            RADIX_MIN as u64 / 2, // below threshold: comparison path
            RADIX_MIN as u64,     // at threshold: radix path
            RADIX_MIN as u64 * 4, // well above
        ] {
            let groups64 = scrambled_directory(n);
            let mut expect: Vec<(u64, u32, u32)> =
                groups64.iter().map(|g| (g.key, g.start, g.len)).collect();
            expect.sort_unstable();
            let mut run = GroupedRun {
                groups: groups64,
                values: Vec::<u8>::new(),
            };
            run.sort_groups_by_key();
            let got: Vec<(u64, u32, u32)> =
                run.groups.iter().map(|g| (g.key, g.start, g.len)).collect();
            assert_eq!(got, expect, "u64 keys, n={n}");

            let groups32: Vec<Group<u32>> = (0..n as u32)
                .map(|i| Group {
                    key: i.wrapping_mul(2_654_435_761),
                    start: i,
                    len: 1,
                })
                .collect();
            let mut expect32: Vec<u32> = groups32.iter().map(|g| g.key).collect();
            expect32.sort_unstable();
            let mut run32 = GroupedRun {
                groups: groups32,
                values: Vec::<u8>::new(),
            };
            run32.sort_groups_by_key();
            let got32: Vec<u32> = run32.groups.iter().map(|g| g.key).collect();
            assert_eq!(got32, expect32, "u32 keys, n={n}");
        }
    }

    #[test]
    fn radix_sort_handles_degenerate_directories() {
        // Empty, singleton, and all-equal-key directories short-circuit
        // on `varying == 0` without touching the scratch machinery.
        let mut empty: Vec<Group<u64>> = Vec::new();
        radix_sort_groups(&mut empty);
        assert!(empty.is_empty());
        let mut same: Vec<Group<u64>> = (0..10)
            .map(|i| Group {
                key: 42,
                start: i,
                len: 1,
            })
            .collect();
        radix_sort_groups(&mut same);
        assert_eq!(same.len(), 10);
        // Stable: equal keys keep arrival order.
        assert!(same.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn non_radix_keys_take_the_comparison_path() {
        // String keys can't downcast to u64/u32; the fallback must still
        // sort correctly above the threshold.
        let n = RADIX_MIN * 2;
        let groups: Vec<Group<String>> = (0..n)
            .map(|i| Group {
                key: format!("k{:06}", (i * 7919) % n),
                start: i as u32,
                len: 1,
            })
            .collect();
        let mut run = GroupedRun {
            groups,
            values: Vec::<u8>::new(),
        };
        run.sort_groups_by_key();
        assert!(run.groups.windows(2).all(|w| w[0].key < w[1].key));
    }
}
