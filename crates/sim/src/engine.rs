//! Single-round map-reduce execution.
//!
//! [`run_round`] executes map → shuffle → reduce over an input slice and
//! returns the outputs together with exact [`RoundMetrics`]. Execution is
//! deterministic regardless of worker count: mapper emissions are gathered
//! in input order, the shuffle groups values per key preserving that order,
//! keys are processed in ascending order, and outputs are concatenated in
//! key order.
//!
//! The engine enforces the paper's central constraint when asked: if
//! [`EngineConfig::max_reducer_inputs`] (the paper's `q`) is set and any
//! reducer receives more values, the round fails with
//! [`EngineError::ReducerOverflow`] instead of silently running an
//! over-budget reducer.

use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Engine configuration for one round.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. `1` runs fully sequentially on the calling
    /// thread; larger values shard the map and reduce phases with
    /// `crossbeam` scoped threads. Results are identical either way.
    pub workers: usize,
    /// The paper's reducer-size bound `q`: if set, a reducer receiving more
    /// than this many values aborts the round.
    pub max_reducer_inputs: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_reducer_inputs: None,
        }
    }
}

impl EngineConfig {
    /// Sequential execution, no reducer-size enforcement.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel execution with `workers` threads.
    pub fn parallel(workers: usize) -> Self {
        EngineConfig {
            workers: workers.max(1),
            max_reducer_inputs: None,
        }
    }

    /// Sets the reducer-size bound `q`.
    pub fn with_max_reducer_inputs(mut self, q: u64) -> Self {
        self.max_reducer_inputs = Some(q);
        self
    }
}

/// Failure modes of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A reducer exceeded the configured input budget `q`.
    ReducerOverflow {
        /// `Debug` rendering of the offending reduce-key.
        key: String,
        /// Number of values that arrived at the key.
        load: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ReducerOverflow { key, load, limit } => write!(
                f,
                "reducer {key} received {load} inputs, exceeding the budget q={limit}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Executes one map-reduce round.
///
/// Returns the reduce outputs (in ascending key order, emission order
/// within a key) and the round's metrics.
pub fn run_round<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let pairs = map_phase(inputs, mapper, config);
    let kv_pairs = pairs.len() as u64;
    let groups = shuffle(pairs);

    // Enforce the reducer-size budget before reducing.
    if let Some(q) = config.max_reducer_inputs {
        for (k, vs) in &groups {
            if vs.len() as u64 > q {
                return Err(EngineError::ReducerOverflow {
                    key: format!("{k:?}"),
                    load: vs.len() as u64,
                    limit: q,
                });
            }
        }
    }

    let loads: Vec<u64> = groups.values().map(|v| v.len() as u64).collect();
    let reducers = groups.len() as u64;
    let outputs = reduce_phase(groups, reducer, config);

    let metrics = RoundMetrics {
        inputs: inputs.len() as u64,
        kv_pairs,
        reducers,
        outputs: outputs.len() as u64,
        load: LoadStats::from_loads(loads.clone()),
        loads: {
            let mut l = loads;
            l.sort_unstable();
            l
        },
    };
    Ok((outputs, metrics))
}

/// Runs the map phase, returning all emissions in input order.
fn map_phase<I, K, V>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    config: &EngineConfig,
) -> Vec<(K, V)>
where
    I: Sync,
    K: Send + Sync,
    V: Send + Sync,
{
    if config.workers <= 1 || inputs.len() < 2 {
        let mut pairs = Vec::new();
        for input in inputs {
            mapper.map(input, &mut |k, v| pairs.push((k, v)));
        }
        return pairs;
    }
    let workers = config.workers.min(inputs.len());
    let chunk = inputs.len().div_ceil(workers);
    let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
    let mut results: Vec<Vec<(K, V)>> = Vec::with_capacity(chunks.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move |_| {
                    let mut pairs = Vec::new();
                    for input in c {
                        mapper.map(input, &mut |k, v| pairs.push((k, v)));
                    }
                    pairs
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("map worker panicked"));
        }
    })
    .expect("map scope panicked");
    // Concatenate in chunk order == input order.
    results.into_iter().flatten().collect()
}

/// Groups emissions by key, preserving emission order within each key.
fn shuffle<K: Ord, V>(pairs: Vec<(K, V)>) -> BTreeMap<K, Vec<V>> {
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Runs the reduce phase over the grouped values, concatenating outputs in
/// ascending key order.
fn reduce_phase<K, V, O>(
    groups: BTreeMap<K, Vec<V>>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Vec<O>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    if config.workers <= 1 || groups.len() < 2 {
        let mut outputs = Vec::new();
        for (k, vs) in &groups {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        return outputs;
    }
    let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    let workers = config.workers.min(entries.len());
    let chunk = entries.len().div_ceil(workers);
    let chunks: Vec<&[(K, Vec<V>)]> = entries.chunks(chunk).collect();
    let mut results: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move |_| {
                    let mut outputs = Vec::new();
                    for (k, vs) in c {
                        reducer.reduce(k, vs, &mut |o| outputs.push(o));
                    }
                    outputs
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("reduce worker panicked"));
        }
    })
    .expect("reduce scope panicked");
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    /// Word count, the canonical example (Example 2.5).
    fn wordcount(
        docs: &[&str],
        config: &EngineConfig,
    ) -> (Vec<(String, u64)>, RoundMetrics) {
        let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        });
        let reducer = FnReducer(|k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        });
        run_round(docs, &mapper, &reducer, config).expect("no q bound set")
    }

    #[test]
    fn wordcount_sequential() {
        let docs = ["a b a", "b c", "a"];
        let (out, m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(
            out,
            vec![
                ("a".into(), 3),
                ("b".into(), 2),
                ("c".into(), 1)
            ]
        );
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 6); // six word occurrences
        assert_eq!(m.reducers, 3);
        assert_eq!(m.outputs, 3);
        assert_eq!(m.load.max, 3);
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let seq = wordcount(&doc_refs, &EngineConfig::sequential());
        for workers in [2, 3, 8] {
            let par = wordcount(&doc_refs, &EngineConfig::parallel(workers));
            assert_eq!(seq.0, par.0, "outputs differ at {workers} workers");
            assert_eq!(seq.1, par.1, "metrics differ at {workers} workers");
        }
    }

    #[test]
    fn reducer_overflow_detected() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer = FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| {
            emit(vs.len() as u32)
        });
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(4);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        match err {
            EngineError::ReducerOverflow { load, limit, .. } => {
                assert_eq!(load, 5);
                assert_eq!(limit, 4);
            }
        }
    }

    #[test]
    fn budget_exactly_met_is_ok() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(5);
        assert!(run_round(&inputs, &mapper, &reducer, &cfg).is_ok());
    }

    #[test]
    fn empty_input_yields_empty_round() {
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn values_preserve_emission_order_within_key() {
        // All inputs go to one key; values must arrive in input order.
        let inputs: Vec<u32> = (0..50).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x));
        let reducer = FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(Vec<u32>)| {
            emit(vs.to_vec())
        });
        for cfg in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
            let (out, _) = run_round(&inputs, &mapper, &reducer, &cfg).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], inputs);
        }
    }

    #[test]
    fn mapper_emitting_nothing_is_fine() {
        let inputs = vec![1u32, 2, 3];
        let mapper = FnMapper(|_: &u32, _: &mut dyn FnMut(u32, u32)| {});
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(1));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 0);
        assert!((m.replication_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn replication_rate_counts_duplicates() {
        // Each input sent to 3 reducers: r = 3 exactly.
        let inputs: Vec<u32> = (0..20).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            for t in 0..3 {
                emit((*x + t) % 5, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let (_, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!((m.replication_rate() - 3.0).abs() < 1e-12);
        assert_eq!(m.reducers, 5);
    }
}
