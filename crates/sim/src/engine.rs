//! Single-round map-reduce execution.
//!
//! [`run_round`] executes map → shuffle → reduce over an input slice and
//! returns the outputs together with exact [`RoundMetrics`]. Execution is
//! deterministic regardless of worker count: mapper emissions are gathered
//! in input order, the shuffle groups values per key preserving that order,
//! keys are processed in ascending order, and outputs are concatenated in
//! key order.
//!
//! # Shuffle architecture
//!
//! The shuffle is the **columnar radix-partitioned data plane** of the
//! internal `columnar` module: every emission is fingerprinted once at
//! emit time into flat `(hash, key, value)` columns, the top fingerprint
//! bits route pairs to `P = min(workers, inputs)` partitions, the low bits
//! scatter each partition into cache-sized radix buckets, and each bucket
//! is grouped in `O(n)` by a small open-addressing fingerprint table (an
//! exact sort-based path catches full 64-bit collisions) — no `BTreeMap`,
//! no per-key allocation. Sorting the per-partition group *directories* by
//! key and P-way-merging them (keys are disjoint across partitions)
//! restores the exact output the old map-based shuffle produced.
//!
//! With `workers <= 1` the same pipeline runs on the calling thread with a
//! single partition; with `workers > 1` each map chunk and each partition
//! group-sort runs as a task on the configured [`Executor`] — the
//! resident [`WorkerPool`] by default, or a fresh `std::thread::scope`
//! thread per task on the retained [`Executor::Scoped`] oracle. Because
//! worker emission buffers are concatenated per partition in chunk
//! (= input) order and the group sort ties on arrival order, outputs and
//! semantic metrics are identical at every worker count on either
//! substrate; the retained [`naive`](crate::naive) module keeps the
//! original `BTreeMap` pipeline as the oracle for exactly that claim. Only the [`ShuffleStats`]
//! execution metadata (partition count, balance, bytes moved, bucket
//! histogram) varies with the worker count, and that is excluded from
//! metric equality by design.
//!
//! The engine enforces the paper's central constraint when asked: if
//! [`EngineConfig::max_reducer_inputs`] (the paper's `q`) is set and any
//! reducer receives more values, the round fails with
//! [`EngineError::ReducerOverflow`] instead of silently running an
//! over-budget reducer. The parallel path checks each partition
//! concurrently but reports the same offender as the sequential path: the
//! smallest over-budget key in key order.

use crate::columnar::{
    bucket_count, fingerprint_of, group_buckets, group_partition, partition_of_hash, ColumnBuf,
    GroupedRun, Shuffled,
};
use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics, ShuffleStats};
use crate::pool::{Executor, WorkerPool};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::OnceLock;

/// Always-on engine counters in the global [`mr_obs`] hub, cached so the
/// per-round cost is two atomic adds.
struct EngineCounters {
    rounds: mr_obs::Counter,
    kv_pairs: mr_obs::Counter,
}

fn engine_counters() -> &'static EngineCounters {
    static COUNTERS: OnceLock<EngineCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| EngineCounters {
        rounds: mr_obs::global().counter("engine.rounds"),
        kv_pairs: mr_obs::global().counter("engine.kv_pairs"),
    })
}

/// Engine configuration for one round.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. `0` and `1` both run fully sequentially on
    /// the calling thread; larger values shard the map, shuffle, and reduce
    /// phases across the configured [`executor`](EngineConfig::executor)
    /// substrate. Results are identical either way. The raw value is
    /// preserved as written;
    /// [`effective_workers`](EngineConfig::effective_workers) is the single
    /// place the degenerate `0` is clamped.
    pub workers: usize,
    /// The paper's reducer-size bound `q`: if set, a reducer receiving more
    /// than this many values aborts the round.
    pub max_reducer_inputs: Option<u64>,
    /// Expected total mapper emissions for the round (the paper's
    /// `r · |I|`), used to preallocate per-worker emission columns so the
    /// map phase never reallocates mid-chunk. Purely a performance hint:
    /// any value (or `None`) yields identical outputs and metrics.
    /// `mr-plan` threads its census-exact pair prediction through here.
    pub pairs_hint: Option<u64>,
    /// Which parallel substrate fan-outs run on: the resident
    /// [`WorkerPool`] (default) or fresh `std::thread::scope` threads per
    /// call (the retained oracle). Purely an execution choice — outputs
    /// and semantic metrics are byte-identical on both.
    pub executor: Executor,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_reducer_inputs: None,
            pairs_hint: None,
            executor: Executor::Pool,
        }
    }
}

impl EngineConfig {
    /// Sequential execution, no reducer-size enforcement.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel execution with `workers` threads. The value is stored as
    /// given (including `0`); clamping happens uniformly in
    /// [`effective_workers`](EngineConfig::effective_workers), so
    /// `parallel(0)` and a hand-built `EngineConfig { workers: 0, .. }`
    /// behave identically (sequential execution).
    pub fn parallel(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Self::default()
        }
    }

    /// The worker count the engine actually uses: `workers` clamped to at
    /// least 1. This is the **only** clamp site — every execution path
    /// (engine, combiner, jobs, schemas) normalises the degenerate
    /// `workers: 0` through here.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Sets the reducer-size bound `q`.
    pub fn with_max_reducer_inputs(mut self, q: u64) -> Self {
        self.max_reducer_inputs = Some(q);
        self
    }

    /// Sets the expected-emission capacity hint (see
    /// [`pairs_hint`](EngineConfig::pairs_hint)).
    pub fn with_pairs_hint(mut self, pairs: u64) -> Self {
        self.pairs_hint = Some(pairs);
        self
    }

    /// Selects the parallel substrate (see
    /// [`executor`](EngineConfig::executor)).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }
}

/// Failure modes of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A reducer exceeded the configured input budget `q`.
    ReducerOverflow {
        /// `Debug` rendering of the offending reduce-key.
        key: String,
        /// Number of values that arrived at the key.
        load: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ReducerOverflow { key, load, limit } => write!(
                f,
                "reducer {key} received {load} inputs, exceeding the budget q={limit}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Bytes one `(fingerprint, key, value)` triple occupies in the shuffle
/// columns — the unit behind [`ShuffleStats::bytes_moved`].
pub(crate) fn pair_bytes<K, V>() -> u64 {
    (std::mem::size_of::<u64>() + std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64
}

/// Executes one map-reduce round.
///
/// Returns the reduce outputs (in ascending key order, emission order
/// within a key) and the round's metrics.
///
/// ```
/// use mr_sim::{run_round, EngineConfig, FnMapper, FnReducer};
/// // Word count (Example 2.5): one emission per word, counts per key.
/// let docs = ["a b a", "b c"];
/// let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
///     for w in doc.split_whitespace() {
///         emit(w.to_string(), 1);
///     }
/// });
/// let reducer = FnReducer(|k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
///     emit((k.clone(), vs.iter().sum()))
/// });
/// let (out, metrics) = run_round(&docs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
/// assert_eq!(out, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
/// assert_eq!(metrics.kv_pairs, 5); // five word occurrences crossed the shuffle
/// ```
pub fn run_round<I, K, V, O, M, R>(
    inputs: &[I],
    mapper: &M,
    reducer: &R,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync + 'static,
    V: Send + Sync,
    O: Send,
    M: Mapper<I, K, V> + ?Sized,
    R: Reducer<K, V, O> + ?Sized,
{
    let workers = config.effective_workers();
    let _round_span = mr_obs::span("engine.round");
    engine_counters().rounds.incr();
    // Partition count: P = workers, clamped to the input size so a huge
    // worker count over a tiny input never spawns more threads (or
    // allocates more buckets) than there are inputs — the same envelope
    // the chunked map and reduce phases have always had.
    let p = if workers <= 1 {
        1
    } else {
        workers.min(inputs.len()).max(1)
    };
    let (shuffled, stats, kv_pairs) = if p == 1 {
        // Single-partition fast path: the map phase routes each emission
        // straight into its radix bucket — the flat per-worker columns
        // and the partition scatter disappear entirely.
        let est = config
            .pairs_hint
            .map(|h| h as usize)
            .unwrap_or(inputs.len());
        let map_span = mr_obs::span("engine.map");
        let buckets = map_bucketed_phase(inputs, mapper, est);
        drop(map_span);
        let kv_pairs: u64 = buckets.iter().map(|b| b.len() as u64).sum();
        let shuffle_span = mr_obs::span("engine.shuffle");
        let (shuffled, stats) = shuffle_bucketed(
            buckets,
            kv_pairs,
            config.max_reducer_inputs,
            pair_bytes::<K, V>(),
        )?;
        drop(shuffle_span);
        (shuffled, stats, kv_pairs)
    } else {
        let map_span = mr_obs::span("engine.map");
        let partitions = map_columnar_phase(
            inputs,
            mapper,
            workers,
            p,
            config.pairs_hint,
            config.executor,
        );
        drop(map_span);
        let kv_pairs: u64 = partitions.iter().map(|part| part.len() as u64).sum();
        let shuffle_span = mr_obs::span("engine.shuffle");
        let (shuffled, stats) = shuffle_columns(
            partitions,
            config.max_reducer_inputs,
            workers,
            pair_bytes::<K, V>(),
            config.executor,
        )?;
        drop(shuffle_span);
        (shuffled, stats, kv_pairs)
    };
    engine_counters().kv_pairs.add(kv_pairs);
    let reduce_span = mr_obs::span("engine.reduce");
    let outputs = reduce_phase(&shuffled, reducer, workers, config.executor);
    drop(reduce_span);
    let metrics = round_metrics(
        inputs.len(),
        kv_pairs,
        shuffled.loads(),
        outputs.len(),
        stats,
    );
    Ok((outputs, metrics))
}

/// Map phase of the single-partition fast path: emissions are
/// fingerprinted and routed straight into per-bucket columns, so the
/// grouping stage starts from cache-sized buckets without any
/// intermediate flat column or scatter pass. `estimated_pairs` (the
/// caller's [`pairs_hint`](EngineConfig::pairs_hint) or the input count)
/// sizes the bucket fan-out and preallocates each bucket with ~25%
/// headroom; a wrong estimate only costs reallocation, never
/// correctness.
fn map_bucketed_phase<I, K, V, M>(
    inputs: &[I],
    mapper: &M,
    estimated_pairs: usize,
) -> Vec<ColumnBuf<K, V>>
where
    K: Hash,
    M: Mapper<I, K, V> + ?Sized,
{
    let bc = bucket_count(estimated_pairs);
    let mask = (bc - 1) as u64;
    let cap = if bc > 1 {
        estimated_pairs / bc + estimated_pairs / (bc * 4) + 8
    } else {
        estimated_pairs
    };
    let mut buckets: Vec<ColumnBuf<K, V>> =
        (0..bc).map(|_| ColumnBuf::with_capacity(cap)).collect();
    for input in inputs {
        mapper.map(input, &mut |k, v| {
            let h = fingerprint_of(&k);
            // SAFETY: `mask == bc - 1` with `bc == buckets.len()`, so
            // `h & mask` is always in bounds.
            let bucket = unsafe { buckets.get_unchecked_mut((h & mask) as usize) };
            bucket.push(h, k, v);
        });
    }
    buckets
}

/// Shuffle back half of the single-partition fast path: group the
/// pre-bucketed columns, key-sort the directory, budget-check, and wrap
/// the single run as the (identity-order) merged view.
fn shuffle_bucketed<K, V>(
    buckets: Vec<ColumnBuf<K, V>>,
    kv_pairs: u64,
    q: Option<u64>,
    bytes_per_pair: u64,
) -> Result<(Shuffled<K, V>, ShuffleStats), EngineError>
where
    K: Ord + Debug + 'static,
{
    let mut stats = ShuffleStats::from_partition_loads(&[kv_pairs]);
    stats.bytes_moved = Some(kv_pairs * bytes_per_pair);
    let mut run = group_buckets(buckets);
    run.sort_groups_by_key();
    let runs = vec![run];
    check_budget(&runs, q)?;
    Ok((Shuffled::merge(runs), stats))
}

/// Runs the map phase into per-worker emission columns, scattering each
/// worker's column into `p` partitions by the top fingerprint bits and
/// concatenating worker sub-columns per partition in chunk (= input)
/// order — so within any partition, pairs appear in global emission order.
///
/// Each worker's column is preallocated from the caller's
/// [`pairs_hint`](EngineConfig::pairs_hint) (split evenly across workers)
/// or, absent a hint, from its chunk length; the partition scatter sizes
/// its targets with an exact counting pass. Together these remove the
/// growth reallocations that made the old map-scatter *slower* at high
/// worker counts than at low ones.
fn map_columnar_phase<I, K, V, M>(
    inputs: &[I],
    mapper: &M,
    workers: usize,
    p: usize,
    pairs_hint: Option<u64>,
    executor: Executor,
) -> Vec<ColumnBuf<K, V>>
where
    I: Sync,
    K: Hash + Send,
    V: Send,
    M: Mapper<I, K, V> + ?Sized,
{
    if inputs.is_empty() {
        return (0..p).map(|_| ColumnBuf::new()).collect();
    }
    let map_workers = workers.min(inputs.len());
    let hint_for = |chunk_len: usize| -> usize {
        pairs_hint
            .map(|h| (h as usize).div_ceil(map_workers))
            .unwrap_or(chunk_len)
    };
    let map_chunk = |c: &[I]| -> Vec<ColumnBuf<K, V>> {
        let _span = mr_obs::span("engine.map.chunk");
        let mut buf = ColumnBuf::with_capacity(hint_for(c.len()));
        for input in c {
            mapper.map(input, &mut |k, v| buf.emit(k, v));
        }
        if p <= 1 {
            vec![buf]
        } else {
            buf.scatter(p, |h| partition_of_hash(h, p))
        }
    };
    let chunk = inputs.len().div_ceil(map_workers);
    let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
    let per_worker: Vec<Vec<ColumnBuf<K, V>>> = if map_workers <= 1 {
        chunks.into_iter().map(map_chunk).collect()
    } else {
        run_chunked(executor, chunks, map_chunk)
    };
    let mut partitions: Vec<ColumnBuf<K, V>> = (0..p).map(|_| ColumnBuf::new()).collect();
    for worker_bufs in per_worker {
        for (pi, buf) in worker_bufs.into_iter().enumerate() {
            partitions[pi].append(buf);
        }
    }
    partitions
}

/// Groups, key-sorts, budget-checks, and merges columnar partitions — the
/// shared back half of the shuffle used by both [`run_round`] and the
/// combined path.
///
/// Every partition is radix-bucketed, code-sorted, run-scanned into a
/// [`GroupedRun`], and its group directory key-sorted — on its own scoped
/// thread when `workers > 1` and there is more than one partition. If any
/// group exceeds `q`, the error names the globally smallest over-budget
/// key — exactly the key the sequential in-key-order scan would have
/// reported, even when several partitions overflow concurrently. The
/// surviving runs are merged into a [`Shuffled`] view in global ascending
/// key order (keys are disjoint across partitions, so a P-way merge of the
/// sorted directories is exact).
pub(crate) fn shuffle_columns<K, V>(
    partitions: Vec<ColumnBuf<K, V>>,
    q: Option<u64>,
    workers: usize,
    bytes_per_pair: u64,
    executor: Executor,
) -> Result<(Shuffled<K, V>, ShuffleStats), EngineError>
where
    K: Ord + Debug + Send + 'static,
    V: Send,
{
    let partition_loads: Vec<u64> = partitions.iter().map(|p| p.len() as u64).collect();
    let mut stats = ShuffleStats::from_partition_loads(&partition_loads);
    stats.bytes_moved = Some(partition_loads.iter().sum::<u64>() * bytes_per_pair);

    let group_one = |buf: ColumnBuf<K, V>| -> GroupedRun<K, V> {
        let _span = mr_obs::span("engine.group.partition");
        let mut run = group_partition(buf);
        run.sort_groups_by_key();
        run
    };
    let runs: Vec<GroupedRun<K, V>> = if workers <= 1 || partitions.len() <= 1 {
        partitions.into_iter().map(group_one).collect()
    } else {
        run_owned(executor, partitions, group_one)
    };

    check_budget(&runs, q)?;
    Ok((Shuffled::merge(runs), stats))
}

/// Enforces the reducer-size budget `q` over key-sorted runs. Each run's
/// directory ascends by key, so the first over-budget group in a run is
/// that run's smallest offender; the globally smallest offender — the
/// exact key a sequential in-key-order scan would report — is the
/// minimum over runs.
fn check_budget<K: Ord + Debug, V>(
    runs: &[GroupedRun<K, V>],
    q: Option<u64>,
) -> Result<(), EngineError> {
    let Some(q) = q else { return Ok(()) };
    let mut worst: Option<(&K, u64)> = None;
    for run in runs {
        if let Some(g) = run.groups.iter().find(|g| u64::from(g.len) > q) {
            if worst.is_none_or(|(wk, _)| g.key < *wk) {
                worst = Some((&g.key, u64::from(g.len)));
            }
        }
    }
    match worst {
        Some((k, load)) => Err(EngineError::ReducerOverflow {
            key: format!("{k:?}"),
            load,
            limit: q,
        }),
        None => Ok(()),
    }
}

/// Assembles [`RoundMetrics`] from per-reducer loads in key order: one
/// sort serves both the summary statistics and the retained raw vector.
fn round_metrics(
    inputs: usize,
    kv_pairs: u64,
    mut loads: Vec<u64>,
    outputs: usize,
    shuffle: ShuffleStats,
) -> RoundMetrics {
    loads.sort_unstable();
    RoundMetrics {
        inputs: inputs as u64,
        kv_pairs,
        reducers: loads.len() as u64,
        outputs: outputs as u64,
        load: LoadStats::from_sorted(&loads),
        loads,
        shuffle,
    }
}

/// Runs `f` over each chunk in parallel on the selected substrate and
/// returns the results in chunk order — the borrowed-slice form of the one
/// parallel substrate shared by the map, shuffle, reduce, and combine
/// phases. Chunk order in, chunk order out is what makes parallel
/// execution bit-identical to sequential, on either substrate: the
/// resident [`WorkerPool`] writes each task's result into its
/// submission-order slot, and the scoped path joins handles in spawn
/// order.
pub(crate) fn run_chunked<T: Sync, R: Send>(
    executor: Executor,
    chunks: Vec<&[T]>,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    let f = &f;
    match executor {
        Executor::Pool => WorkerPool::global().run(
            chunks
                .into_iter()
                .map(|c| Box::new(move || f(c)) as Box<dyn FnOnce() -> R + Send + '_>)
                .collect(),
        ),
        Executor::Scoped => std::thread::scope(|s| {
            let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || f(c))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        }),
    }
}

/// Owned-item twin of [`run_chunked`]: runs `f` over each owned item in
/// parallel on the selected substrate, returning results in item order.
/// Used for the per-partition grouping stage, which consumes its
/// partition.
pub(crate) fn run_owned<T: Send, R: Send>(
    executor: Executor,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let f = &f;
    match executor {
        Executor::Pool => WorkerPool::global().run(
            items
                .into_iter()
                .map(|t| Box::new(move || f(t)) as Box<dyn FnOnce() -> R + Send + '_>)
                .collect(),
        ),
        Executor::Scoped => std::thread::scope(|s| {
            let handles: Vec<_> = items.into_iter().map(|t| s.spawn(move || f(t))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        }),
    }
}

/// Runs the reduce phase over the merged shuffle view, concatenating
/// outputs in ascending key order. With `workers > 1` the global key
/// order is chunked and each chunk reduced on its own scoped thread;
/// chunk-order concatenation keeps the output identical to sequential.
pub(crate) fn reduce_phase<K, V, O, R>(
    shuffled: &Shuffled<K, V>,
    reducer: &R,
    workers: usize,
    executor: Executor,
) -> Vec<O>
where
    K: Send + Sync,
    V: Send + Sync,
    O: Send,
    R: Reducer<K, V, O> + ?Sized,
{
    let n = shuffled.len();
    if workers <= 1 || n < 2 {
        let mut outputs = Vec::with_capacity(n);
        shuffled.for_each_in(0..n, |k, vs| {
            reducer.reduce(k, vs, &mut |o| outputs.push(o))
        });
        return outputs;
    }
    let workers = workers.min(n);
    let chunk = n.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(n)))
        .collect();
    let results = run_owned(executor, ranges, |(s, e)| {
        let _span = mr_obs::span("engine.reduce.chunk");
        let mut outputs = Vec::with_capacity(e - s);
        shuffled.for_each_in(s..e, |k, vs| {
            reducer.reduce(k, vs, &mut |o| outputs.push(o))
        });
        outputs
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    /// Word count, the canonical example (Example 2.5).
    fn wordcount(docs: &[&str], config: &EngineConfig) -> (Vec<(String, u64)>, RoundMetrics) {
        let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        });
        let reducer = FnReducer(
            |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
                emit((k.clone(), vs.iter().sum()))
            },
        );
        run_round(docs, &mapper, &reducer, config).expect("no q bound set")
    }

    #[test]
    fn wordcount_sequential() {
        let docs = ["a b a", "b c", "a"];
        let (out, m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 6); // six word occurrences
        assert_eq!(m.reducers, 3);
        assert_eq!(m.outputs, 3);
        assert_eq!(m.load.max, 3);
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let seq = wordcount(&doc_refs, &EngineConfig::sequential());
        for workers in [2, 3, 8] {
            let par = wordcount(&doc_refs, &EngineConfig::parallel(workers));
            assert_eq!(seq.0, par.0, "outputs differ at {workers} workers");
            assert_eq!(seq.1, par.1, "metrics differ at {workers} workers");
        }
    }

    #[test]
    fn reducer_overflow_detected() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer =
            FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.len() as u32));
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(4);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        match err {
            EngineError::ReducerOverflow { load, limit, .. } => {
                assert_eq!(load, 5);
                assert_eq!(limit, 4);
            }
        }
    }

    #[test]
    fn budget_exactly_met_is_ok() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(5);
        assert!(run_round(&inputs, &mapper, &reducer, &cfg).is_ok());
    }

    #[test]
    fn empty_input_yields_empty_round() {
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn values_preserve_emission_order_within_key() {
        // All inputs go to one key; values must arrive in input order.
        let inputs: Vec<u32> = (0..50).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x));
        let reducer =
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(Vec<u32>)| emit(vs.to_vec()));
        for cfg in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
            let (out, _) = run_round(&inputs, &mapper, &reducer, &cfg).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], inputs);
        }
    }

    #[test]
    fn mapper_emitting_nothing_is_fine() {
        let inputs = vec![1u32, 2, 3];
        let mapper = FnMapper(|_: &u32, _: &mut dyn FnMut(u32, u32)| {});
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(1));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 0);
        assert!((m.replication_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn replication_rate_counts_duplicates() {
        // Each input sent to 3 reducers: r = 3 exactly.
        let inputs: Vec<u32> = (0..20).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            for t in 0..3 {
                emit((*x + t) % 5, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let (_, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!((m.replication_rate() - 3.0).abs() < 1e-12);
        assert_eq!(m.reducers, 5);
    }

    #[test]
    fn zero_workers_runs_sequentially() {
        // workers = 0 is a degenerate config users can build by hand; it
        // must behave exactly like the sequential engine, not hang or
        // panic trying to spawn zero threads.
        let docs = ["a b a", "b c", "a"];
        let zero = EngineConfig {
            workers: 0,
            ..EngineConfig::default()
        };
        let (out, m) = wordcount(&docs, &zero);
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, seq_out);
        assert_eq!(m, seq_m);
    }

    #[test]
    fn zero_workers_clamped_in_exactly_one_place() {
        // Both entry points preserve the raw value and defer the clamp to
        // effective_workers(): parallel(0) is no longer silently rewritten
        // to 1, and a hand-built config normalises identically.
        let ctor = EngineConfig::parallel(0);
        assert_eq!(ctor.workers, 0, "constructor must not rewrite the value");
        assert_eq!(ctor.effective_workers(), 1);
        let hand = EngineConfig {
            workers: 0,
            ..EngineConfig::default()
        };
        assert_eq!(hand.effective_workers(), 1);
        assert_eq!(EngineConfig::parallel(6).effective_workers(), 6);
        // And through the engine: both degenerate configs run sequentially.
        let docs = ["a b a", "b c", "a"];
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        for cfg in [ctor, hand] {
            let (out, m) = wordcount(&docs, &cfg);
            assert_eq!(out, seq_out);
            assert_eq!(m, seq_m);
        }
    }

    #[test]
    fn pairs_hint_is_a_pure_performance_knob() {
        // Any hint value — exact, absurdly large, or zero — must leave
        // outputs and metrics untouched at every worker count.
        let docs: Vec<String> = (0..64)
            .map(|i| format!("k{} k{} x", i % 9, i % 4))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let (base_out, base_m) = wordcount(&doc_refs, &EngineConfig::parallel(4));
        for hint in [0u64, 1, 192, 1 << 20] {
            for workers in [1usize, 4] {
                let cfg = EngineConfig::parallel(workers).with_pairs_hint(hint);
                let (out, m) = wordcount(&doc_refs, &cfg);
                assert_eq!(base_out, out, "hint={hint} workers={workers}");
                assert_eq!(base_m, m, "hint={hint} workers={workers}");
            }
        }
    }

    #[test]
    fn empty_input_parallel_yields_empty_round() {
        // Empty input with a multi-worker config: no chunks, no threads,
        // empty output, zeroed metrics.
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(8)).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn reducer_overflow_reports_offending_key() {
        // Exactly one key is over budget: the first 3 inputs all map to
        // key 7, every other input gets its own key.
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            if *x < 3 {
                emit(7, *x);
            } else {
                emit(100 + *x, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        let EngineError::ReducerOverflow { key, load, limit } = err;
        assert_eq!(key, "7");
        assert_eq!(load, 3);
        assert_eq!(limit, 2);
    }

    #[test]
    fn overflow_error_displays_key_load_and_limit() {
        let err = EngineError::ReducerOverflow {
            key: "\"hub\"".into(),
            load: 12,
            limit: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("\"hub\""), "missing key in: {msg}");
        assert!(msg.contains("12"), "missing load in: {msg}");
        assert!(msg.contains("q=8"), "missing limit in: {msg}");
    }

    #[test]
    fn overflow_precedes_reduce_regardless_of_workers() {
        // The q check runs on the shuffled groups, before any reducer
        // executes — so parallel and sequential runs fail identically.
        let inputs: Vec<u32> = (0..100).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 4, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {
            panic!("reducer must not run on an over-budget round")
        });
        for workers in [1usize, 4] {
            let cfg = EngineConfig::parallel(workers).with_max_reducer_inputs(10);
            let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
            let EngineError::ReducerOverflow { load, limit, .. } = err;
            assert_eq!(load, 25);
            assert_eq!(limit, 10);
        }
    }

    #[test]
    fn determinism_across_worker_counts_thousand_keys() {
        // Acceptance gate for the std::thread::scope port: ≥ 1000 distinct
        // reduce keys, and every worker count produces byte-identical
        // outputs AND metrics to the sequential run.
        let inputs: Vec<u64> = (0..5_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| {
            // 2 emissions per input over 1250 keys → every key gets 8 values.
            emit(*x % 1250, *x);
            emit((x * 7 + 3) % 1250, x * x);
        });
        let reducer = FnReducer(
            |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
                emit((*k, vs.len() as u64, vs.iter().fold(0u64, |a, v| a ^ v)))
            },
        );
        let (seq_out, seq_m) =
            run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(
            seq_m.reducers >= 1000,
            "need ≥1000 keys, got {}",
            seq_m.reducers
        );
        for workers in [2usize, 3, 4, 7, 16] {
            let (out, m) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq_out, out, "outputs diverged at workers={workers}");
            assert_eq!(seq_m, m, "metrics diverged at workers={workers}");
        }
    }

    #[test]
    fn huge_worker_count_on_tiny_input_is_clamped() {
        // Regression: P must be clamped to the input size, or a config
        // like parallel(100_000) over 4 inputs would allocate 100k bucket
        // Vecs per map worker and spawn 100k grouping threads. With the
        // clamp, thread count per phase never exceeds inputs.len() —
        // the envelope the chunked map/reduce phases have always had.
        let docs = ["a b a", "b c", "a"];
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        let (out, m) = wordcount(&docs, &EngineConfig::parallel(100_000));
        assert_eq!(out, seq_out);
        assert_eq!(m, seq_m);
        assert!(
            m.shuffle.partitions <= docs.len() as u64,
            "partitions must be clamped to the input size, got {}",
            m.shuffle.partitions
        );
    }

    #[test]
    fn shuffle_stats_reflect_partitioning() {
        let inputs: Vec<u64> = (0..4_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*x % 997, *x));
        let reducer =
            FnReducer(|_: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.len() as u64));
        let (_, seq) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert_eq!(seq.shuffle.partitions, 1);
        assert_eq!(seq.shuffle.max_partition_load, seq.kv_pairs);
        for workers in [2usize, 4, 8] {
            let (_, par) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(
                par.shuffle.partitions, workers as u64,
                "P must equal workers"
            );
            // Partition loads are a partition of the shuffled pairs.
            let mean_total = par.shuffle.mean_partition_load * workers as f64;
            assert!((mean_total - par.kv_pairs as f64).abs() < 1e-6);
            assert!(par.shuffle.min_partition_load <= par.shuffle.max_partition_load);
            // 997 well-spread keys over ≤8 partitions: skew stays modest.
            assert!(par.shuffle.partition_skew() >= 1.0);
            assert!(par.shuffle.partition_skew() < 2.0, "unexpectedly skewed");
        }
    }

    #[test]
    fn shuffle_stats_report_bytes_and_buckets() {
        // bytes_moved = pairs × (8-byte fingerprint + key + value), and the
        // bucket histogram partitions the pair count.
        let inputs: Vec<u64> = (0..4_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*x % 997, *x));
        let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {});
        for workers in [1usize, 4] {
            let (_, m) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(m.shuffle.bytes_moved, Some(m.kv_pairs * (8 + 8 + 8)));
            assert_eq!(m.shuffle.bucket_loads.iter().sum::<u64>(), m.kv_pairs);
            assert_eq!(m.shuffle.bucket_loads.len() as u64, m.shuffle.partitions);
        }
    }

    #[test]
    fn single_hot_key_maximises_partition_skew() {
        // All pairs share one key, so one partition carries everything:
        // skew = max/mean = P, the engine-level picture of a §1.4 hub.
        let inputs: Vec<u64> = (0..100).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u8, u64)| emit(0, *x));
        let reducer =
            FnReducer(|_: &u8, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.len() as u64));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(out, vec![100]);
        assert_eq!(m.shuffle.partitions, 4);
        assert_eq!(m.shuffle.max_partition_load, 100);
        assert_eq!(m.shuffle.min_partition_load, 0);
        assert!((m.shuffle.partition_skew() - 4.0).abs() < 1e-12);
    }
}
