//! Single-round map-reduce execution.
//!
//! [`run_round`] executes map → shuffle → reduce over an input slice and
//! returns the outputs together with exact [`RoundMetrics`]. Execution is
//! deterministic regardless of worker count: mapper emissions are gathered
//! in input order, the shuffle groups values per key preserving that order,
//! keys are processed in ascending order, and outputs are concatenated in
//! key order.
//!
//! The engine enforces the paper's central constraint when asked: if
//! [`EngineConfig::max_reducer_inputs`] (the paper's `q`) is set and any
//! reducer receives more values, the round fails with
//! [`EngineError::ReducerOverflow`] instead of silently running an
//! over-budget reducer.

use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Engine configuration for one round.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. `0` and `1` both run fully sequentially on
    /// the calling thread; larger values shard the map and reduce phases
    /// with `std::thread::scope` scoped threads. Results are identical
    /// either way.
    pub workers: usize,
    /// The paper's reducer-size bound `q`: if set, a reducer receiving more
    /// than this many values aborts the round.
    pub max_reducer_inputs: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_reducer_inputs: None,
        }
    }
}

impl EngineConfig {
    /// Sequential execution, no reducer-size enforcement.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel execution with `workers` threads.
    pub fn parallel(workers: usize) -> Self {
        EngineConfig {
            workers: workers.max(1),
            max_reducer_inputs: None,
        }
    }

    /// Sets the reducer-size bound `q`.
    pub fn with_max_reducer_inputs(mut self, q: u64) -> Self {
        self.max_reducer_inputs = Some(q);
        self
    }
}

/// Failure modes of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A reducer exceeded the configured input budget `q`.
    ReducerOverflow {
        /// `Debug` rendering of the offending reduce-key.
        key: String,
        /// Number of values that arrived at the key.
        load: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ReducerOverflow { key, load, limit } => write!(
                f,
                "reducer {key} received {load} inputs, exceeding the budget q={limit}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Executes one map-reduce round.
///
/// Returns the reduce outputs (in ascending key order, emission order
/// within a key) and the round's metrics.
pub fn run_round<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let pairs = map_phase(inputs, mapper, config);
    let kv_pairs = pairs.len() as u64;
    let groups = shuffle(pairs);

    // Enforce the reducer-size budget before reducing.
    if let Some(q) = config.max_reducer_inputs {
        for (k, vs) in &groups {
            if vs.len() as u64 > q {
                return Err(EngineError::ReducerOverflow {
                    key: format!("{k:?}"),
                    load: vs.len() as u64,
                    limit: q,
                });
            }
        }
    }

    let loads: Vec<u64> = groups.values().map(|v| v.len() as u64).collect();
    let reducers = groups.len() as u64;
    let outputs = reduce_phase(groups, reducer, config);

    let metrics = RoundMetrics {
        inputs: inputs.len() as u64,
        kv_pairs,
        reducers,
        outputs: outputs.len() as u64,
        load: LoadStats::from_loads(loads.clone()),
        loads: {
            let mut l = loads;
            l.sort_unstable();
            l
        },
    };
    Ok((outputs, metrics))
}

/// Runs `f` over each chunk on its own `std::thread::scope` thread and
/// returns the results in chunk order — the one parallel substrate shared
/// by the map, reduce, and combine phases. Chunk order in, chunk order
/// out is what makes parallel execution bit-identical to sequential.
pub(crate) fn run_chunked<T: Sync, R: Send>(
    chunks: Vec<&[T]>,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Runs the map phase, returning all emissions in input order.
fn map_phase<I, K, V>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    config: &EngineConfig,
) -> Vec<(K, V)>
where
    I: Sync,
    K: Send + Sync,
    V: Send + Sync,
{
    if config.workers <= 1 || inputs.len() < 2 {
        let mut pairs = Vec::new();
        for input in inputs {
            mapper.map(input, &mut |k, v| pairs.push((k, v)));
        }
        return pairs;
    }
    let workers = config.workers.min(inputs.len());
    let chunk = inputs.len().div_ceil(workers);
    let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
    let results = run_chunked(chunks, |c| {
        let mut pairs = Vec::new();
        for input in c {
            mapper.map(input, &mut |k, v| pairs.push((k, v)));
        }
        pairs
    });
    // Concatenate in chunk order == input order.
    results.into_iter().flatten().collect()
}

/// Groups emissions by key, preserving emission order within each key.
fn shuffle<K: Ord, V>(pairs: Vec<(K, V)>) -> BTreeMap<K, Vec<V>> {
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Runs the reduce phase over the grouped values, concatenating outputs in
/// ascending key order.
fn reduce_phase<K, V, O>(
    groups: BTreeMap<K, Vec<V>>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Vec<O>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    if config.workers <= 1 || groups.len() < 2 {
        let mut outputs = Vec::new();
        for (k, vs) in &groups {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        return outputs;
    }
    let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    let workers = config.workers.min(entries.len());
    let chunk = entries.len().div_ceil(workers);
    let chunks: Vec<&[(K, Vec<V>)]> = entries.chunks(chunk).collect();
    let results = run_chunked(chunks, |c| {
        let mut outputs = Vec::new();
        for (k, vs) in c {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        outputs
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    /// Word count, the canonical example (Example 2.5).
    fn wordcount(docs: &[&str], config: &EngineConfig) -> (Vec<(String, u64)>, RoundMetrics) {
        let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        });
        let reducer = FnReducer(
            |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
                emit((k.clone(), vs.iter().sum()))
            },
        );
        run_round(docs, &mapper, &reducer, config).expect("no q bound set")
    }

    #[test]
    fn wordcount_sequential() {
        let docs = ["a b a", "b c", "a"];
        let (out, m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 6); // six word occurrences
        assert_eq!(m.reducers, 3);
        assert_eq!(m.outputs, 3);
        assert_eq!(m.load.max, 3);
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let seq = wordcount(&doc_refs, &EngineConfig::sequential());
        for workers in [2, 3, 8] {
            let par = wordcount(&doc_refs, &EngineConfig::parallel(workers));
            assert_eq!(seq.0, par.0, "outputs differ at {workers} workers");
            assert_eq!(seq.1, par.1, "metrics differ at {workers} workers");
        }
    }

    #[test]
    fn reducer_overflow_detected() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer =
            FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.len() as u32));
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(4);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        match err {
            EngineError::ReducerOverflow { load, limit, .. } => {
                assert_eq!(load, 5);
                assert_eq!(limit, 4);
            }
        }
    }

    #[test]
    fn budget_exactly_met_is_ok() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(5);
        assert!(run_round(&inputs, &mapper, &reducer, &cfg).is_ok());
    }

    #[test]
    fn empty_input_yields_empty_round() {
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn values_preserve_emission_order_within_key() {
        // All inputs go to one key; values must arrive in input order.
        let inputs: Vec<u32> = (0..50).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x));
        let reducer =
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(Vec<u32>)| emit(vs.to_vec()));
        for cfg in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
            let (out, _) = run_round(&inputs, &mapper, &reducer, &cfg).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], inputs);
        }
    }

    #[test]
    fn mapper_emitting_nothing_is_fine() {
        let inputs = vec![1u32, 2, 3];
        let mapper = FnMapper(|_: &u32, _: &mut dyn FnMut(u32, u32)| {});
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(1));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 0);
        assert!((m.replication_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn replication_rate_counts_duplicates() {
        // Each input sent to 3 reducers: r = 3 exactly.
        let inputs: Vec<u32> = (0..20).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            for t in 0..3 {
                emit((*x + t) % 5, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let (_, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!((m.replication_rate() - 3.0).abs() < 1e-12);
        assert_eq!(m.reducers, 5);
    }

    #[test]
    fn zero_workers_runs_sequentially() {
        // workers = 0 is a degenerate config users can build by hand; it
        // must behave exactly like the sequential engine, not hang or
        // panic trying to spawn zero threads.
        let docs = ["a b a", "b c", "a"];
        let zero = EngineConfig {
            workers: 0,
            max_reducer_inputs: None,
        };
        let (out, m) = wordcount(&docs, &zero);
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, seq_out);
        assert_eq!(m, seq_m);
    }

    #[test]
    fn parallel_constructor_clamps_zero_workers() {
        assert_eq!(EngineConfig::parallel(0).workers, 1);
    }

    #[test]
    fn empty_input_parallel_yields_empty_round() {
        // Empty input with a multi-worker config: no chunks, no threads,
        // empty output, zeroed metrics.
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(8)).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn reducer_overflow_reports_offending_key() {
        // Exactly one key is over budget: the first 3 inputs all map to
        // key 7, every other input gets its own key.
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            if *x < 3 {
                emit(7, *x);
            } else {
                emit(100 + *x, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        let EngineError::ReducerOverflow { key, load, limit } = err;
        assert_eq!(key, "7");
        assert_eq!(load, 3);
        assert_eq!(limit, 2);
    }

    #[test]
    fn overflow_error_displays_key_load_and_limit() {
        let err = EngineError::ReducerOverflow {
            key: "\"hub\"".into(),
            load: 12,
            limit: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("\"hub\""), "missing key in: {msg}");
        assert!(msg.contains("12"), "missing load in: {msg}");
        assert!(msg.contains("q=8"), "missing limit in: {msg}");
    }

    #[test]
    fn overflow_precedes_reduce_regardless_of_workers() {
        // The q check runs on the shuffled groups, before any reducer
        // executes — so parallel and sequential runs fail identically.
        let inputs: Vec<u32> = (0..100).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 4, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {
            panic!("reducer must not run on an over-budget round")
        });
        for workers in [1usize, 4] {
            let cfg = EngineConfig::parallel(workers).with_max_reducer_inputs(10);
            let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
            let EngineError::ReducerOverflow { load, limit, .. } = err;
            assert_eq!(load, 25);
            assert_eq!(limit, 10);
        }
    }

    #[test]
    fn determinism_across_worker_counts_thousand_keys() {
        // Acceptance gate for the std::thread::scope port: ≥ 1000 distinct
        // reduce keys, and every worker count produces byte-identical
        // outputs AND metrics to the sequential run.
        let inputs: Vec<u64> = (0..5_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| {
            // 2 emissions per input over 1250 keys → every key gets 8 values.
            emit(*x % 1250, *x);
            emit((x * 7 + 3) % 1250, x * x);
        });
        let reducer = FnReducer(
            |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
                emit((*k, vs.len() as u64, vs.iter().fold(0u64, |a, v| a ^ v)))
            },
        );
        let (seq_out, seq_m) =
            run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(
            seq_m.reducers >= 1000,
            "need ≥1000 keys, got {}",
            seq_m.reducers
        );
        for workers in [2usize, 3, 4, 7, 16] {
            let (out, m) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq_out, out, "outputs diverged at workers={workers}");
            assert_eq!(seq_m, m, "metrics diverged at workers={workers}");
        }
    }
}
