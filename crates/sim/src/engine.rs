//! Single-round map-reduce execution.
//!
//! [`run_round`] executes map → shuffle → reduce over an input slice and
//! returns the outputs together with exact [`RoundMetrics`]. Execution is
//! deterministic regardless of worker count: mapper emissions are gathered
//! in input order, the shuffle groups values per key preserving that order,
//! keys are processed in ascending order, and outputs are concatenated in
//! key order.
//!
//! # Shuffle architecture
//!
//! With `workers <= 1` the shuffle is a single `BTreeMap` insertion pass.
//! With `workers > 1` the engine runs a **parallel hash-partitioned
//! shuffle**: map workers scatter each emission into one of
//! `P = min(workers, inputs)` hash buckets as they run (the map-scatter
//! phase), every partition is group-sorted and `q`-budget-checked on its
//! own scoped thread (the partitioned shuffle), and the per-partition
//! sorted runs are merged in ascending key order. Because a key's pairs all hash to the same
//! partition and worker buckets are concatenated in chunk (= input) order,
//! the merged groups — and therefore outputs and semantic metrics — are
//! identical to the sequential path for every worker count. Only the
//! [`ShuffleStats`] execution metadata (partition count and balance)
//! differs, and that is excluded from metric equality by design.
//!
//! The engine enforces the paper's central constraint when asked: if
//! [`EngineConfig::max_reducer_inputs`] (the paper's `q`) is set and any
//! reducer receives more values, the round fails with
//! [`EngineError::ReducerOverflow`] instead of silently running an
//! over-budget reducer. The parallel path checks each partition
//! concurrently but reports the same offender as the sequential path: the
//! smallest over-budget key in key order.

use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics, ShuffleStats};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Engine configuration for one round.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. `0` and `1` both run fully sequentially on
    /// the calling thread; larger values shard the map, shuffle, and reduce
    /// phases with `std::thread::scope` scoped threads. Results are
    /// identical either way. The raw value is preserved as written;
    /// [`effective_workers`](EngineConfig::effective_workers) is the single
    /// place the degenerate `0` is clamped.
    pub workers: usize,
    /// The paper's reducer-size bound `q`: if set, a reducer receiving more
    /// than this many values aborts the round.
    pub max_reducer_inputs: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_reducer_inputs: None,
        }
    }
}

impl EngineConfig {
    /// Sequential execution, no reducer-size enforcement.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel execution with `workers` threads. The value is stored as
    /// given (including `0`); clamping happens uniformly in
    /// [`effective_workers`](EngineConfig::effective_workers), so
    /// `parallel(0)` and a hand-built `EngineConfig { workers: 0, .. }`
    /// behave identically (sequential execution).
    pub fn parallel(workers: usize) -> Self {
        EngineConfig {
            workers,
            max_reducer_inputs: None,
        }
    }

    /// The worker count the engine actually uses: `workers` clamped to at
    /// least 1. This is the **only** clamp site — every execution path
    /// (engine, combiner, jobs, schemas) normalises the degenerate
    /// `workers: 0` through here.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Sets the reducer-size bound `q`.
    pub fn with_max_reducer_inputs(mut self, q: u64) -> Self {
        self.max_reducer_inputs = Some(q);
        self
    }
}

/// Failure modes of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A reducer exceeded the configured input budget `q`.
    ReducerOverflow {
        /// `Debug` rendering of the offending reduce-key.
        key: String,
        /// Number of values that arrived at the key.
        load: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ReducerOverflow { key, load, limit } => write!(
                f,
                "reducer {key} received {load} inputs, exceeding the budget q={limit}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Executes one map-reduce round.
///
/// Returns the reduce outputs (in ascending key order, emission order
/// within a key) and the round's metrics.
///
/// ```
/// use mr_sim::{run_round, EngineConfig, FnMapper, FnReducer};
/// // Word count (Example 2.5): one emission per word, counts per key.
/// let docs = ["a b a", "b c"];
/// let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
///     for w in doc.split_whitespace() {
///         emit(w.to_string(), 1);
///     }
/// });
/// let reducer = FnReducer(|k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
///     emit((k.clone(), vs.iter().sum()))
/// });
/// let (out, metrics) = run_round(&docs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
/// assert_eq!(out, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
/// assert_eq!(metrics.kv_pairs, 5); // five word occurrences crossed the shuffle
/// ```
pub fn run_round<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let workers = config.effective_workers();
    if workers <= 1 {
        run_round_sequential(inputs, mapper, reducer, config)
    } else {
        run_round_partitioned(inputs, mapper, reducer, config, workers)
    }
}

/// The fully sequential path: one shuffle partition, everything on the
/// calling thread.
fn run_round_sequential<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    K: Ord + Debug,
{
    let mut pairs = Vec::new();
    for input in inputs {
        mapper.map(input, &mut |k, v| pairs.push((k, v)));
    }
    let kv_pairs = pairs.len() as u64;
    let shuffle_stats = ShuffleStats::from_partition_loads(&[kv_pairs]);
    let groups = shuffle(pairs);

    // Enforce the reducer-size budget before reducing.
    if let Some(q) = config.max_reducer_inputs {
        for (k, vs) in &groups {
            if vs.len() as u64 > q {
                return Err(EngineError::ReducerOverflow {
                    key: format!("{k:?}"),
                    load: vs.len() as u64,
                    limit: q,
                });
            }
        }
    }

    let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    let mut outputs = Vec::new();
    for (k, vs) in &entries {
        reducer.reduce(k, vs, &mut |o| outputs.push(o));
    }
    let metrics = round_metrics(
        inputs.len(),
        kv_pairs,
        &entries,
        outputs.len(),
        shuffle_stats,
    );
    Ok((outputs, metrics))
}

/// The parallel path: scatter → per-partition group/check → key-order
/// merge → chunked reduce.
fn run_round_partitioned<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
    workers: usize,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    // Partition count: P = workers, clamped to the input size so a huge
    // worker count over a tiny input never spawns more threads (or
    // allocates more buckets) than there are inputs — the same envelope
    // the chunked map and reduce phases have always had.
    let p = workers.min(inputs.len()).max(1);
    let partitions = map_scatter_phase(inputs, mapper, workers, p);
    let kv_pairs: u64 = partitions.iter().map(|p| p.len() as u64).sum();
    let (entries, shuffle_stats) = shuffle_partitioned(partitions, config.max_reducer_inputs)?;
    let outputs = reduce_phase(&entries, reducer, workers);
    let metrics = round_metrics(
        inputs.len(),
        kv_pairs,
        &entries,
        outputs.len(),
        shuffle_stats,
    );
    Ok((outputs, metrics))
}

/// Assembles [`RoundMetrics`] from key-sorted groups.
fn round_metrics<K, V>(
    inputs: usize,
    kv_pairs: u64,
    entries: &[(K, Vec<V>)],
    outputs: usize,
    shuffle: ShuffleStats,
) -> RoundMetrics {
    let loads: Vec<u64> = entries.iter().map(|(_, vs)| vs.len() as u64).collect();
    RoundMetrics {
        inputs: inputs as u64,
        kv_pairs,
        reducers: entries.len() as u64,
        outputs: outputs as u64,
        load: LoadStats::from_loads(loads.clone()),
        loads: {
            let mut l = loads;
            l.sort_unstable();
            l
        },
        shuffle,
    }
}

/// Runs `f` over each chunk on its own `std::thread::scope` thread and
/// returns the results in chunk order — the borrowed-slice form of the one
/// parallel substrate shared by the map, shuffle, reduce, and combine
/// phases. Chunk order in, chunk order out is what makes parallel
/// execution bit-identical to sequential.
pub(crate) fn run_chunked<T: Sync, R: Send>(
    chunks: Vec<&[T]>,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Owned-item twin of [`run_chunked`]: runs `f` over each owned item on
/// its own scoped thread, returning results in item order. Used for the
/// per-partition grouping stage, which consumes its partition.
pub(crate) fn run_owned<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items.into_iter().map(|t| s.spawn(move || f(t))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Key-sorted reduce groups: one `(key, values)` entry per distinct key,
/// ascending by key, values in arrival order.
pub(crate) type Groups<K, V> = Vec<(K, Vec<V>)>;

/// A deterministic, seed-free multiply-rotate hasher (FxHash-style) for
/// partition routing. `std`'s `RandomState` is randomly seeded per
/// process, which would make partition loads — and the committed bench
/// baselines — irreproducible; this one hashes identically on every run.
struct PartitionHasher(u64);

impl Hasher for PartitionHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The hash partition (in `0..partitions`) that owns `key`. Every pair of
/// a given key lands in the same partition, which is what lets grouping
/// and budget checks run per-partition without cross-talk.
pub(crate) fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = PartitionHasher(0);
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Runs the map phase, scattering emissions into `p` hash buckets as they
/// are produced. Each map worker fills its own bucket set; bucket sets are
/// then concatenated per partition in chunk order, so within any partition
/// pairs appear in global input order.
fn map_scatter_phase<I, K, V>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    workers: usize,
    p: usize,
) -> Vec<Vec<(K, V)>>
where
    I: Sync,
    K: Hash + Send,
    V: Send,
{
    let mut partitions: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
    if inputs.is_empty() {
        return partitions;
    }
    let map_workers = workers.min(inputs.len());
    let chunk = inputs.len().div_ceil(map_workers);
    let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
    let per_worker = run_chunked(chunks, |c| {
        let mut buckets: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
        for input in c {
            mapper.map(input, &mut |k, v| {
                let b = partition_of(&k, p);
                buckets[b].push((k, v));
            });
        }
        buckets
    });
    for worker_buckets in per_worker {
        for (pi, mut bucket) in worker_buckets.into_iter().enumerate() {
            partitions[pi].append(&mut bucket);
        }
    }
    partitions
}

/// Group-sorts and budget-checks every partition concurrently, then merges
/// the per-partition sorted runs into one globally key-sorted group list.
///
/// Each partition is grouped into its own `BTreeMap` (preserving arrival
/// order within a key) and scanned for over-budget keys on its own scoped
/// thread. If any partition overflowed, the error names the globally
/// smallest over-budget key — exactly the key the sequential path's
/// in-key-order scan would have reported, even when several partitions
/// overflow concurrently.
pub(crate) fn shuffle_partitioned<K, V>(
    partitions: Vec<Vec<(K, V)>>,
    q: Option<u64>,
) -> Result<(Groups<K, V>, ShuffleStats), EngineError>
where
    K: Ord + Debug + Send,
    V: Send,
{
    let partition_loads: Vec<u64> = partitions.iter().map(|p| p.len() as u64).collect();
    let stats = ShuffleStats::from_partition_loads(&partition_loads);

    let grouped: Vec<(BTreeMap<K, Vec<V>>, bool)> = run_owned(partitions, |pairs| {
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in pairs {
            groups.entry(k).or_default().push(v);
        }
        let over_budget = q.is_some_and(|q| groups.values().any(|vs| vs.len() as u64 > q));
        (groups, over_budget)
    });

    if let Some(q) = q {
        if grouped.iter().any(|(_, over)| *over) {
            // Cold path: find the smallest over-budget key across the
            // flagged partitions (each map iterates in ascending key
            // order, so `find` yields its partition's smallest offender).
            let mut worst: Option<(&K, u64)> = None;
            for (groups, over) in &grouped {
                if !over {
                    continue;
                }
                if let Some((k, vs)) = groups.iter().find(|(_, vs)| vs.len() as u64 > q) {
                    if worst.is_none_or(|(wk, _)| k < wk) {
                        worst = Some((k, vs.len() as u64));
                    }
                }
            }
            let (k, load) = worst.expect("a flagged partition must contain an offender");
            return Err(EngineError::ReducerOverflow {
                key: format!("{k:?}"),
                load,
                limit: q,
            });
        }
    }

    // P-way merge of the ascending per-partition runs. Keys are disjoint
    // across partitions, so picking the smallest head each step yields the
    // exact sequence a single global BTreeMap would have produced.
    let expected: usize = grouped.iter().map(|(g, _)| g.len()).sum();
    let mut iters: Vec<_> = grouped.into_iter().map(|(g, _)| g.into_iter()).collect();
    let mut heads: Vec<Option<(K, Vec<V>)>> = iters.iter_mut().map(|it| it.next()).collect();
    let mut entries: Vec<(K, Vec<V>)> = Vec::with_capacity(expected);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some((k, _)) = head {
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let (bk, _) = heads[b].as_ref().expect("best head is occupied");
                        if k < bk {
                            i
                        } else {
                            b
                        }
                    }
                });
            }
        }
        let Some(b) = best else { break };
        entries.push(heads[b].take().expect("selected head is occupied"));
        heads[b] = iters[b].next();
    }
    Ok((entries, stats))
}

/// Groups emissions by key, preserving emission order within each key —
/// the single-partition shuffle used by the sequential path.
fn shuffle<K: Ord, V>(pairs: Vec<(K, V)>) -> BTreeMap<K, Vec<V>> {
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Runs the reduce phase over key-sorted groups, concatenating outputs in
/// ascending key order.
pub(crate) fn reduce_phase<K, V, O>(
    entries: &[(K, Vec<V>)],
    reducer: &dyn Reducer<K, V, O>,
    workers: usize,
) -> Vec<O>
where
    K: Send + Sync,
    V: Send + Sync,
    O: Send,
{
    if workers <= 1 || entries.len() < 2 {
        let mut outputs = Vec::new();
        for (k, vs) in entries {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        return outputs;
    }
    let workers = workers.min(entries.len());
    let chunk = entries.len().div_ceil(workers);
    let chunks: Vec<&[(K, Vec<V>)]> = entries.chunks(chunk).collect();
    let results = run_chunked(chunks, |c| {
        let mut outputs = Vec::new();
        for (k, vs) in c {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        outputs
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    /// Word count, the canonical example (Example 2.5).
    fn wordcount(docs: &[&str], config: &EngineConfig) -> (Vec<(String, u64)>, RoundMetrics) {
        let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        });
        let reducer = FnReducer(
            |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
                emit((k.clone(), vs.iter().sum()))
            },
        );
        run_round(docs, &mapper, &reducer, config).expect("no q bound set")
    }

    #[test]
    fn wordcount_sequential() {
        let docs = ["a b a", "b c", "a"];
        let (out, m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 6); // six word occurrences
        assert_eq!(m.reducers, 3);
        assert_eq!(m.outputs, 3);
        assert_eq!(m.load.max, 3);
    }

    #[test]
    fn parallel_equals_sequential() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let seq = wordcount(&doc_refs, &EngineConfig::sequential());
        for workers in [2, 3, 8] {
            let par = wordcount(&doc_refs, &EngineConfig::parallel(workers));
            assert_eq!(seq.0, par.0, "outputs differ at {workers} workers");
            assert_eq!(seq.1, par.1, "metrics differ at {workers} workers");
        }
    }

    #[test]
    fn reducer_overflow_detected() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer =
            FnReducer(|_: &u32, vs: &[u32], emit: &mut dyn FnMut(u32)| emit(vs.len() as u32));
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(4);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        match err {
            EngineError::ReducerOverflow { load, limit, .. } => {
                assert_eq!(load, 5);
                assert_eq!(limit, 4);
            }
        }
    }

    #[test]
    fn budget_exactly_met_is_ok() {
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 2, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(5);
        assert!(run_round(&inputs, &mapper, &reducer, &cfg).is_ok());
    }

    #[test]
    fn empty_input_yields_empty_round() {
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn values_preserve_emission_order_within_key() {
        // All inputs go to one key; values must arrive in input order.
        let inputs: Vec<u32> = (0..50).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u8, u32)| emit(0, *x));
        let reducer =
            FnReducer(|_: &u8, vs: &[u32], emit: &mut dyn FnMut(Vec<u32>)| emit(vs.to_vec()));
        for cfg in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
            let (out, _) = run_round(&inputs, &mapper, &reducer, &cfg).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], inputs);
        }
    }

    #[test]
    fn mapper_emitting_nothing_is_fine() {
        let inputs = vec![1u32, 2, 3];
        let mapper = FnMapper(|_: &u32, _: &mut dyn FnMut(u32, u32)| {});
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(1));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 3);
        assert_eq!(m.kv_pairs, 0);
        assert!((m.replication_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn replication_rate_counts_duplicates() {
        // Each input sent to 3 reducers: r = 3 exactly.
        let inputs: Vec<u32> = (0..20).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            for t in 0..3 {
                emit((*x + t) % 5, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let (_, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!((m.replication_rate() - 3.0).abs() < 1e-12);
        assert_eq!(m.reducers, 5);
    }

    #[test]
    fn zero_workers_runs_sequentially() {
        // workers = 0 is a degenerate config users can build by hand; it
        // must behave exactly like the sequential engine, not hang or
        // panic trying to spawn zero threads.
        let docs = ["a b a", "b c", "a"];
        let zero = EngineConfig {
            workers: 0,
            max_reducer_inputs: None,
        };
        let (out, m) = wordcount(&docs, &zero);
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        assert_eq!(out, seq_out);
        assert_eq!(m, seq_m);
    }

    #[test]
    fn zero_workers_clamped_in_exactly_one_place() {
        // Both entry points preserve the raw value and defer the clamp to
        // effective_workers(): parallel(0) is no longer silently rewritten
        // to 1, and a hand-built config normalises identically.
        let ctor = EngineConfig::parallel(0);
        assert_eq!(ctor.workers, 0, "constructor must not rewrite the value");
        assert_eq!(ctor.effective_workers(), 1);
        let hand = EngineConfig {
            workers: 0,
            max_reducer_inputs: None,
        };
        assert_eq!(hand.effective_workers(), 1);
        assert_eq!(EngineConfig::parallel(6).effective_workers(), 6);
        // And through the engine: both degenerate configs run sequentially.
        let docs = ["a b a", "b c", "a"];
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        for cfg in [ctor, hand] {
            let (out, m) = wordcount(&docs, &cfg);
            assert_eq!(out, seq_out);
            assert_eq!(m, seq_m);
        }
    }

    #[test]
    fn empty_input_parallel_yields_empty_round() {
        // Empty input with a multi-worker config: no chunks, no threads,
        // empty output, zeroed metrics.
        let inputs: Vec<u32> = vec![];
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], emit: &mut dyn FnMut(u32)| emit(0));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(8)).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.inputs, 0);
        assert_eq!(m.kv_pairs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn reducer_overflow_reports_offending_key() {
        // Exactly one key is over budget: the first 3 inputs all map to
        // key 7, every other input gets its own key.
        let inputs: Vec<u32> = (0..10).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            if *x < 3 {
                emit(7, *x);
            } else {
                emit(100 + *x, *x);
            }
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
        let EngineError::ReducerOverflow { key, load, limit } = err;
        assert_eq!(key, "7");
        assert_eq!(load, 3);
        assert_eq!(limit, 2);
    }

    #[test]
    fn overflow_error_displays_key_load_and_limit() {
        let err = EngineError::ReducerOverflow {
            key: "\"hub\"".into(),
            load: 12,
            limit: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("\"hub\""), "missing key in: {msg}");
        assert!(msg.contains("12"), "missing load in: {msg}");
        assert!(msg.contains("q=8"), "missing limit in: {msg}");
    }

    #[test]
    fn overflow_precedes_reduce_regardless_of_workers() {
        // The q check runs on the shuffled groups, before any reducer
        // executes — so parallel and sequential runs fail identically.
        let inputs: Vec<u32> = (0..100).collect();
        let mapper = FnMapper(|x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(*x % 4, *x));
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {
            panic!("reducer must not run on an over-budget round")
        });
        for workers in [1usize, 4] {
            let cfg = EngineConfig::parallel(workers).with_max_reducer_inputs(10);
            let err = run_round(&inputs, &mapper, &reducer, &cfg).unwrap_err();
            let EngineError::ReducerOverflow { load, limit, .. } = err;
            assert_eq!(load, 25);
            assert_eq!(limit, 10);
        }
    }

    #[test]
    fn determinism_across_worker_counts_thousand_keys() {
        // Acceptance gate for the std::thread::scope port: ≥ 1000 distinct
        // reduce keys, and every worker count produces byte-identical
        // outputs AND metrics to the sequential run.
        let inputs: Vec<u64> = (0..5_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| {
            // 2 emissions per input over 1250 keys → every key gets 8 values.
            emit(*x % 1250, *x);
            emit((x * 7 + 3) % 1250, x * x);
        });
        let reducer = FnReducer(
            |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
                emit((*k, vs.len() as u64, vs.iter().fold(0u64, |a, v| a ^ v)))
            },
        );
        let (seq_out, seq_m) =
            run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert!(
            seq_m.reducers >= 1000,
            "need ≥1000 keys, got {}",
            seq_m.reducers
        );
        for workers in [2usize, 3, 4, 7, 16] {
            let (out, m) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq_out, out, "outputs diverged at workers={workers}");
            assert_eq!(seq_m, m, "metrics diverged at workers={workers}");
        }
    }

    #[test]
    fn huge_worker_count_on_tiny_input_is_clamped() {
        // Regression: P must be clamped to the input size, or a config
        // like parallel(100_000) over 4 inputs would allocate 100k bucket
        // Vecs per map worker and spawn 100k grouping threads. With the
        // clamp, thread count per phase never exceeds inputs.len() —
        // the envelope the chunked map/reduce phases have always had.
        let docs = ["a b a", "b c", "a"];
        let (seq_out, seq_m) = wordcount(&docs, &EngineConfig::sequential());
        let (out, m) = wordcount(&docs, &EngineConfig::parallel(100_000));
        assert_eq!(out, seq_out);
        assert_eq!(m, seq_m);
        assert!(
            m.shuffle.partitions <= docs.len() as u64,
            "partitions must be clamped to the input size, got {}",
            m.shuffle.partitions
        );
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for p in [1usize, 2, 3, 8, 16] {
            for k in 0u64..500 {
                let a = partition_of(&k, p);
                assert!(a < p, "partition {a} out of range for p={p}");
                assert_eq!(a, partition_of(&k, p), "routing must be stable");
            }
        }
        // The hash must actually spread keys: with 8 partitions and 500
        // distinct keys, every partition should own at least one key.
        let mut seen = [false; 8];
        for k in 0u64..500 {
            seen[partition_of(&k, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash failed to reach a partition");
    }

    #[test]
    fn shuffle_stats_reflect_partitioning() {
        let inputs: Vec<u64> = (0..4_000).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*x % 997, *x));
        let reducer =
            FnReducer(|_: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.len() as u64));
        let (_, seq) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert_eq!(seq.shuffle.partitions, 1);
        assert_eq!(seq.shuffle.max_partition_load, seq.kv_pairs);
        for workers in [2usize, 4, 8] {
            let (_, par) =
                run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(
                par.shuffle.partitions, workers as u64,
                "P must equal workers"
            );
            // Partition loads are a partition of the shuffled pairs.
            let mean_total = par.shuffle.mean_partition_load * workers as f64;
            assert!((mean_total - par.kv_pairs as f64).abs() < 1e-6);
            assert!(par.shuffle.min_partition_load <= par.shuffle.max_partition_load);
            // 997 well-spread keys over ≤8 partitions: skew stays modest.
            assert!(par.shuffle.partition_skew() >= 1.0);
            assert!(par.shuffle.partition_skew() < 2.0, "unexpectedly skewed");
        }
    }

    #[test]
    fn single_hot_key_maximises_partition_skew() {
        // All pairs share one key, so one partition carries everything:
        // skew = max/mean = P, the engine-level picture of a §1.4 hub.
        let inputs: Vec<u64> = (0..100).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u8, u64)| emit(0, *x));
        let reducer =
            FnReducer(|_: &u8, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.len() as u64));
        let (out, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(out, vec![100]);
        assert_eq!(m.shuffle.partitions, 4);
        assert_eq!(m.shuffle.max_partition_load, 100);
        assert_eq!(m.shuffle.min_partition_load, 0);
        assert!((m.shuffle.partition_skew() - 4.0).abs() < 1e-12);
    }
}
