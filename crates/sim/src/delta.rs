//! Incremental (delta) execution against retained reducer state.
//!
//! Mapping schemas are *oblivious* (§2.2): the reducer set an input maps
//! to never depends on the other inputs in the instance. That property
//! has a consequence the batch engine leaves on the table — when a
//! retained instance gains or loses a few inputs, **only the reducers
//! those inputs map to can change**. Every other reducer received exactly
//! the same input list as before and, reduce being a pure function of
//! that list, would emit exactly the same outputs.
//!
//! [`DeltaJob`] exploits this in the style of incremental view
//! maintenance (DBSP, Differential Dataflow): [`run_schema_retained`] is
//! the retained-state mode of [`run_schema`](crate::run_schema) — it
//! executes the round through the real shuffle pipeline but keeps every
//! reducer's input list and outputs resident. Applying a
//! [`Delta`]`{ added, removed }` then
//!
//! 1. routes only the *changed* inputs through the shuffle (the
//!    delta-shuffle volume is `Σ |assign(i)|` over changed inputs, not
//!    over the instance),
//! 2. re-executes only the **dirty** reducers — those any changed input
//!    maps to, found by the same assignment census `mr-plan` prices plans
//!    with,
//! 3. emits the dirty reducers' old outputs as *retractions* and their
//!    recomputed outputs as *additions*, merged into the retained result.
//!
//! The correctness contract, proven per registry family by the delta
//! battery in `mr-bench`, is
//! `full_run(I ∪ ΔI) == apply(delta_run(ΔI), retained)` — byte-identical
//! outputs and equal semantic metrics, at every worker count, on both the
//! columnar and the retained [`naive`](crate::naive) pipelines
//! (selectable via [`Pipeline`]).
//!
//! The reducer budget `q` keeps its batch semantics: a delta whose
//! post-delta reducer load would exceed
//! [`max_reducer_inputs`](crate::EngineConfig::max_reducer_inputs) aborts
//! with the same smallest-key offender a full run would report, and the
//! retained state is left untouched.

use crate::combiner::{run_round_combined, CombinedMetrics, Combiner};
use crate::engine::{run_chunked, run_round, EngineConfig, EngineError};
use crate::mapper::{FnMapper, FnReducer, Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics, ShuffleStats};
use crate::naive::{run_round_combined_naive, run_round_naive};
use crate::schema::{ReducerId, SchemaJob};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Cached handles for the delta path's always-on metrics counters.
struct DeltaCounters {
    applies: mr_obs::Counter,
    dirty_reducers: mr_obs::Counter,
}

fn delta_counters() -> &'static DeltaCounters {
    static COUNTERS: OnceLock<DeltaCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| DeltaCounters {
        applies: mr_obs::global().counter("delta.applies"),
        dirty_reducers: mr_obs::global().counter("delta.dirty_reducers"),
    })
}

/// Stable identifier of one retained input. Assigned monotonically by
/// [`DeltaJob`] (the initial instance gets `0..n` in input order) and
/// never reused, so a removal names an input unambiguously even when
/// values repeat.
pub type Seq = u64;

/// Which shuffle data plane a round executes on.
///
/// The engine's default is the columnar radix-partitioned plane; the
/// original `BTreeMap` shuffle is retained in [`naive`](crate::naive) as
/// the regression oracle. Both planes honour the same determinism
/// contract, so everything built on rounds — including delta execution —
/// is parameterised over the plane and differential tests can cross-check
/// them in one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// The columnar radix-partitioned shuffle (the production plane).
    Columnar,
    /// The retained `BTreeMap` shuffle (the oracle plane).
    Naive,
}

impl Pipeline {
    /// Both planes, for exhaustive differential loops.
    pub const ALL: [Pipeline; 2] = [Pipeline::Columnar, Pipeline::Naive];

    /// Short display name (`"columnar"` / `"naive"`).
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::Columnar => "columnar",
            Pipeline::Naive => "naive",
        }
    }
}

/// Executes one round on the selected [`Pipeline`].
///
/// Dispatches to [`run_round`] (columnar) or
/// [`run_round_naive`] — both satisfy the same
/// determinism contract, so callers may treat the plane as an opaque
/// execution detail.
pub fn run_round_on<I, K, V, O>(
    pipeline: Pipeline,
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync + 'static,
    V: Send + Sync,
    O: Send,
{
    match pipeline {
        Pipeline::Columnar => run_round(inputs, mapper, reducer, config),
        Pipeline::Naive => run_round_naive(inputs, mapper, reducer, config),
    }
}

/// Executes one combined round (map-side combining) on the selected
/// [`Pipeline`] — the combiner-path twin of [`run_round_on`].
pub fn run_round_combined_on<I, K, V, O>(
    pipeline: Pipeline,
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    combiner: &dyn Combiner<K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, CombinedMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Clone + Debug + Send + Sync + 'static,
    V: Send + Sync,
    O: Send,
{
    match pipeline {
        Pipeline::Columnar => run_round_combined(inputs, mapper, combiner, reducer, config),
        Pipeline::Naive => run_round_combined_naive(inputs, mapper, combiner, reducer, config),
    }
}

/// A batch of changes to a retained instance: values to add and the
/// [`Seq`] ids of retained inputs to remove.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta<I> {
    /// Values entering the instance (each gets a fresh [`Seq`]).
    pub added: Vec<I>,
    /// Sequence ids of retained inputs leaving the instance.
    pub removed: Vec<Seq>,
}

impl<I> Delta<I> {
    /// The empty delta (a no-op when applied).
    pub fn empty() -> Self {
        Delta {
            added: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// A pure-insertion delta.
    pub fn add(added: Vec<I>) -> Self {
        Delta {
            added,
            removed: Vec::new(),
        }
    }

    /// A pure-removal delta.
    pub fn remove(removed: Vec<Seq>) -> Self {
        Delta {
            added: Vec::new(),
            removed,
        }
    }

    /// A mixed delta.
    pub fn new(added: Vec<I>, removed: Vec<Seq>) -> Self {
        Delta { added, removed }
    }

    /// Number of changed inputs (additions plus removals).
    pub fn changes(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Failure modes of delta application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An engine round failed — in practice a [`ReducerOverflow`]
    /// (the post-delta load of some reducer exceeded the budget `q`).
    /// The retained state is unchanged.
    ///
    /// [`ReducerOverflow`]: EngineError::ReducerOverflow
    Engine(EngineError),
    /// A removal named a [`Seq`] that is not live (never existed, already
    /// removed, or repeated within one delta). The retained state is
    /// unchanged.
    UnknownSeq(Seq),
}

impl From<EngineError> for DeltaError {
    fn from(e: EngineError) -> Self {
        DeltaError::Engine(e)
    }
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Engine(e) => write!(f, "{e}"),
            DeltaError::UnknownSeq(seq) => {
                write!(f, "delta removal names seq {seq}, which is not live")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Measurements of one delta application, reported next to the full-run
/// equivalents so the saving is inspectable: `dirty_reducers` vs the
/// retained round's reducer count, `delta_pairs` vs its `kv_pairs`.
#[derive(Debug, Clone)]
pub struct DeltaMetrics {
    /// Reducers whose input list changed (and were therefore re-executed).
    pub dirty_reducers: u64,
    /// Live reducers after the delta (the full-run equivalent count).
    pub total_reducers: u64,
    /// Inputs the delta added.
    pub inputs_added: u64,
    /// Inputs the delta removed.
    pub inputs_removed: u64,
    /// Key-value pairs the delta round shuffled: `Σ |assign(i)|` over the
    /// *changed* inputs only — the delta-shuffle volume, vs the full
    /// run's `kv_pairs` over the whole instance.
    pub delta_pairs: u64,
    /// Outputs retracted (everything the dirty reducers had emitted).
    pub outputs_retracted: u64,
    /// Outputs added (everything the dirty reducers re-emitted).
    pub outputs_added: u64,
    /// Engine metrics of the delta routing round (executed on the
    /// retained pipeline over the changed inputs): its `kv_pairs` is
    /// `delta_pairs`, its `reducers` is `dirty_reducers`, its `loads` are
    /// per-dirty-reducer change counts.
    pub routing: RoundMetrics,
    /// Wall-clock time of the whole application (execution metadata).
    pub wall: Duration,
}

/// The visible effect of applying one [`Delta`]: output retractions and
/// additions, plus [`DeltaMetrics`]. Untouched (clean) reducers
/// contribute to neither list — their retained outputs stand.
#[derive(Debug, Clone)]
pub struct DeltaOutcome<O> {
    /// Outputs withdrawn from the result (the dirty reducers' previous
    /// emissions, in ascending reducer order, emission order within a
    /// reducer).
    pub retracted: Vec<O>,
    /// Outputs entering the result (the dirty reducers' recomputed
    /// emissions, same order).
    pub added: Vec<O>,
    /// The [`Seq`] ids assigned to `delta.added`, in order.
    pub added_seqs: Range<Seq>,
    /// What the application measured.
    pub metrics: DeltaMetrics,
}

/// What a delta *will* do, predicted from the schema's assignment alone —
/// the same census arithmetic `mr-plan` prices plans with. Exact by
/// obliviousness: [`DeltaJob::apply`] measures precisely these numbers,
/// so running the application under `post_q` as the reducer budget is the
/// delta analogue of `Plan::execute`'s self-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPrediction {
    /// Reducers the delta will dirty.
    pub dirty_reducers: u64,
    /// Key-value pairs the delta round will shuffle.
    pub delta_pairs: u64,
    /// Maximum reducer load after the delta (over all reducers, clean
    /// ones included) — the post-delta effective `q`.
    pub post_q: u64,
    /// Live reducers after the delta.
    pub post_reducers: u64,
}

/// A dirty reducer's staged post-delta state — `(rid, seqs, values)` —
/// held aside until validation and the budget check pass.
type StagedReducer<I> = (ReducerId, Vec<Seq>, Vec<I>);

/// One reducer's retained state: its input list (seq-sorted, the order
/// the engine delivers) and the outputs it emitted for that list.
#[derive(Debug, Clone)]
struct ReducerState<I, O> {
    seqs: Vec<Seq>,
    values: Vec<I>,
    outputs: Vec<O>,
}

/// A [`SchemaJob`] held resident for incremental execution: the schema,
/// the live instance, and every reducer's input list and outputs.
///
/// Build one with [`run_schema_retained`] (or [`DeltaJob::new`] for an
/// empty instance), then feed it [`Delta`]s via [`apply`](DeltaJob::apply).
/// [`outputs`](DeltaJob::outputs) and [`metrics`](DeltaJob::metrics) always
/// equal what a fresh [`run_schema`](crate::run_schema) of the live
/// instance would produce.
#[derive(Debug, Clone)]
pub struct DeltaJob<I, O, S> {
    schema: S,
    pipeline: Pipeline,
    config: EngineConfig,
    next_seq: Seq,
    live: BTreeMap<Seq, I>,
    reducers: BTreeMap<ReducerId, ReducerState<I, O>>,
}

/// The retained-state mode of [`run_schema`](crate::run_schema): executes
/// the schema over `inputs` through the selected [`Pipeline`], keeping
/// per-reducer input lists and reduce outputs resident for incremental
/// re-execution. Inputs receive [`Seq`] ids `0..inputs.len()` in order.
///
/// Equivalent to `DeltaJob::new` followed by an all-additions
/// [`apply`](DeltaJob::apply); the budget `q` (if configured) is enforced
/// with the batch path's offender semantics.
pub fn run_schema_retained<I, O, S>(
    inputs: &[I],
    schema: S,
    pipeline: Pipeline,
    config: &EngineConfig,
) -> Result<DeltaJob<I, O, S>, DeltaError>
where
    I: Clone + Send + Sync,
    O: Clone + Send,
    S: SchemaJob<I, O>,
{
    let mut job = DeltaJob::new(schema, pipeline, config.clone());
    job.apply(&Delta::add(inputs.to_vec()))?;
    Ok(job)
}

impl<I, O, S> DeltaJob<I, O, S>
where
    I: Clone + Send + Sync,
    O: Clone + Send,
    S: SchemaJob<I, O>,
{
    /// A retained job over the **empty** instance. `config`'s budget and
    /// worker count govern every subsequent [`apply`](DeltaJob::apply).
    pub fn new(schema: S, pipeline: Pipeline, config: EngineConfig) -> Self {
        DeltaJob {
            schema,
            pipeline,
            config,
            next_seq: 0,
            live: BTreeMap::new(),
            reducers: BTreeMap::new(),
        }
    }

    /// Applies one [`Delta`]: routes the changed inputs through the
    /// shuffle, re-executes exactly the dirty reducers against their
    /// updated input lists, and merges the result into the retained
    /// state.
    ///
    /// On `Err` — an unknown removal [`Seq`], or a post-delta reducer
    /// load over the configured budget `q` (reported with the batch
    /// path's smallest-offender semantics) — the retained state is
    /// **unchanged**: validation and the budget check run against staged
    /// copies before anything commits.
    pub fn apply(&mut self, delta: &Delta<I>) -> Result<DeltaOutcome<O>, DeltaError> {
        let start = Instant::now();
        let _apply_span = mr_obs::span("delta.apply");

        // Resolve and validate the changed inputs. Removals are looked up
        // in the live map (the mapper needs the removed *value* to know
        // which reducers it had been assigned to — obliviousness
        // guarantees the assignment is the same one the insertion used).
        let mut staged_removed: BTreeSet<Seq> = BTreeSet::new();
        let mut ops: Vec<(Seq, I, bool)> = Vec::with_capacity(delta.changes());
        for &seq in &delta.removed {
            let value = self.live.get(&seq).ok_or(DeltaError::UnknownSeq(seq))?;
            if !staged_removed.insert(seq) {
                return Err(DeltaError::UnknownSeq(seq));
            }
            ops.push((seq, value.clone(), false));
        }
        let added_seqs = self.next_seq..self.next_seq + delta.added.len() as Seq;
        let mut added_values: BTreeMap<Seq, &I> = BTreeMap::new();
        for (offset, value) in delta.added.iter().enumerate() {
            let seq = self.next_seq + offset as Seq;
            added_values.insert(seq, value);
            ops.push((seq, value.clone(), true));
        }

        // Route the changed inputs through the retained pipeline: one
        // engine round whose reduce merely *groups* the changes per dirty
        // reducer. Its metrics are the delta's communication picture —
        // `kv_pairs` is the delta-shuffle volume, `reducers` the dirty
        // count. No budget here: this round's loads count *changes*, not
        // retained inputs; the real `q` check runs on the staged
        // post-delta loads below.
        let schema = &self.schema;
        let routing_config = EngineConfig {
            max_reducer_inputs: None,
            pairs_hint: None,
            ..self.config.clone()
        };
        let mapper = FnMapper(
            |op: &(Seq, I, bool), emit: &mut dyn FnMut(ReducerId, (Seq, bool))| {
                for rid in schema.assign(&op.1) {
                    emit(rid, (op.0, op.2));
                }
            },
        );
        type Grouped = (ReducerId, Vec<(Seq, bool)>);
        let reducer = FnReducer(
            |rid: &ReducerId, changes: &[(Seq, bool)], emit: &mut dyn FnMut(Grouped)| {
                emit((*rid, changes.to_vec()))
            },
        );
        let routing_span = mr_obs::span("delta.routing");
        let (groups, routing) =
            run_round_on(self.pipeline, &ops, &mapper, &reducer, &routing_config)?;
        drop(routing_span);

        // Stage every dirty reducer's post-delta input list. `groups`
        // arrives in ascending reducer order (the engine's output
        // contract), and additions arrive in emission = op order, so
        // appending keeps the seq-sorted invariant (fresh seqs exceed all
        // retained ones).
        let mut staged: Vec<StagedReducer<I>> = Vec::with_capacity(groups.len());
        for (rid, changes) in &groups {
            let (mut seqs, mut values) = match self.reducers.get(rid) {
                Some(state) => (state.seqs.clone(), state.values.clone()),
                None => (Vec::new(), Vec::new()),
            };
            let removes: BTreeSet<Seq> = changes
                .iter()
                .filter(|(_, is_add)| !is_add)
                .map(|(seq, _)| *seq)
                .collect();
            if !removes.is_empty() {
                let mut kept_seqs = Vec::with_capacity(seqs.len());
                let mut kept_values = Vec::with_capacity(values.len());
                for (seq, value) in seqs.into_iter().zip(values) {
                    if !removes.contains(&seq) {
                        kept_seqs.push(seq);
                        kept_values.push(value);
                    }
                }
                seqs = kept_seqs;
                values = kept_values;
            }
            for &(seq, is_add) in changes {
                if is_add {
                    seqs.push(seq);
                    values.push((*added_values.get(&seq).expect("added seq is staged")).clone());
                }
            }
            staged.push((*rid, seqs, values));
        }

        // Post-delta budget check, before anything commits. Clean
        // reducers are within budget by invariant (every commit checked
        // them while dirty), so the smallest over-budget *staged* reducer
        // is the globally smallest — the same offender a full run of the
        // post-delta instance reports.
        if let Some(limit) = self.config.max_reducer_inputs {
            for (rid, seqs, _) in &staged {
                let load = seqs.len() as u64;
                if load > limit {
                    return Err(EngineError::ReducerOverflow {
                        key: format!("{rid:?}"),
                        load,
                        limit,
                    }
                    .into());
                }
            }
        }

        // Re-execute exactly the dirty reducers. Chunk order in, chunk
        // order out: deterministic at every worker count.
        let rereduce_span = mr_obs::span("delta.rereduce");
        let workers = self.config.effective_workers().min(staged.len().max(1));
        let new_outputs: Vec<Vec<O>> = if workers <= 1 {
            staged
                .iter()
                .map(|(rid, _, values)| {
                    let mut out = Vec::new();
                    schema.reduce(*rid, values, &mut |o| out.push(o));
                    out
                })
                .collect()
        } else {
            let chunk = staged.len().div_ceil(workers);
            let chunks: Vec<&[StagedReducer<I>]> = staged.chunks(chunk).collect();
            run_chunked(self.config.executor, chunks, |chunk| {
                chunk
                    .iter()
                    .map(|(rid, _, values)| {
                        let mut out = Vec::new();
                        schema.reduce(*rid, values, &mut |o| out.push(o));
                        out
                    })
                    .collect::<Vec<Vec<O>>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        drop(rereduce_span);

        // Commit. Retractions are the dirty reducers' previous outputs
        // (moved out of the state); additions are the recomputed ones.
        let mut retracted: Vec<O> = Vec::new();
        let mut added_out: Vec<O> = Vec::new();
        for ((rid, seqs, values), outputs) in staged.into_iter().zip(new_outputs) {
            if let Some(old) = self.reducers.remove(&rid) {
                retracted.extend(old.outputs);
            }
            if !seqs.is_empty() {
                added_out.extend(outputs.iter().cloned());
                self.reducers.insert(
                    rid,
                    ReducerState {
                        seqs,
                        values,
                        outputs,
                    },
                );
            }
        }
        for seq in &staged_removed {
            self.live.remove(seq);
        }
        for (seq, value) in delta
            .added
            .iter()
            .enumerate()
            .map(|(offset, value)| (added_seqs.start + offset as Seq, value))
        {
            self.live.insert(seq, value.clone());
        }
        self.next_seq = added_seqs.end;

        delta_counters().applies.incr();
        delta_counters().dirty_reducers.add(routing.reducers);
        let metrics = DeltaMetrics {
            dirty_reducers: routing.reducers,
            total_reducers: self.reducers.len() as u64,
            inputs_added: delta.added.len() as u64,
            inputs_removed: delta.removed.len() as u64,
            delta_pairs: routing.kv_pairs,
            outputs_retracted: retracted.len() as u64,
            outputs_added: added_out.len() as u64,
            routing,
            wall: start.elapsed(),
        };
        Ok(DeltaOutcome {
            retracted,
            added: added_out,
            added_seqs,
            metrics,
        })
    }

    /// Predicts what [`apply`](DeltaJob::apply) will measure for `delta`,
    /// from the schema's assignment alone — no reducer runs. Exact by
    /// obliviousness; see [`DeltaPrediction`].
    ///
    /// Fails with [`DeltaError::UnknownSeq`] on the same invalid removals
    /// `apply` would reject. The prediction does **not** consult the
    /// budget: callers use `post_q` to *choose* one (run the application
    /// under `post_q` and an under-prediction aborts loudly).
    pub fn predict(&self, delta: &Delta<I>) -> Result<DeltaPrediction, DeltaError> {
        let mut staged_removed: BTreeSet<Seq> = BTreeSet::new();
        // Per-dirty-reducer (removals, additions) counts.
        let mut touched: BTreeMap<ReducerId, (u64, u64)> = BTreeMap::new();
        let mut delta_pairs = 0u64;
        for &seq in &delta.removed {
            let value = self.live.get(&seq).ok_or(DeltaError::UnknownSeq(seq))?;
            if !staged_removed.insert(seq) {
                return Err(DeltaError::UnknownSeq(seq));
            }
            for rid in self.schema.assign(value) {
                delta_pairs += 1;
                touched.entry(rid).or_insert((0, 0)).0 += 1;
            }
        }
        for value in &delta.added {
            for rid in self.schema.assign(value) {
                delta_pairs += 1;
                touched.entry(rid).or_insert((0, 0)).1 += 1;
            }
        }
        let mut post_q = 0u64;
        let mut post_reducers = 0u64;
        for (rid, state) in &self.reducers {
            if !touched.contains_key(rid) {
                post_q = post_q.max(state.seqs.len() as u64);
                post_reducers += 1;
            }
        }
        for (rid, &(removals, additions)) in &touched {
            let current = self
                .reducers
                .get(rid)
                .map_or(0, |state| state.seqs.len() as u64);
            let post = current - removals + additions;
            if post > 0 {
                post_q = post_q.max(post);
                post_reducers += 1;
            }
        }
        Ok(DeltaPrediction {
            dirty_reducers: touched.len() as u64,
            delta_pairs,
            post_q,
            post_reducers,
        })
    }

    /// The retained result: what a fresh
    /// [`run_schema`](crate::run_schema) of the live instance would
    /// output, byte for byte — ascending reducer order, emission order
    /// within a reducer.
    pub fn outputs(&self) -> Vec<O> {
        self.reducers
            .values()
            .flat_map(|state| state.outputs.iter().cloned())
            .collect()
    }

    /// Full-run-equivalent [`RoundMetrics`] of the retained state: equal
    /// (under `RoundMetrics`' semantic equality) to what a fresh
    /// [`run_schema`](crate::run_schema) of the live instance would
    /// measure. The [`ShuffleStats`] are left empty — execution metadata
    /// describes a run, and the retained state may be the work of many.
    pub fn metrics(&self) -> RoundMetrics {
        let mut loads: Vec<u64> = self
            .reducers
            .values()
            .map(|state| state.seqs.len() as u64)
            .collect();
        loads.sort_unstable();
        let outputs: u64 = self
            .reducers
            .values()
            .map(|state| state.outputs.len() as u64)
            .sum();
        RoundMetrics {
            inputs: self.live.len() as u64,
            kv_pairs: loads.iter().sum(),
            reducers: loads.len() as u64,
            outputs,
            load: LoadStats::from_loads(loads.clone()),
            loads,
            shuffle: ShuffleStats::default(),
        }
    }

    /// The live instance in [`Seq`] order — exactly the input slice a
    /// full run reproducing this state would be given.
    pub fn inputs(&self) -> Vec<I> {
        self.live.values().cloned().collect()
    }

    /// The live [`Seq`] ids in ascending order.
    pub fn seqs(&self) -> Vec<Seq> {
        self.live.keys().copied().collect()
    }

    /// Number of live inputs.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of live (non-empty) reducers.
    pub fn num_reducers(&self) -> u64 {
        self.reducers.len() as u64
    }

    /// The schema this job retains state for.
    pub fn schema(&self) -> &S {
        &self.schema
    }

    /// The shuffle plane deltas execute on.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    /// The engine configuration (budget, workers) applications run under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::run_schema;

    /// All-pairs similarity toy schema: input `x` goes to reducer `x / 2`,
    /// reducers emit every ordered pair they hold.
    struct PairUp;

    impl SchemaJob<u32, (u32, u32)> for PairUp {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            vec![(*input / 2) as ReducerId]
        }
        fn reduce(&self, _r: ReducerId, inputs: &[u32], emit: &mut dyn FnMut((u32, u32))) {
            for i in 0..inputs.len() {
                for j in (i + 1)..inputs.len() {
                    emit((inputs[i], inputs[j]));
                }
            }
        }
    }

    /// Replicating schema: every input goes to `c` reducers (r = c).
    struct Replicate(u64);

    impl SchemaJob<u32, u64> for Replicate {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            (0..self.0)
                .map(|g| g * 100 + (*input as u64 % 10))
                .collect()
        }
        fn reduce(&self, r: ReducerId, inputs: &[u32], emit: &mut dyn FnMut(u64)) {
            emit(r * 1_000_000 + inputs.iter().map(|&x| x as u64).sum::<u64>());
        }
    }

    fn assert_matches_full_run<S: SchemaJob<u32, (u32, u32)>>(
        job: &DeltaJob<u32, (u32, u32), S>,
        config: &EngineConfig,
    ) {
        let live = job.inputs();
        let (full_out, full_m) = run_schema(&live, job.schema(), config).unwrap();
        assert_eq!(job.outputs(), full_out, "retained outputs diverged");
        assert_eq!(job.metrics(), full_m, "retained metrics diverged");
    }

    #[test]
    fn retained_init_matches_full_run_on_both_pipelines() {
        let inputs: Vec<u32> = (0..40).collect();
        for pipeline in Pipeline::ALL {
            for workers in [1usize, 4] {
                let cfg = EngineConfig::parallel(workers);
                let job = run_schema_retained(&inputs, PairUp, pipeline, &cfg).unwrap();
                assert_eq!(job.len(), 40);
                assert_eq!(job.seqs(), (0..40).collect::<Vec<Seq>>());
                assert_matches_full_run(&job, &cfg);
            }
        }
    }

    #[test]
    fn mixed_delta_matches_full_rerun() {
        let inputs: Vec<u32> = (0..30).collect();
        for pipeline in Pipeline::ALL {
            for workers in [1usize, 4] {
                let cfg = EngineConfig::parallel(workers);
                let mut job = run_schema_retained(&inputs, PairUp, pipeline, &cfg).unwrap();
                let delta = Delta::new(vec![100, 101, 7], vec![4, 5, 17]);
                let outcome = job.apply(&delta).unwrap();
                // Removals dirty reducers {2, 8} (values 4, 5, 17);
                // additions dirty {50, 3} (values 100, 101, 7).
                assert_eq!(outcome.metrics.dirty_reducers, 4);
                assert_eq!(outcome.metrics.delta_pairs, 6);
                assert_eq!(outcome.added_seqs, 30..33);
                assert_matches_full_run(&job, &cfg);
            }
        }
    }

    #[test]
    fn removal_retracts_and_drops_emptied_reducers() {
        let mut job = run_schema_retained(
            &[0u32, 1, 2, 3],
            PairUp,
            Pipeline::Columnar,
            &EngineConfig::sequential(),
        )
        .unwrap();
        assert_eq!(job.num_reducers(), 2);
        // Remove both inputs of reducer 0 (seqs 0 and 1 hold values 0, 1).
        let outcome = job.apply(&Delta::remove(vec![0, 1])).unwrap();
        assert_eq!(outcome.retracted, vec![(0, 1)]);
        assert!(outcome.added.is_empty());
        assert_eq!(outcome.metrics.dirty_reducers, 1);
        assert_eq!(job.num_reducers(), 1);
        assert_eq!(job.outputs(), vec![(2, 3)]);
        assert_matches_full_run(&job, &EngineConfig::sequential());
    }

    #[test]
    fn clean_reducers_are_not_reexecuted() {
        let inputs: Vec<u32> = (0..100).collect();
        let mut job = run_schema_retained(
            &inputs,
            PairUp,
            Pipeline::Columnar,
            &EngineConfig::sequential(),
        )
        .unwrap();
        // One added input dirties exactly one of the 50 reducers.
        let outcome = job.apply(&Delta::add(vec![42])).unwrap();
        assert_eq!(outcome.metrics.dirty_reducers, 1);
        assert_eq!(outcome.metrics.total_reducers, 50);
        assert_eq!(outcome.metrics.delta_pairs, 1);
        assert_eq!(outcome.retracted, vec![(42, 43)]);
        assert_eq!(outcome.added, vec![(42, 43), (42, 42), (43, 42)]);
        assert_matches_full_run(&job, &EngineConfig::sequential());
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut job = run_schema_retained(
            &[0u32, 1, 2],
            PairUp,
            Pipeline::Naive,
            &EngineConfig::sequential(),
        )
        .unwrap();
        let before = job.outputs();
        let outcome = job.apply(&Delta::empty()).unwrap();
        assert!(outcome.retracted.is_empty() && outcome.added.is_empty());
        assert_eq!(outcome.metrics.dirty_reducers, 0);
        assert_eq!(outcome.metrics.delta_pairs, 0);
        assert_eq!(job.outputs(), before);
    }

    #[test]
    fn unknown_and_repeated_seqs_are_rejected_without_side_effects() {
        let mut job = run_schema_retained(
            &[0u32, 1, 2, 3],
            PairUp,
            Pipeline::Columnar,
            &EngineConfig::sequential(),
        )
        .unwrap();
        let before = job.outputs();
        assert_eq!(
            job.apply(&Delta::remove(vec![99])).unwrap_err(),
            DeltaError::UnknownSeq(99)
        );
        assert_eq!(
            job.apply(&Delta::remove(vec![1, 1])).unwrap_err(),
            DeltaError::UnknownSeq(1)
        );
        // A failed delta must not half-apply: seq 1 is still live.
        assert_eq!(job.outputs(), before);
        assert_eq!(job.len(), 4);
        job.apply(&Delta::remove(vec![1])).unwrap();
        assert_eq!(job.len(), 3);
    }

    #[test]
    fn budget_abort_reports_the_full_run_offender_and_preserves_state() {
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        let inputs: Vec<u32> = (0..8).collect();
        let mut job = run_schema_retained(&inputs, PairUp, Pipeline::Columnar, &cfg).unwrap();
        let before = job.outputs();
        // Adding 4 and 9 would push reducers 2 and 4 to load 3 each; the
        // smallest offender in key order is reducer 2 — exactly what a
        // full run of the post-delta instance reports.
        let delta = Delta::add(vec![4, 9]);
        let err = job.apply(&delta).unwrap_err();
        let mut post = inputs.clone();
        post.extend([4, 9]);
        let full_err = run_schema(&post, &PairUp, &cfg).unwrap_err();
        assert_eq!(err, DeltaError::Engine(full_err));
        match err {
            DeltaError::Engine(EngineError::ReducerOverflow { key, load, limit }) => {
                assert_eq!(key, "2");
                assert_eq!(load, 3);
                assert_eq!(limit, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Abort left the state untouched; an in-budget delta still works.
        assert_eq!(job.outputs(), before);
        job.apply(&Delta::remove(vec![0])).unwrap();
        assert_matches_full_run(&job, &cfg);
    }

    #[test]
    fn prediction_is_exact() {
        let inputs: Vec<u32> = (0..60).collect();
        let mut job = run_schema_retained(
            &inputs,
            Replicate(3),
            Pipeline::Columnar,
            &EngineConfig::sequential(),
        )
        .unwrap();
        let delta = Delta::new(vec![100, 103, 105], vec![2, 7, 19]);
        let predicted = job.predict(&delta).unwrap();
        let outcome = job.apply(&delta).unwrap();
        assert_eq!(predicted.dirty_reducers, outcome.metrics.dirty_reducers);
        assert_eq!(predicted.delta_pairs, outcome.metrics.delta_pairs);
        assert_eq!(predicted.post_reducers, outcome.metrics.total_reducers);
        assert_eq!(predicted.post_q, job.metrics().load.max);
        // And the promised self-check: re-applying an identical-shape
        // delta under the predicted q as a hard budget succeeds.
        let mut budgeted_job = DeltaJob::new(
            Replicate(3),
            Pipeline::Columnar,
            EngineConfig::sequential().with_max_reducer_inputs(predicted.post_q),
        );
        budgeted_job.apply(&Delta::add(job.inputs())).unwrap();
    }

    #[test]
    fn seqs_stay_monotonic_across_applies() {
        let mut job = DeltaJob::new(PairUp, Pipeline::Columnar, EngineConfig::sequential());
        let first = job.apply(&Delta::add(vec![0, 1])).unwrap();
        assert_eq!(first.added_seqs, 0..2);
        job.apply(&Delta::remove(vec![0])).unwrap();
        // A removed seq is never reused.
        let second = job.apply(&Delta::add(vec![5])).unwrap();
        assert_eq!(second.added_seqs, 2..3);
        assert_eq!(job.seqs(), vec![1, 2]);
    }

    #[test]
    fn repeated_values_are_distinct_inputs() {
        // The same value twice is two inputs (multiset semantics); seqs
        // disambiguate removal.
        let mut job = run_schema_retained(
            &[6u32, 6, 7],
            PairUp,
            Pipeline::Columnar,
            &EngineConfig::sequential(),
        )
        .unwrap();
        assert_eq!(job.outputs(), vec![(6, 6), (6, 7), (6, 7)]);
        job.apply(&Delta::remove(vec![0])).unwrap();
        assert_eq!(job.outputs(), vec![(6, 7)]);
        assert_matches_full_run(&job, &EngineConfig::sequential());
    }

    #[test]
    fn pipeline_dispatch_planes_agree() {
        // run_round_on / run_round_combined_on: both planes, same answer.
        let inputs: Vec<u64> = (0..500).map(|x| x * 7 % 40).collect();
        let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*x % 16, *x));
        let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
            emit((*k, vs.iter().sum()))
        });
        let cfg = EngineConfig::parallel(4);
        let (col, col_m) =
            run_round_on(Pipeline::Columnar, &inputs, &mapper, &reducer, &cfg).unwrap();
        let (nai, nai_m) = run_round_on(Pipeline::Naive, &inputs, &mapper, &reducer, &cfg).unwrap();
        assert_eq!(col, nai);
        assert_eq!(col_m, nai_m);

        let combiner = crate::combiner::FnCombiner(|_k: &u64, acc: &mut u64, next: u64| {
            *acc += next;
        });
        let (ccol, ccol_m) = run_round_combined_on(
            Pipeline::Columnar,
            &inputs,
            &mapper,
            &combiner,
            &reducer,
            &cfg,
        )
        .unwrap();
        let (cnai, cnai_m) =
            run_round_combined_on(Pipeline::Naive, &inputs, &mapper, &combiner, &reducer, &cfg)
                .unwrap();
        assert_eq!(ccol, cnai);
        assert_eq!(ccol_m.round, cnai_m.round);
        assert_eq!(ccol_m.pre_combine_pairs, cnai_m.pre_combine_pairs);
        assert_eq!(ccol, col);
    }

    #[test]
    fn full_churn_replaces_the_instance() {
        let inputs: Vec<u32> = (0..20).collect();
        let cfg = EngineConfig::sequential();
        let mut job = run_schema_retained(&inputs, PairUp, Pipeline::Columnar, &cfg).unwrap();
        let replacement: Vec<u32> = (40..60).collect();
        let delta = Delta::new(replacement.clone(), job.seqs());
        job.apply(&delta).unwrap();
        assert_eq!(job.inputs(), replacement);
        assert_matches_full_run(&job, &cfg);
    }
}
