//! The original `BTreeMap`-centric shuffle, retained as a **test-only
//! regression oracle** for the columnar data plane.
//!
//! This module is a faithful copy of the engine's pre-columnar pipeline:
//! map workers scatter `(K, V)` pairs into `P = min(workers, inputs)`
//! hash buckets (routed by a byte-at-a-time FxHash-style hasher and a
//! modulo), each partition is grouped into its own `BTreeMap`, and the
//! per-partition sorted runs are merged by smallest head key. It is
//! comparison-bound and allocation-heavy — that is the point: the
//! columnar engine in [`engine`](crate::engine) must produce
//! byte-identical outputs and semantic metrics on every workload at
//! every worker count, including the same smallest-key overflow
//! offender, and the `columnar_oracle` battery asserts exactly that
//! against this module. Do **not** use it in production paths.

use crate::combiner::{CombinedMetrics, Combiner};
use crate::engine::{pair_bytes, run_chunked, run_owned, EngineConfig, EngineError};
use crate::mapper::{Mapper, Reducer};
use crate::metrics::{LoadStats, RoundMetrics, ShuffleStats};
use crate::pool::Executor;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Key-sorted reduce groups: one `(key, values)` entry per distinct key,
/// ascending by key, values in arrival order.
type Groups<K, V> = Vec<(K, Vec<V>)>;

/// The pre-columnar deterministic, seed-free multiply-rotate hasher
/// (FxHash-style byte loop) used for partition routing.
struct PartitionHasher(u64);

impl Hasher for PartitionHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The hash partition (in `0..partitions`) that owns `key`, by modulo on
/// the byte-loop hash — the old routing function.
fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = PartitionHasher(0);
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Executes one round through the naive `BTreeMap` pipeline. Same
/// contract as [`run_round`](crate::run_round): outputs in ascending key
/// order, emission order within a key, identical at every worker count.
pub fn run_round_naive<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let workers = config.effective_workers();
    if workers <= 1 {
        run_round_sequential(inputs, mapper, reducer, config)
    } else {
        run_round_partitioned(inputs, mapper, reducer, config, workers)
    }
}

/// The fully sequential naive path: one `BTreeMap`, everything on the
/// calling thread.
fn run_round_sequential<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    K: Ord + Debug,
{
    let mut pairs = Vec::new();
    for input in inputs {
        mapper.map(input, &mut |k, v| pairs.push((k, v)));
    }
    let kv_pairs = pairs.len() as u64;
    let mut shuffle_stats = ShuffleStats::from_partition_loads(&[kv_pairs]);
    shuffle_stats.bytes_moved = Some(kv_pairs * pair_bytes::<K, V>());
    let groups = shuffle(pairs);

    if let Some(q) = config.max_reducer_inputs {
        for (k, vs) in &groups {
            if vs.len() as u64 > q {
                return Err(EngineError::ReducerOverflow {
                    key: format!("{k:?}"),
                    load: vs.len() as u64,
                    limit: q,
                });
            }
        }
    }

    let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    let mut outputs = Vec::new();
    for (k, vs) in &entries {
        reducer.reduce(k, vs, &mut |o| outputs.push(o));
    }
    let metrics = round_metrics(
        inputs.len(),
        kv_pairs,
        &entries,
        outputs.len(),
        shuffle_stats,
    );
    Ok((outputs, metrics))
}

/// The parallel naive path: map-scatter → per-partition `BTreeMap`
/// group/check → key-order merge → chunked reduce.
fn run_round_partitioned<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
    workers: usize,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let p = workers.min(inputs.len()).max(1);
    let partitions = map_scatter_phase(inputs, mapper, workers, p, config.executor);
    let kv_pairs: u64 = partitions.iter().map(|p| p.len() as u64).sum();
    let (entries, mut shuffle_stats) =
        shuffle_partitioned(partitions, config.max_reducer_inputs, config.executor)?;
    shuffle_stats.bytes_moved = Some(kv_pairs * pair_bytes::<K, V>());
    let outputs = naive_reduce_phase(&entries, reducer, workers, config.executor);
    let metrics = round_metrics(
        inputs.len(),
        kv_pairs,
        &entries,
        outputs.len(),
        shuffle_stats,
    );
    Ok((outputs, metrics))
}

/// Assembles [`RoundMetrics`] from key-sorted groups.
fn round_metrics<K, V>(
    inputs: usize,
    kv_pairs: u64,
    entries: &[(K, Vec<V>)],
    outputs: usize,
    shuffle: ShuffleStats,
) -> RoundMetrics {
    let loads: Vec<u64> = entries.iter().map(|(_, vs)| vs.len() as u64).collect();
    RoundMetrics {
        inputs: inputs as u64,
        kv_pairs,
        reducers: entries.len() as u64,
        outputs: outputs as u64,
        load: LoadStats::from_loads(loads.clone()),
        loads: {
            let mut l = loads;
            l.sort_unstable();
            l
        },
        shuffle,
    }
}

/// Runs the map phase, scattering emissions into `p` hash buckets as they
/// are produced — including the unhinted, zero-capacity bucket `Vec`s
/// whose growth reallocations the columnar plane was built to eliminate.
fn map_scatter_phase<I, K, V>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    workers: usize,
    p: usize,
    executor: Executor,
) -> Vec<Vec<(K, V)>>
where
    I: Sync,
    K: Hash + Send,
    V: Send,
{
    let mut partitions: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
    if inputs.is_empty() {
        return partitions;
    }
    let map_workers = workers.min(inputs.len());
    let chunk = inputs.len().div_ceil(map_workers);
    let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
    let per_worker = run_chunked(executor, chunks, |c| {
        let mut buckets: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
        for input in c {
            mapper.map(input, &mut |k, v| {
                let b = partition_of(&k, p);
                buckets[b].push((k, v));
            });
        }
        buckets
    });
    for worker_buckets in per_worker {
        for (pi, mut bucket) in worker_buckets.into_iter().enumerate() {
            partitions[pi].append(&mut bucket);
        }
    }
    partitions
}

/// Group-sorts and budget-checks every partition concurrently in its own
/// `BTreeMap`, then merges the per-partition sorted runs by smallest head
/// key. On overflow, reports the globally smallest over-budget key.
fn shuffle_partitioned<K, V>(
    partitions: Vec<Vec<(K, V)>>,
    q: Option<u64>,
    executor: Executor,
) -> Result<(Groups<K, V>, ShuffleStats), EngineError>
where
    K: Ord + Debug + Send,
    V: Send,
{
    let partition_loads: Vec<u64> = partitions.iter().map(|p| p.len() as u64).collect();
    let stats = ShuffleStats::from_partition_loads(&partition_loads);

    let grouped: Vec<(BTreeMap<K, Vec<V>>, bool)> = run_owned(executor, partitions, |pairs| {
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in pairs {
            groups.entry(k).or_default().push(v);
        }
        let over_budget = q.is_some_and(|q| groups.values().any(|vs| vs.len() as u64 > q));
        (groups, over_budget)
    });

    if let Some(q) = q {
        if grouped.iter().any(|(_, over)| *over) {
            let mut worst: Option<(&K, u64)> = None;
            for (groups, over) in &grouped {
                if !over {
                    continue;
                }
                if let Some((k, vs)) = groups.iter().find(|(_, vs)| vs.len() as u64 > q) {
                    if worst.is_none_or(|(wk, _)| k < wk) {
                        worst = Some((k, vs.len() as u64));
                    }
                }
            }
            let (k, load) = worst.expect("a flagged partition must contain an offender");
            return Err(EngineError::ReducerOverflow {
                key: format!("{k:?}"),
                load,
                limit: q,
            });
        }
    }

    // P-way merge of the ascending per-partition runs. Keys are disjoint
    // across partitions, so picking the smallest head each step yields the
    // exact sequence a single global BTreeMap would have produced.
    let expected: usize = grouped.iter().map(|(g, _)| g.len()).sum();
    let mut iters: Vec<_> = grouped.into_iter().map(|(g, _)| g.into_iter()).collect();
    let mut heads: Vec<Option<(K, Vec<V>)>> = iters.iter_mut().map(|it| it.next()).collect();
    let mut entries: Vec<(K, Vec<V>)> = Vec::with_capacity(expected);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some((k, _)) = head {
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let (bk, _) = heads[b].as_ref().expect("best head is occupied");
                        if k < bk {
                            i
                        } else {
                            b
                        }
                    }
                });
            }
        }
        let Some(b) = best else { break };
        entries.push(heads[b].take().expect("selected head is occupied"));
        heads[b] = iters[b].next();
    }
    Ok((entries, stats))
}

/// Groups emissions by key, preserving emission order within each key —
/// the single-partition shuffle used by the sequential naive path.
fn shuffle<K: Ord, V>(pairs: Vec<(K, V)>) -> BTreeMap<K, Vec<V>> {
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Runs the reduce phase over key-sorted groups, concatenating outputs in
/// ascending key order.
fn naive_reduce_phase<K, V, O>(
    entries: &[(K, Vec<V>)],
    reducer: &dyn Reducer<K, V, O>,
    workers: usize,
    executor: Executor,
) -> Vec<O>
where
    K: Send + Sync,
    V: Send + Sync,
    O: Send,
{
    if workers <= 1 || entries.len() < 2 {
        let mut outputs = Vec::new();
        for (k, vs) in entries {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        return outputs;
    }
    let workers = workers.min(entries.len());
    let chunk = entries.len().div_ceil(workers);
    let chunks: Vec<&[(K, Vec<V>)]> = entries.chunks(chunk).collect();
    let results = run_chunked(executor, chunks, |c| {
        let mut outputs = Vec::new();
        for (k, vs) in c {
            reducer.reduce(k, vs, &mut |o| outputs.push(o));
        }
        outputs
    });
    results.into_iter().flatten().collect()
}

/// Executes map → (per-worker `BTreeMap` combine) → naive shuffle →
/// reduce: the pre-columnar combined path, same contract as
/// [`run_round_combined`](crate::run_round_combined).
pub fn run_round_combined_naive<I, K, V, O>(
    inputs: &[I],
    mapper: &dyn Mapper<I, K, V>,
    combiner: &dyn Combiner<K, V>,
    reducer: &dyn Reducer<K, V, O>,
    config: &EngineConfig,
) -> Result<(Vec<O>, CombinedMetrics), EngineError>
where
    I: Sync,
    K: Ord + Hash + Clone + Debug + Send + Sync,
    V: Send + Sync,
    O: Send,
{
    let configured_workers = config.effective_workers();
    let workers = configured_workers.min(inputs.len().max(1));
    let chunk = inputs.len().div_ceil(workers);
    let chunks: Vec<&[I]> = if inputs.is_empty() {
        Vec::new()
    } else {
        inputs.chunks(chunk).collect()
    };

    // Map + combine per worker.
    let combine_chunk = |c: &[I]| -> (u64, BTreeMap<K, V>) {
        let mut emitted = 0u64;
        let mut acc: BTreeMap<K, V> = BTreeMap::new();
        for input in c {
            mapper.map(input, &mut |k, v| {
                emitted += 1;
                match acc.get_mut(&k) {
                    Some(slot) => combiner.combine(&k, slot, v),
                    None => {
                        acc.insert(k, v);
                    }
                }
            });
        }
        (emitted, acc)
    };

    let per_worker: Vec<(u64, BTreeMap<K, V>)> = if workers <= 1 || chunks.len() <= 1 {
        chunks.iter().map(|c| combine_chunk(c)).collect()
    } else {
        run_chunked(config.executor, chunks, combine_chunk)
    };

    let pre_combine_pairs: u64 = per_worker.iter().map(|(e, _)| *e).sum();

    let (entries, wire_pairs, shuffle_stats) = if configured_workers <= 1 {
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        let mut wire_pairs = 0u64;
        for (_, map) in per_worker {
            for (k, v) in map {
                wire_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        if let Some(q) = config.max_reducer_inputs {
            for (k, vs) in &groups {
                if vs.len() as u64 > q {
                    return Err(EngineError::ReducerOverflow {
                        key: format!("{k:?}"),
                        load: vs.len() as u64,
                        limit: q,
                    });
                }
            }
        }
        let stats = ShuffleStats::from_partition_loads(&[wire_pairs]);
        let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
        (entries, wire_pairs, stats)
    } else {
        let p = workers;
        let mut partitions: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
        let mut wire_pairs = 0u64;
        for (_, map) in per_worker {
            for (k, v) in map {
                wire_pairs += 1;
                partitions[partition_of(&k, p)].push((k, v));
            }
        }
        let (entries, stats) =
            shuffle_partitioned(partitions, config.max_reducer_inputs, config.executor)?;
        (entries, wire_pairs, stats)
    };

    let loads: Vec<u64> = entries.iter().map(|(_, vs)| vs.len() as u64).collect();
    let reducers = entries.len() as u64;
    let outputs = naive_reduce_phase(&entries, reducer, configured_workers, config.executor);

    let metrics = CombinedMetrics {
        round: RoundMetrics {
            inputs: inputs.len() as u64,
            kv_pairs: wire_pairs,
            reducers,
            outputs: outputs.len() as u64,
            load: LoadStats::from_loads(loads.clone()),
            loads: {
                let mut l = loads;
                l.sort_unstable();
                l
            },
            shuffle: shuffle_stats,
        },
        pre_combine_pairs,
    };
    Ok((outputs, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{FnMapper, FnReducer};

    #[test]
    fn naive_path_still_works_standalone() {
        // The oracle must stay healthy on its own, or oracle-vs-columnar
        // comparisons would be vacuous.
        let docs = ["a b a", "b c", "a"];
        let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        });
        let reducer = FnReducer(
            |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
                emit((k.clone(), vs.iter().sum()))
            },
        );
        let (seq, seq_m) =
            run_round_naive(&docs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        assert_eq!(seq, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        for workers in [2usize, 3, 8] {
            let (par, par_m) =
                run_round_naive(&docs, &mapper, &reducer, &EngineConfig::parallel(workers))
                    .unwrap();
            assert_eq!(seq, par);
            assert_eq!(seq_m, par_m);
        }
    }
}
