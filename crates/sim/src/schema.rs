//! Executing an abstract *mapping schema* as a map-reduce job.
//!
//! §2.2 defines a mapping schema as an assignment of inputs to reducers
//! subject to the reducer-size bound `q` and the coverage condition. A
//! schema says nothing about what the reducers compute; [`SchemaJob`]
//! supplies the missing pieces — the assignment function and the reduce
//! logic — and [`run_schema`] executes them on the engine, so that the
//! *measured* replication rate and maximum reducer load of any schema can
//! be compared with the paper's bounds.

use crate::engine::{run_round, EngineConfig, EngineError};
use crate::mapper::{FnMapper, FnReducer};
use crate::metrics::RoundMetrics;
use std::time::{Duration, Instant};

/// Identifier of a reducer in a mapping schema.
pub type ReducerId = u64;

/// A mapping schema plus reduce logic for a concrete problem.
pub trait SchemaJob<I, O>: Sync {
    /// The reducers that input `i` must be sent to (§2.2's assignment).
    /// An input may be assigned to several reducers; each assignment
    /// contributes one key-value pair of communication.
    fn assign(&self, input: &I) -> Vec<ReducerId>;

    /// Computes the outputs a reducer is responsible for, given every
    /// input assigned to it. `reducer` is the id from [`assign`], and
    /// `inputs` arrive in input order.
    ///
    /// Implementations must respect the *covering* discipline: when an
    /// output is covered by multiple reducers, only one should emit it
    /// (e.g. the one given by a tie-breaking rule, as in §5.4.2).
    ///
    /// [`assign`]: SchemaJob::assign
    fn reduce(&self, reducer: ReducerId, inputs: &[I], emit: &mut dyn FnMut(O));
}

/// Executes a [`SchemaJob`] on the engine.
///
/// Returns the outputs plus the round metrics; the metrics'
/// [`replication_rate`](RoundMetrics::replication_rate) is exactly the
/// schema's `Σ qᵢ / |I|` from §2.2 evaluated on the given instance.
pub fn run_schema<I, O, S>(
    inputs: &[I],
    schema: &S,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics), EngineError>
where
    I: Clone + Send + Sync,
    O: Send,
    S: SchemaJob<I, O>,
{
    let mapper = FnMapper(|input: &I, emit: &mut dyn FnMut(ReducerId, I)| {
        for r in schema.assign(input) {
            emit(r, input.clone());
        }
    });
    let reducer = FnReducer(|rid: &ReducerId, vs: &[I], emit: &mut dyn FnMut(O)| {
        schema.reduce(*rid, vs, emit)
    });
    run_round(inputs, &mapper, &reducer, config)
}

/// Executes a [`SchemaJob`] on the engine, additionally reporting the
/// wall-clock time of the round.
///
/// The timing covers exactly the engine run (map, shuffle, reduce) and
/// nothing else — no input construction, no metric post-processing. It is
/// *execution metadata* in the same sense as
/// [`ShuffleStats`](crate::metrics::ShuffleStats): two runs that compute
/// the same thing will report different durations, so callers comparing
/// runs for determinism must compare outputs and metrics only. The
/// frontier-sweep subsystem in `mr-bench` builds its wall-clock column on
/// this entry point.
pub fn run_schema_timed<I, O, S>(
    inputs: &[I],
    schema: &S,
    config: &EngineConfig,
) -> Result<(Vec<O>, RoundMetrics, Duration), EngineError>
where
    I: Clone + Send + Sync,
    O: Send,
    S: SchemaJob<I, O>,
{
    let start = Instant::now();
    let (outputs, metrics) = run_schema(inputs, schema, config)?;
    Ok((outputs, metrics, start.elapsed()))
}

/// A fully type-erased schema job: the assignment and reduce logic of a
/// [`SchemaJob`] with the input and output types compiled away.
///
/// The erasure trick is to run the engine over **input indices** instead
/// of input values: `assign` receives an index into the original input
/// slice, and `reduce` receives the indices routed to a reducer plus an
/// `emit` callback that merely *counts* outputs. Because the engine's
/// metrics depend only on keys and cardinalities — never on value
/// contents — a dyn round measures exactly what the typed
/// [`run_schema`] round measures (see
/// [`run_schema_dyn`] for the precise contract).
///
/// This is the boundary that lets heterogeneous problem families (bit
/// strings, graph edges, join tuples, matrix entries) flow through one
/// registry: `mr-core`'s `family` module erases each family's typed
/// schema here, and everything above — the frontier sweep, the repro
/// driver, the battery — is monomorphism-free.
pub struct DynSchema<'a> {
    /// Number of inputs in the erased instance (indices are `0..num_inputs`).
    pub num_inputs: usize,
    /// §2.2 assignment over input indices.
    pub assign: Box<dyn Fn(usize) -> Vec<ReducerId> + Sync + 'a>,
    /// Reduce logic over input indices; `emit` is called once per output.
    #[allow(clippy::type_complexity)]
    pub reduce: Box<dyn Fn(ReducerId, &[usize], &mut dyn FnMut()) + Sync + 'a>,
}

impl<'a> DynSchema<'a> {
    /// Erases a typed [`SchemaJob`] over a concrete input slice.
    ///
    /// The returned job borrows `inputs` and `schema`; assignment
    /// delegates to `schema.assign(&inputs[i])`, and reduction gathers
    /// the indexed inputs (cloned, in arrival order — exactly the slice
    /// the typed path would hand the reducer) before delegating to
    /// `schema.reduce`. Output *values* are dropped at this boundary;
    /// only their count crosses it.
    pub fn erase<I, O, S>(inputs: &'a [I], schema: &'a S) -> Self
    where
        I: Clone + Send + Sync,
        O: Send,
        S: SchemaJob<I, O>,
    {
        DynSchema {
            num_inputs: inputs.len(),
            assign: Box::new(move |i| schema.assign(&inputs[i])),
            reduce: Box::new(move |rid, indices, emit| {
                let gathered: Vec<I> = indices.iter().map(|&i| inputs[i].clone()).collect();
                schema.reduce(rid, &gathered, &mut |_o: O| emit());
            }),
        }
    }
}

/// Executes a type-erased [`DynSchema`] on the engine, reporting the
/// output count, the round metrics, and the round's wall-clock time.
///
/// # Metric equivalence
///
/// For a `DynSchema` built by [`DynSchema::erase`], the returned
/// [`RoundMetrics`] are **identical** to what [`run_schema`] computes for
/// the underlying typed schema on the same inputs, at every worker
/// count. The engine's semantic metrics (pairs, loads, reducer count,
/// outputs) and its shuffle routing depend only on reducer ids and
/// emission counts; substituting `usize` indices for input values and
/// `()` for output values changes neither. The frontier sweep's
/// byte-identical-output tests ride on this equivalence.
///
/// Wall-clock is execution metadata, as in [`run_schema_timed`].
pub fn run_schema_dyn(
    schema: &DynSchema<'_>,
    config: &EngineConfig,
) -> Result<(u64, RoundMetrics, Duration), EngineError> {
    let start = Instant::now();
    let indices: Vec<usize> = (0..schema.num_inputs).collect();
    let mapper = FnMapper(|i: &usize, emit: &mut dyn FnMut(ReducerId, usize)| {
        for r in (schema.assign)(*i) {
            emit(r, *i);
        }
    });
    let reducer = FnReducer(|rid: &ReducerId, vs: &[usize], emit: &mut dyn FnMut(())| {
        (schema.reduce)(*rid, vs, &mut || emit(()))
    });
    let (outputs, metrics) = run_round(&indices, &mapper, &reducer, config)?;
    debug_assert_eq!(outputs.len() as u64, metrics.outputs);
    Ok((metrics.outputs, metrics, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy all-pairs similarity schema: inputs are small integers, each
    /// goes to reducer `x / 2`, and reducers emit every pair they hold.
    struct PairUp;

    impl SchemaJob<u32, (u32, u32)> for PairUp {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            vec![(*input / 2) as ReducerId]
        }
        fn reduce(&self, _r: ReducerId, inputs: &[u32], emit: &mut dyn FnMut((u32, u32))) {
            for i in 0..inputs.len() {
                for j in (i + 1)..inputs.len() {
                    emit((inputs[i], inputs[j]));
                }
            }
        }
    }

    #[test]
    fn schema_runs_and_measures() {
        let inputs: Vec<u32> = (0..8).collect();
        let (out, m) = run_schema(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        assert_eq!(out, vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
        assert_eq!(m.reducers, 4);
        assert!((m.replication_rate() - 1.0).abs() < 1e-12);
        assert_eq!(m.load.max, 2);
    }

    /// Replicating schema: every input goes to `c` reducers.
    struct Replicate(u64);

    impl SchemaJob<u32, u32> for Replicate {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            (0..self.0)
                .map(|g| g * 100 + (*input as u64 % 10))
                .collect()
        }
        fn reduce(&self, _r: ReducerId, _inputs: &[u32], _emit: &mut dyn FnMut(u32)) {}
    }

    #[test]
    fn replication_rate_equals_assignments_per_input() {
        let inputs: Vec<u32> = (0..100).collect();
        for c in [1u64, 2, 5] {
            let (_, m) = run_schema(&inputs, &Replicate(c), &EngineConfig::sequential()).unwrap();
            assert!(
                (m.replication_rate() - c as f64).abs() < 1e-12,
                "c={c} gave r={}",
                m.replication_rate()
            );
        }
    }

    #[test]
    fn schema_deterministic_across_worker_counts() {
        // The schema runner rides on run_round, so the partitioned shuffle
        // must be invisible here too: identical outputs and metrics for
        // every worker count.
        let inputs: Vec<u32> = (0..200).collect();
        let (seq_out, seq_m) = run_schema(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        for workers in [2usize, 3, 8, 16] {
            let (out, m) = run_schema(&inputs, &PairUp, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq_out, out, "outputs diverged at workers={workers}");
            assert_eq!(seq_m, m, "metrics diverged at workers={workers}");
        }
    }

    #[test]
    fn timed_run_matches_untimed_and_reports_a_duration() {
        let inputs: Vec<u32> = (0..64).collect();
        let (out, m) = run_schema(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        let (tout, tm, wall) =
            run_schema_timed(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        assert_eq!(out, tout);
        assert_eq!(m, tm);
        // A finished round took *some* time; an exact value is unknowable.
        assert!(wall > Duration::ZERO);
    }

    #[test]
    fn timed_run_propagates_overflow() {
        let inputs: Vec<u32> = (0..30).collect();
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(1);
        assert!(run_schema_timed(&inputs, &PairUp, &cfg).is_err());
    }

    #[test]
    fn dyn_run_matches_typed_run_exactly() {
        // The erasure contract: identical RoundMetrics and output count,
        // at every worker count.
        let inputs: Vec<u32> = (0..200).collect();
        let (typed_out, typed_m) =
            run_schema(&inputs, &PairUp, &EngineConfig::sequential()).unwrap();
        for workers in [1usize, 2, 3, 8] {
            let erased = DynSchema::erase::<u32, (u32, u32), _>(&inputs, &PairUp);
            let (count, m, wall) =
                run_schema_dyn(&erased, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(count, typed_out.len() as u64, "workers={workers}");
            assert_eq!(m, typed_m, "metrics diverged at workers={workers}");
            assert!(wall > Duration::ZERO);
        }
    }

    #[test]
    fn dyn_run_gathers_inputs_in_arrival_order() {
        // A reduce that is order-sensitive: emit once per *descent* in the
        // gathered slice. If the erased path permuted values, the count
        // would differ from the typed path.
        struct OrderSensitive;
        impl SchemaJob<u32, u32> for OrderSensitive {
            fn assign(&self, input: &u32) -> Vec<ReducerId> {
                vec![(*input % 3) as ReducerId]
            }
            fn reduce(&self, _r: ReducerId, inputs: &[u32], emit: &mut dyn FnMut(u32)) {
                for w in inputs.windows(2) {
                    if w[1] < w[0] {
                        emit(w[0]);
                    }
                }
            }
        }
        // Interleaved values so arrival order matters.
        let inputs: Vec<u32> = (0..60).map(|i| (i * 37) % 60).collect();
        let (typed_out, typed_m) =
            run_schema(&inputs, &OrderSensitive, &EngineConfig::sequential()).unwrap();
        let erased = DynSchema::erase::<u32, u32, _>(&inputs, &OrderSensitive);
        let (count, m, _) = run_schema_dyn(&erased, &EngineConfig::sequential()).unwrap();
        assert_eq!(count, typed_out.len() as u64);
        assert_eq!(m, typed_m);
    }

    #[test]
    fn dyn_run_propagates_overflow() {
        let inputs: Vec<u32> = (0..30).collect();
        let erased = DynSchema::erase::<u32, (u32, u32), _>(&inputs, &PairUp);
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(1);
        assert!(run_schema_dyn(&erased, &cfg).is_err());
    }

    #[test]
    fn dyn_run_on_empty_input() {
        let inputs: Vec<u32> = Vec::new();
        let erased = DynSchema::erase::<u32, (u32, u32), _>(&inputs, &PairUp);
        let (count, m, _) = run_schema_dyn(&erased, &EngineConfig::sequential()).unwrap();
        assert_eq!(count, 0);
        assert_eq!(m.inputs, 0);
        assert_eq!(m.reducers, 0);
    }

    #[test]
    fn schema_respects_q_budget() {
        let inputs: Vec<u32> = (0..30).collect();
        let cfg = EngineConfig::sequential().with_max_reducer_inputs(2);
        // PairUp sends 2 inputs per reducer: exactly at budget.
        assert!(run_schema(&inputs, &PairUp, &cfg).is_ok());
        let cfg1 = EngineConfig::sequential().with_max_reducer_inputs(1);
        assert!(run_schema(&inputs, &PairUp, &cfg1).is_err());
    }
}
