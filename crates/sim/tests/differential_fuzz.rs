//! The unified differential fuzz loop (ROADMAP item 1): random workloads
//! and budgets cross-check every execution path the crate offers —
//! columnar vs naive vs the retained delta pipelines — in one battery.
//!
//! The fixed adversarial fixtures (Zipf hubs, all-one-key, concurrent
//! offenders, hand-computed combiner accounting) stay in
//! `columnar_oracle.rs` / `shuffle_battery.rs`; this file owns all the
//! *randomised* cross-checks those suites used to duplicate per file,
//! plus the delta battery: `full_run(I ∪ ΔI) == apply(delta_run(ΔI),
//! retained)` byte-identically for random deltas (adds, removes, mixed,
//! empty, full-churn), every worker count 1–16, on both pipelines.

use mr_sim::naive::run_round_naive;
use mr_sim::{
    run_round, run_round_combined_on, run_round_on, run_schema, run_schema_retained, DagJob, Delta,
    EngineConfig, Executor, FnCombiner, FnMapper, FnReducer, Pipeline, RoundMetrics, SchemaJob,
    Seq,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

// -----------------------------------------------------------------
// Shared workload: order-sensitive keyed digests over (index, key).
// -----------------------------------------------------------------

/// Indexes a key sequence into `(position, key)` inputs.
fn indexed(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (i as u64, k))
        .collect()
}

/// One round with an order-sensitive reducer (rotate-xor value chaining),
/// so any within-key reordering or cross-key leakage between two paths
/// changes the output.
fn digest_round(
    pipeline: Pipeline,
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(
        |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
            emit((
                *k,
                vs.len() as u64,
                vs.iter().fold(0u64, |acc, v| acc.rotate_left(7) ^ v),
            ))
        },
    );
    run_round_on(pipeline, inputs, &mapper, &reducer, config).expect("no q bound set")
}

// -----------------------------------------------------------------
// Shared oblivious schema for the delta battery: input x lands on
// `reps` distinct reducers derived from x alone (§2.2 obliviousness),
// and each reducer emits an order-sensitive digest of its input list.
// -----------------------------------------------------------------

#[derive(Clone)]
struct ModFan {
    groups: u64,
    reps: u64,
}

impl SchemaJob<u64, (u64, u64, u64)> for ModFan {
    fn assign(&self, x: &u64) -> Vec<u64> {
        let set: BTreeSet<u64> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        set.into_iter().collect()
    }

    fn reduce(&self, r: u64, inputs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))) {
        emit((
            r,
            inputs.len() as u64,
            inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v),
        ))
    }
}

/// Applies `delta` to a retained `ModFan` job and asserts the retained
/// result equals a fresh full run of the live instance byte-identically —
/// outputs *and* semantic metrics — with the map-side prediction exact.
fn assert_delta_matches_full_run(
    name: &str,
    schema: &ModFan,
    base: &[u64],
    delta: &Delta<u64>,
    pipeline: Pipeline,
    config: &EngineConfig,
) {
    let mut job = run_schema_retained(base, schema.clone(), pipeline, config)
        .expect("unbudgeted retained init cannot fail");
    let predicted = job.predict(delta).expect("well-formed delta");
    let outcome = job.apply(delta).expect("unbudgeted apply cannot fail");
    let live = job.inputs();
    let (full_out, full_m) = run_schema(&live, schema, config).expect("no q bound set");
    assert_eq!(
        job.outputs(),
        full_out,
        "[{name}] retained outputs diverged from the full run ({}, workers={})",
        pipeline.name(),
        config.effective_workers()
    );
    assert_eq!(
        job.metrics(),
        full_m,
        "[{name}] retained metrics diverged from the full run ({})",
        pipeline.name()
    );
    assert_eq!(outcome.metrics.dirty_reducers, predicted.dirty_reducers);
    assert_eq!(outcome.metrics.delta_pairs, predicted.delta_pairs);
    assert_eq!(outcome.metrics.total_reducers, predicted.post_reducers);
    assert_eq!(job.metrics().load.max, predicted.post_q);
}

// -----------------------------------------------------------------
// The delta battery, exhaustive axes: every delta kind × every worker
// count 1–16 × both pipelines.
// -----------------------------------------------------------------

#[test]
fn delta_kinds_match_full_runs_at_every_worker_count() {
    let schema = ModFan {
        groups: 37,
        reps: 3,
    };
    let base: Vec<u64> = (0..200u64).map(|i| i * 13 + 7).collect();
    let kinds: Vec<(&str, Delta<u64>)> = vec![
        ("empty", Delta::empty()),
        ("adds", Delta::add((1_000..1_040).collect())),
        (
            "removes",
            Delta::remove((0..60).map(|i| i * 3 as Seq).collect()),
        ),
        (
            "mixed",
            Delta::new(
                (1_000..1_020).collect(),
                (0..40).map(|i| i * 5 as Seq).collect(),
            ),
        ),
        (
            "full-churn",
            Delta::new((2_000..2_200).collect(), (0..200 as Seq).collect()),
        ),
    ];
    for workers in 1..=16usize {
        let cfg = EngineConfig::parallel(workers);
        for pipeline in Pipeline::ALL {
            for (name, delta) in &kinds {
                assert_delta_matches_full_run(name, &schema, &base, delta, pipeline, &cfg);
            }
        }
    }
}

// -----------------------------------------------------------------
// Shared schema for the DAG topology fuzz: same fan shape as `ModFan`
// but closed over `u64` (DAG rounds feed outputs back in as inputs),
// with an order-sensitive digest folded into every emitted value.
// -----------------------------------------------------------------

#[derive(Clone, Copy)]
struct DigestFan {
    groups: u64,
    reps: u64,
}

impl SchemaJob<u64, u64> for DigestFan {
    fn assign(&self, x: &u64) -> Vec<u64> {
        let set: BTreeSet<u64> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        set.into_iter().collect()
    }

    fn reduce(&self, r: u64, inputs: &[u64], emit: &mut dyn FnMut(u64)) {
        let digest = inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v);
        emit(
            r.wrapping_mul(1_000_003)
                .wrapping_add(inputs.len() as u64)
                .wrapping_add(digest.rotate_left(17)),
        );
    }
}

/// Builds a random-topology [`DagJob`] over [`DigestFan`] rounds: node
/// `i`'s dependencies are the earlier nodes selected by the bits of
/// `masks[i]` (no bits set → a source node reading the external
/// inputs), and each node gets its own fan shape derived from `i`.
fn random_dag(masks: &[u64]) -> DagJob<u64> {
    let mut dag = DagJob::new();
    for (i, &mask) in masks.iter().enumerate() {
        let deps: Vec<usize> = (0..i).filter(|j| (mask >> j) & 1 == 1).collect();
        let schema = DigestFan {
            groups: 3 + (7 * i as u64) % 23,
            reps: 1 + (i as u64) % 3,
        };
        dag.add_schema_round(format!("n{i}"), deps, schema, Pipeline::Columnar);
    }
    dag
}

// -----------------------------------------------------------------
// Randomised cross-checks (the reusable fuzz loop).
// -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads: the columnar engine and the naive oracle are
    /// indistinguishable (outputs and semantic metrics) at any worker
    /// count — covering both "parallel == sequential" and
    /// "columnar == naive" in one loop.
    #[test]
    fn random_workloads_agree_across_planes_and_workers(
        keys in proptest::collection::vec(0u64..5_000, 0..600),
        workers in 1usize..17,
    ) {
        let inputs = indexed(&keys);
        let (truth_out, truth_m) =
            digest_round(Pipeline::Naive, &inputs, &EngineConfig::sequential());
        let cfg = EngineConfig::parallel(workers);
        for pipeline in Pipeline::ALL {
            let (out, m) = digest_round(pipeline, &inputs, &cfg);
            prop_assert_eq!(&truth_out, &out, "{} diverged", pipeline.name());
            prop_assert_eq!(&truth_m, &m, "{} metrics diverged", pipeline.name());
        }
    }

    /// Random budgets: the overflow verdict is identical across the
    /// planes — both succeed, or both fail with the same offender (the
    /// smallest over-budget key in key order), at any worker count.
    #[test]
    fn random_budget_verdicts_agree_across_planes(
        keys in proptest::collection::vec(0u64..40, 1..300),
        q in 1u64..12,
        workers in 1usize..17,
    ) {
        let inputs = indexed(&keys);
        let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
            emit(key, idx);
        });
        let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {});
        let cfg = EngineConfig::parallel(workers).with_max_reducer_inputs(q);
        let naive = run_round_naive(&inputs, &mapper, &reducer, &cfg);
        let col = run_round(&inputs, &mapper, &reducer, &cfg);
        match (naive, col) {
            (Ok((no, nm)), Ok((co, cm))) => {
                prop_assert_eq!(no, co);
                prop_assert_eq!(nm, cm);
            }
            (Err(ne), Err(ce)) => prop_assert_eq!(ne, ce),
            (n, c) => prop_assert!(
                false,
                "verdicts diverged: naive ok={} columnar ok={}",
                n.is_ok(),
                c.is_ok()
            ),
        }
    }

    /// Random deltas through both retained pipelines: arbitrary base,
    /// adds, and removal picks — the retained result must equal a fresh
    /// full run of the live instance byte-identically, with the
    /// prediction exact. Degenerate shapes (empty base, empty delta,
    /// full churn) fall out of the generators.
    #[test]
    fn random_deltas_match_full_runs(
        base in proptest::collection::vec(0u64..10_000, 0..120),
        adds in proptest::collection::vec(0u64..10_000, 0..40),
        rm_picks in proptest::collection::vec(0usize..120, 0..40),
        groups in 1u64..40,
        reps in 1u64..4,
        workers in 1usize..17,
    ) {
        let schema = ModFan { groups, reps };
        let removed: Vec<Seq> = if base.is_empty() {
            Vec::new()
        } else {
            let set: BTreeSet<Seq> =
                rm_picks.iter().map(|&p| (p % base.len()) as Seq).collect();
            set.into_iter().collect()
        };
        let delta = Delta::new(adds, removed);
        for executor in Executor::ALL {
            let cfg = EngineConfig::parallel(workers).with_executor(executor);
            for pipeline in Pipeline::ALL {
                assert_delta_matches_full_run("random", &schema, &base, &delta, pipeline, &cfg);
            }
        }
    }

    /// The pooled-vs-scoped arm: for random workloads at any worker
    /// count, the resident-pool substrate is indistinguishable from
    /// fresh scoped threads (outputs and semantic metrics) on both
    /// shuffle pipelines. The pool is the default; the scoped oracle is
    /// retained precisely for this cross-check.
    #[test]
    fn random_workloads_agree_across_executors(
        keys in proptest::collection::vec(0u64..5_000, 0..600),
        workers in 1usize..17,
    ) {
        let inputs = indexed(&keys);
        let truth = digest_round(
            Pipeline::Naive,
            &inputs,
            &EngineConfig::sequential().with_executor(Executor::Scoped),
        );
        for pipeline in Pipeline::ALL {
            for executor in Executor::ALL {
                let cfg = EngineConfig::parallel(workers).with_executor(executor);
                let got = digest_round(pipeline, &inputs, &cfg);
                prop_assert_eq!(
                    &truth,
                    &got,
                    "{}/{} diverged at workers={}",
                    pipeline.name(),
                    executor.name(),
                    workers
                );
            }
        }
    }

    /// The pooled-vs-scoped arm for budgets: the overflow verdict — both
    /// succeed, or both fail with the same smallest offender — is
    /// executor-independent at any worker count.
    #[test]
    fn random_budget_verdicts_agree_across_executors(
        keys in proptest::collection::vec(0u64..40, 1..300),
        q in 1u64..12,
        workers in 1usize..17,
    ) {
        let inputs = indexed(&keys);
        let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
            emit(key, idx);
        });
        let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {});
        let cfg = |e: Executor| {
            EngineConfig::parallel(workers)
                .with_max_reducer_inputs(q)
                .with_executor(e)
        };
        let scoped = run_round(&inputs, &mapper, &reducer, &cfg(Executor::Scoped));
        let pooled = run_round(&inputs, &mapper, &reducer, &cfg(Executor::Pool));
        match (scoped, pooled) {
            (Ok((so, sm)), Ok((po, pm))) => {
                prop_assert_eq!(so, po);
                prop_assert_eq!(sm, pm);
            }
            (Err(se), Err(pe)) => prop_assert_eq!(se, pe),
            (s, p) => prop_assert!(
                false,
                "verdicts diverged: scoped ok={} pooled ok={}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }

    /// Random DAG topologies: whatever shape the round graph takes —
    /// fan-out, diamonds, disconnected sources, linear chains, all fall
    /// out of the mask generator — a staged parallel execution is
    /// byte-identical to the sequential one in outputs *and* per-round
    /// metrics, at every worker count 1–16.
    #[test]
    fn random_dag_topologies_are_worker_count_independent(
        masks in proptest::collection::vec(0u64..32, 1..6),
        inputs in proptest::collection::vec(0u64..5_000, 0..200),
        workers in 1usize..17,
    ) {
        let dag = random_dag(&masks);
        let (truth_out, truth_m) = dag
            .run(
                &inputs,
                &EngineConfig::sequential().with_executor(Executor::Scoped),
            )
            .expect("no budget set");
        for executor in Executor::ALL {
            let cfg = EngineConfig::parallel(workers).with_executor(executor);
            let (out, m) = dag.run(&inputs, &cfg).expect("no budget set");
            prop_assert_eq!(
                &truth_out,
                &out,
                "outputs diverged on {} at workers={}",
                executor.name(),
                workers
            );
            prop_assert_eq!(
                &truth_m,
                &m,
                "metrics diverged on {} at workers={}",
                executor.name(),
                workers
            );
        }
    }

    /// The degenerate single-round DAG *is* `run_schema`: one schema
    /// node must reproduce its outputs and its round metrics
    /// field-for-field, at any worker count.
    #[test]
    fn single_round_dag_degenerates_to_run_schema(
        inputs in proptest::collection::vec(0u64..5_000, 0..300),
        groups in 1u64..40,
        reps in 1u64..4,
        workers in 1usize..17,
    ) {
        let schema = DigestFan { groups, reps };
        let cfg = EngineConfig::parallel(workers);
        let (flat_out, flat_m) = run_schema(&inputs, &schema, &cfg).expect("no budget set");
        let mut dag = DagJob::new();
        dag.add_schema_round("only", vec![], schema, Pipeline::Columnar);
        let (dag_out, dag_m) = dag.run(&inputs, &cfg).expect("no budget set");
        prop_assert_eq!(flat_out, dag_out);
        prop_assert_eq!(vec![flat_m], dag_m.rounds);
    }

    /// The recorder arm (invariant #12): random workloads run under
    /// `mr_obs::record` are byte-identical — outputs and semantic
    /// metrics — to the disabled run, on both pipelines at any worker
    /// count, and every collected trace is structurally well-formed.
    #[test]
    fn random_workloads_are_recorder_invariant(
        keys in proptest::collection::vec(0u64..5_000, 0..600),
        workers in 1usize..17,
    ) {
        let inputs = indexed(&keys);
        let cfg = EngineConfig::parallel(workers);
        for pipeline in Pipeline::ALL {
            let truth = digest_round(pipeline, &inputs, &cfg);
            let (recorded, trace) = mr_obs::record(|| digest_round(pipeline, &inputs, &cfg));
            prop_assert_eq!(
                &truth,
                &recorded,
                "recorder perturbed {} at workers={}",
                pipeline.name(),
                workers
            );
            prop_assert!(trace.check_well_formed().is_ok(), "malformed trace");
        }
    }

    /// Random budgets through the retained path: initialising a
    /// `DeltaJob` under a reducer budget gives exactly the full-run
    /// verdict — same success (and outputs), or same offender.
    #[test]
    fn random_budget_verdicts_agree_with_the_retained_path(
        base in proptest::collection::vec(0u64..200, 0..100),
        q in 1u64..10,
        groups in 1u64..20,
        workers in 1usize..17,
    ) {
        let schema = ModFan { groups, reps: 2 };
        let cfg = EngineConfig::parallel(workers).with_max_reducer_inputs(q);
        let full = run_schema(&base, &schema, &cfg);
        for pipeline in Pipeline::ALL {
            let retained = run_schema_retained(&base, schema.clone(), pipeline, &cfg);
            match (&full, retained) {
                (Ok((fo, fm)), Ok(job)) => {
                    prop_assert_eq!(fo, &job.outputs());
                    prop_assert_eq!(fm, &job.metrics());
                }
                (Err(fe), Err(re)) => {
                    prop_assert_eq!(&mr_sim::DeltaError::Engine(fe.clone()), &re)
                }
                (f, r) => prop_assert!(
                    false,
                    "verdicts diverged: full ok={} retained ok={}",
                    f.is_ok(),
                    r.is_ok()
                ),
            }
        }
    }
}

// -----------------------------------------------------------------
// pairs_hint regression: the hint is a pure performance knob, so
// under- and over-estimates (hint=0, hint ≫ pairs) must be invisible
// in outputs and semantic metrics. Only the exact-hint path was
// exercised before this test.
// -----------------------------------------------------------------

#[test]
fn pairs_hint_misestimates_are_byte_invisible() {
    let keys: Vec<u64> = (0..3_000u64).map(|i| (i * 31 + 5) % 700).collect();
    let inputs = indexed(&keys);
    let schema = ModFan {
        groups: 53,
        reps: 3,
    };
    let schema_inputs: Vec<u64> = (0..2_000u64).map(|i| i * 11 + 3).collect();
    for workers in [1usize, 3, 8, 16] {
        let base_cfg = EngineConfig::parallel(workers);
        // hint=0 / hint=1 under-estimate, ×100 grossly over-estimates.
        // (The hint sizes real allocations, so it is exercised at
        // plausible magnitudes, not at u64::MAX.)
        let exact_pairs = digest_round(Pipeline::Columnar, &inputs, &base_cfg)
            .1
            .kv_pairs;
        let hints = [0, 1, exact_pairs, exact_pairs * 100];

        // Raw round, both planes.
        for pipeline in Pipeline::ALL {
            let truth = digest_round(pipeline, &inputs, &base_cfg);
            for hint in hints {
                let got = digest_round(pipeline, &inputs, &base_cfg.clone().with_pairs_hint(hint));
                assert_eq!(
                    truth,
                    got,
                    "hint={hint} visible on {} at workers={workers}",
                    pipeline.name()
                );
            }
        }

        // Schema path.
        let truth = run_schema(&schema_inputs, &schema, &base_cfg).unwrap();
        for hint in hints {
            let got = run_schema(
                &schema_inputs,
                &schema,
                &base_cfg.clone().with_pairs_hint(hint),
            )
            .unwrap();
            assert_eq!(truth, got, "hint={hint} visible in run_schema");
        }

        // Combined path, both planes.
        let mapper = FnMapper(|k: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k % 97, 1));
        let combiner = FnCombiner(|_: &u64, acc: &mut u64, v: u64| *acc += v);
        let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
            emit((*k, vs.iter().sum()))
        });
        for pipeline in Pipeline::ALL {
            let (truth_out, truth_m) =
                run_round_combined_on(pipeline, &keys, &mapper, &combiner, &reducer, &base_cfg)
                    .unwrap();
            for hint in hints {
                let (out, m) = run_round_combined_on(
                    pipeline,
                    &keys,
                    &mapper,
                    &combiner,
                    &reducer,
                    &base_cfg.clone().with_pairs_hint(hint),
                )
                .unwrap();
                assert_eq!(truth_out, out, "hint={hint} visible in combined outputs");
                assert_eq!(
                    truth_m.round, m.round,
                    "hint={hint} visible in combined metrics"
                );
                assert_eq!(truth_m.pre_combine_pairs, m.pre_combine_pairs);
            }
        }
    }
}
