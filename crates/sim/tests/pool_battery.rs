//! Executor parity battery: the resident [`WorkerPool`] substrate against
//! the retained scoped-thread oracle.
//!
//! [`Executor::Scoped`] is the pre-pool fan-out (fresh `std::thread::scope`
//! threads per call), kept precisely so this suite can exist — the
//! substrate twin of `mr_sim::naive` pinning the columnar data plane. For
//! every execution surface the crate offers — raw rounds on both shuffle
//! pipelines, the combined path, retained deltas, staged DAG levels — the
//! pooled execution must produce byte-identical outputs, equal semantic
//! metrics, and the same overflow verdict (down to the reported offender
//! key) at every worker count 1–16. The battery also pins the worker-count
//! clamp contract through the pooled path: `workers: 0` and absurdly large
//! worker counts are behavioural no-ops.

use mr_sim::naive::run_round_combined_naive;
use mr_sim::{
    run_round_combined_on, run_round_on, run_schema, run_schema_retained, DagJob, Delta,
    EngineConfig, Executor, FnCombiner, FnMapper, FnReducer, Pipeline, RoundMetrics, SchemaJob,
    Seq, WorkerPool,
};
use std::collections::BTreeSet;

/// Worker counts the battery sweeps on every executor.
const WORKER_COUNTS: [usize; 6] = [1, 2, 3, 4, 8, 16];

/// Indexes a key sequence into `(position, key)` inputs.
fn indexed(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (i as u64, k))
        .collect()
}

/// A mixed-skew key workload: a few heavy hubs plus a long distinct tail,
/// so radix buckets fill unevenly and morsel sizes differ across workers.
fn mixed_keys() -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::new();
    for hot in 0..8u64 {
        keys.extend(std::iter::repeat_n(hot * 1_000_003 + 11, 300));
    }
    keys.extend((0..2_000u64).map(|x| x * 17 + 3));
    keys
}

/// One round with an order-sensitive reducer (rotate-xor value chaining),
/// so any within-key reordering or cross-key leakage between substrates
/// changes the output.
fn digest_round(
    pipeline: Pipeline,
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(
        |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
            emit((
                *k,
                vs.len() as u64,
                vs.iter().fold(0u64, |acc, v| acc.rotate_left(7) ^ v),
            ))
        },
    );
    run_round_on(pipeline, inputs, &mapper, &reducer, config).expect("no q bound set")
}

/// The shared oblivious schema (input `x` fans out to `reps` reducers
/// derived from `x` alone, each emitting an order-sensitive digest).
#[derive(Clone, Copy)]
struct DigestFan {
    groups: u64,
    reps: u64,
}

impl SchemaJob<u64, u64> for DigestFan {
    fn assign(&self, x: &u64) -> Vec<u64> {
        let set: BTreeSet<u64> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        set.into_iter().collect()
    }

    fn reduce(&self, r: u64, inputs: &[u64], emit: &mut dyn FnMut(u64)) {
        let digest = inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v);
        emit(
            r.wrapping_mul(1_000_003)
                .wrapping_add(inputs.len() as u64)
                .wrapping_add(digest.rotate_left(17)),
        );
    }
}

#[test]
fn raw_rounds_are_executor_independent_on_both_pipelines() {
    let inputs = indexed(&mixed_keys());
    let truth = digest_round(
        Pipeline::Naive,
        &inputs,
        &EngineConfig::sequential().with_executor(Executor::Scoped),
    );
    for pipeline in Pipeline::ALL {
        for executor in Executor::ALL {
            for workers in WORKER_COUNTS {
                let cfg = EngineConfig::parallel(workers).with_executor(executor);
                let got = digest_round(pipeline, &inputs, &cfg);
                assert_eq!(
                    truth,
                    got,
                    "{}/{} diverged at workers={workers}",
                    pipeline.name(),
                    executor.name()
                );
            }
        }
    }
}

#[test]
fn combined_rounds_keep_exact_accounting_on_the_pool() {
    // Combined accounting is worker-count *dependent* by contract (the
    // combiner is chunk-local, so the wire-pair count varies with the
    // chunking) but must be substrate-independent: at any matching worker
    // count, pooled, scoped, and the naive oracle agree on outputs,
    // pre-combine pairs, and the full post-combine RoundMetrics — the
    // chunk computation was left untouched, only the fan-out substrate
    // was swapped.
    let keys = mixed_keys();
    let mapper = FnMapper(|k: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k % 97, 1));
    let combiner = FnCombiner(|_: &u64, acc: &mut u64, v: u64| *acc += v);
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.iter().sum()))
    });
    for workers in WORKER_COUNTS {
        let truth = run_round_combined_naive(
            &keys,
            &mapper,
            &combiner,
            &reducer,
            &EngineConfig::parallel(workers).with_executor(Executor::Scoped),
        )
        .unwrap();
        for pipeline in Pipeline::ALL {
            for executor in Executor::ALL {
                let cfg = EngineConfig::parallel(workers).with_executor(executor);
                let (out, m) =
                    run_round_combined_on(pipeline, &keys, &mapper, &combiner, &reducer, &cfg)
                        .unwrap();
                assert_eq!(truth.0, out, "combined outputs diverged");
                assert_eq!(
                    truth.1.round,
                    m.round,
                    "combined metrics diverged on {}/{} at workers={workers}",
                    pipeline.name(),
                    executor.name()
                );
                assert_eq!(truth.1.pre_combine_pairs, m.pre_combine_pairs);
                assert_eq!(truth.1.pairs_saved(), m.pairs_saved());
            }
        }
    }
}

#[test]
fn overflow_offenders_are_executor_independent() {
    // Many concurrently over-budget keys: both substrates must report the
    // *same* offender — the smallest in key order — at every worker count.
    let mut keys: Vec<u64> = Vec::new();
    for hot in 0..64u64 {
        keys.extend(std::iter::repeat_n(hot * 1_000_003 + 11, 8));
    }
    keys.extend((0..500u64).map(|x| x * 17 + 3));
    let inputs = indexed(&keys);
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {
        panic!("reducer must not run on an over-budget round")
    });
    let cfg = |w: usize, e: Executor| {
        EngineConfig::parallel(w)
            .with_max_reducer_inputs(5)
            .with_executor(e)
    };
    let truth = run_round_on(
        Pipeline::Columnar,
        &inputs,
        &mapper,
        &reducer,
        &cfg(1, Executor::Scoped),
    )
    .unwrap_err();
    for pipeline in Pipeline::ALL {
        for executor in Executor::ALL {
            for workers in WORKER_COUNTS {
                let err = run_round_on(
                    pipeline,
                    &inputs,
                    &mapper,
                    &reducer,
                    &cfg(workers, executor),
                )
                .unwrap_err();
                assert_eq!(
                    truth,
                    err,
                    "offender diverged on {}/{} at workers={workers}",
                    pipeline.name(),
                    executor.name()
                );
            }
        }
    }
}

#[test]
fn retained_deltas_are_executor_independent() {
    // The full retained lifecycle — init, mixed churn, full-churn — must
    // be byte-identical across substrates: routing fan-outs and the dirty
    // re-reduce both ride the configured executor.
    let schema = DigestFan {
        groups: 37,
        reps: 3,
    };
    let base: Vec<u64> = (0..400u64).map(|i| i * 13 + 7).collect();
    let deltas: Vec<(&str, Delta<u64>)> = vec![
        ("empty", Delta::empty()),
        ("adds", Delta::add((10_000..10_080).collect())),
        (
            "mixed",
            Delta::new(
                (10_000..10_040).collect(),
                (0..80).map(|i| i * 5 as Seq).collect(),
            ),
        ),
        (
            "full-churn",
            Delta::new((20_000..20_400).collect(), (0..400 as Seq).collect()),
        ),
    ];
    // Scoped sequential ground truth per delta kind.
    for (name, delta) in &deltas {
        let truth_cfg = EngineConfig::sequential().with_executor(Executor::Scoped);
        let mut truth_job =
            run_schema_retained(&base, schema, Pipeline::Columnar, &truth_cfg).unwrap();
        truth_job.apply(delta).unwrap();
        let (truth_out, truth_m) = (truth_job.outputs(), truth_job.metrics());
        for pipeline in Pipeline::ALL {
            for executor in Executor::ALL {
                for workers in WORKER_COUNTS {
                    let cfg = EngineConfig::parallel(workers).with_executor(executor);
                    let mut job = run_schema_retained(&base, schema, pipeline, &cfg).unwrap();
                    job.apply(delta).unwrap();
                    assert_eq!(
                        truth_out,
                        job.outputs(),
                        "[{name}] delta outputs diverged on {}/{} at workers={workers}",
                        pipeline.name(),
                        executor.name()
                    );
                    assert_eq!(
                        truth_m,
                        job.metrics(),
                        "[{name}] delta metrics diverged on {}/{} at workers={workers}",
                        pipeline.name(),
                        executor.name()
                    );
                }
            }
        }
    }
}

/// A diamond-with-tail DAG over [`DigestFan`] rounds: two independent
/// sources (a real same-level fan-out for the staged executor), a join
/// node reading both, and a tail round — deep enough that pooled DAG
/// staging nests pool-backed rounds inside pool-backed level fan-outs.
fn diamond_dag() -> DagJob<u64> {
    let mut dag = DagJob::new();
    let a = dag.add_schema_round(
        "a",
        vec![],
        DigestFan {
            groups: 11,
            reps: 2,
        },
        Pipeline::Columnar,
    );
    let b = dag.add_schema_round(
        "b",
        vec![],
        DigestFan {
            groups: 17,
            reps: 3,
        },
        Pipeline::Naive,
    );
    let join = dag.add_schema_round(
        "join",
        vec![a, b],
        DigestFan {
            groups: 23,
            reps: 2,
        },
        Pipeline::Columnar,
    );
    dag.add_schema_round(
        "tail",
        vec![join],
        DigestFan { groups: 7, reps: 1 },
        Pipeline::Columnar,
    );
    dag
}

#[test]
fn dag_levels_are_executor_independent() {
    let dag = diamond_dag();
    let inputs: Vec<u64> = (0..600u64).map(|i| i * 31 + 5).collect();
    let truth = dag
        .run(
            &inputs,
            &EngineConfig::sequential().with_executor(Executor::Scoped),
        )
        .expect("no budget set");
    for executor in Executor::ALL {
        for workers in WORKER_COUNTS {
            let cfg = EngineConfig::parallel(workers).with_executor(executor);
            let got = dag.run(&inputs, &cfg).expect("no budget set");
            assert_eq!(
                truth.0,
                got.0,
                "DAG outputs diverged on {} at workers={workers}",
                executor.name()
            );
            assert_eq!(
                truth.1,
                got.1,
                "DAG metrics diverged on {} at workers={workers}",
                executor.name()
            );
        }
    }
}

#[test]
fn worker_count_clamps_identically_through_the_pool() {
    // Satellite regression: `workers: 0` (the degenerate sequential clamp)
    // and worker counts far above both the morsel count and the machine's
    // core count must be behavioural no-ops on the pooled path — same
    // outputs, same semantic metrics, no panic, no deadlock.
    let inputs = indexed(&mixed_keys());
    let schema = DigestFan {
        groups: 29,
        reps: 2,
    };
    let schema_inputs: Vec<u64> = (0..800u64).map(|i| i * 7 + 1).collect();
    let truth_cfg = EngineConfig::parallel(1).with_executor(Executor::Pool);
    let truth_round = digest_round(Pipeline::Columnar, &inputs, &truth_cfg);
    let truth_schema = run_schema(&schema_inputs, &schema, &truth_cfg).unwrap();
    for workers in [0usize, 1, 4_096, 1 << 20] {
        let cfg = EngineConfig::parallel(workers).with_executor(Executor::Pool);
        assert_eq!(cfg.effective_workers(), workers.max(1));
        let got = digest_round(Pipeline::Columnar, &inputs, &cfg);
        assert_eq!(truth_round, got, "clamp visible at workers={workers}");
        let got_schema = run_schema(&schema_inputs, &schema, &cfg).unwrap();
        assert_eq!(
            truth_schema, got_schema,
            "schema clamp visible at workers={workers}"
        );
    }
}

#[test]
fn the_global_pool_survives_the_whole_battery() {
    // After everything above has pushed thousands of batches through the
    // resident pool, it is still the same live singleton: workers parked,
    // nothing leaked, and a fresh batch still runs. (A pool that silently
    // lost workers would deadlock here, not just slow down.)
    let pool = WorkerPool::global();
    let doubled = pool.run(
        (0..64u64)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> u64 + Send>)
            .collect(),
    );
    assert_eq!(doubled, (0..64u64).map(|i| i * 2).collect::<Vec<_>>());
    assert!(pool.workers() >= 1);
}
