//! Property tests for the engine: determinism across worker counts,
//! combiner transparency for associative-commutative folds, and pipeline
//! metric identities.

use mr_sim::{run_round, run_round_combined, EngineConfig, FnCombiner, FnMapper, FnReducer, Job};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A sum-combiner never changes the reduce output, for any input set
    /// and worker count.
    #[test]
    fn combiner_is_transparent_for_sums(
        inputs in proptest::collection::vec((0u32..40, 1u64..100), 0..400),
        workers in 1usize..8,
    ) {
        let mapper = FnMapper(|&(k, v): &(u32, u64), emit: &mut dyn FnMut(u32, u64)| {
            emit(k, v)
        });
        let reducer = FnReducer(|k: &u32, vs: &[u64], emit: &mut dyn FnMut((u32, u64))| {
            emit((*k, vs.iter().sum()))
        });
        let combiner = FnCombiner(|_: &u32, acc: &mut u64, v: u64| *acc += v);
        let cfg = EngineConfig::parallel(workers);
        let (plain, pm) = run_round(&inputs, &mapper, &reducer, &cfg).unwrap();
        let (combined, cm) = run_round_combined(&inputs, &mapper, &combiner, &reducer, &cfg).unwrap();
        prop_assert_eq!(plain, combined);
        // Pre-combine pairs equal the uncombined communication.
        prop_assert_eq!(cm.pre_combine_pairs, pm.kv_pairs);
        // Combining cannot increase wire traffic.
        prop_assert!(cm.round.kv_pairs <= pm.kv_pairs);
    }

    /// Two-round pipelines are deterministic across worker counts and
    /// their metrics satisfy the round-communication identity.
    #[test]
    fn pipelines_deterministic_and_metrics_consistent(
        inputs in proptest::collection::vec(0u32..500, 1..300),
        buckets in 1u32..12,
        workers in 2usize..6,
    ) {
        let build = || -> Job<u32, (u32, u64)> {
            let b = buckets;
            Job::single(
                FnMapper(move |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % b, *x)),
                FnReducer(|k: &u32, vs: &[u32], emit: &mut dyn FnMut((u32, u64))| {
                    emit((*k, vs.iter().map(|&v| v as u64).sum()))
                }),
            )
            .then(
                FnMapper(|&(k, s): &(u32, u64), emit: &mut dyn FnMut(u32, u64)| {
                    emit(k % 2, s)
                }),
                FnReducer(|k: &u32, vs: &[u64], emit: &mut dyn FnMut((u32, u64))| {
                    emit((*k, vs.iter().sum()))
                }),
            )
        };
        let (o1, m1) = build().run(inputs.clone(), &EngineConfig::sequential()).unwrap();
        let (o2, m2) = build().run(inputs.clone(), &EngineConfig::parallel(workers)).unwrap();
        prop_assert_eq!(&o1, &o2);
        prop_assert_eq!(&m1, &m2);
        // Conservation: the grand sum survives both rounds.
        let grand: u64 = inputs.iter().map(|&v| v as u64).sum();
        let out_sum: u64 = o1.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(grand, out_sum);
        // Identity: round-2 inputs equal round-1 outputs.
        prop_assert_eq!(m1.rounds[0].outputs, m1.rounds[1].inputs);
    }

    /// The q budget is enforced exactly: runs succeed iff the true max
    /// load fits.
    #[test]
    fn q_budget_is_exact(
        inputs in proptest::collection::vec(0u32..50, 1..200),
        buckets in 1u32..10,
    ) {
        let mapper = FnMapper(move |x: &u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(x % buckets, *x)
        });
        let reducer = FnReducer(|_: &u32, _: &[u32], _: &mut dyn FnMut(u32)| {});
        // First measure the true max load without a budget.
        let (_, m) = run_round(&inputs, &mapper, &reducer, &EngineConfig::sequential()).unwrap();
        let max = m.load.max;
        let at = EngineConfig::sequential().with_max_reducer_inputs(max);
        prop_assert!(run_round(&inputs, &mapper, &reducer, &at).is_ok());
        if max > 0 {
            let below = EngineConfig::sequential().with_max_reducer_inputs(max - 1);
            prop_assert!(run_round(&inputs, &mapper, &reducer, &below).is_err());
        }
    }
}
