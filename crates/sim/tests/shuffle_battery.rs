//! Determinism and overflow battery for the hash-partitioned shuffle.
//!
//! The engine's contract is that the parallel shuffle is invisible: for
//! any key distribution and any worker count, outputs and metrics equal
//! the sequential run's. This suite drives that contract over the four
//! adversarial distributions (uniform, Zipf-skewed via `mr-graph`'s
//! Chung–Lu generator, all-one-key, all-distinct), concurrent
//! multi-partition overflows, and combiner accounting on a hand-computed
//! fixture; the *randomised* cross-checks (workloads, budgets, deltas)
//! live in the unified `differential_fuzz.rs` battery.

use mr_sim::{
    run_round, run_round_combined, EngineConfig, EngineError, FnCombiner, FnMapper, FnReducer,
    RoundMetrics,
};
use proptest::test_runner::TestRng;

/// Worker counts the battery sweeps, per the shuffle acceptance criteria.
const WORKER_COUNTS: [usize; 5] = [1, 2, 3, 8, 16];

/// Runs one round over `(index, key)` inputs with an order-sensitive
/// reducer, so any within-key reordering or cross-key leakage between the
/// sequential and partitioned shuffles changes the output.
fn keyed_round(
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    // Order-sensitive fold: rotate-xor chains the values, so swapping two
    // values within a key changes the digest.
    let reducer = FnReducer(
        |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
            emit((
                *k,
                vs.len() as u64,
                vs.iter().fold(0u64, |acc, v| acc.rotate_left(7) ^ v),
            ))
        },
    );
    run_round(inputs, &mapper, &reducer, config).expect("no q bound set")
}

/// Indexes a key sequence into `(position, key)` inputs.
fn indexed(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (i as u64, k))
        .collect()
}

fn assert_battery_case(name: &str, keys: &[u64]) {
    let inputs = indexed(keys);
    let (seq_out, seq_m) = keyed_round(&inputs, &EngineConfig::sequential());
    for workers in WORKER_COUNTS {
        let (out, m) = keyed_round(&inputs, &EngineConfig::parallel(workers));
        assert_eq!(
            seq_out, out,
            "[{name}] outputs diverged at workers={workers}"
        );
        assert_eq!(seq_m, m, "[{name}] metrics diverged at workers={workers}");
    }
}

#[test]
fn uniform_keys_shuffle_identically() {
    let mut rng = TestRng::deterministic("shuffle-battery-uniform");
    let keys: Vec<u64> = (0..6_000).map(|_| rng.below(1_024)).collect();
    assert_battery_case("uniform", &keys);
}

#[test]
fn zipf_skewed_keys_shuffle_identically() {
    // Chung–Lu power-law graph: node i carries weight ∝ (i+1)^(-1/(γ-1)),
    // so low-numbered hub nodes appear on far more edges than the tail.
    // Using every edge endpoint as a key yields the Zipf-like skew of the
    // paper's §1.4 discussion — a few very heavy keys, a long thin tail.
    let g = mr_graph::gen::power_law(400, 2.2, 40.0, 7);
    let keys: Vec<u64> = g
        .edges()
        .iter()
        .flat_map(|e| [u64::from(e.u), u64::from(e.v)])
        .collect();
    assert!(keys.len() > 300, "degenerate power-law instance");
    // Sanity: the distribution is actually skewed (hubs dominate).
    let (_, m) = keyed_round(&indexed(&keys), &EngineConfig::sequential());
    assert!(
        m.load.skew() > 3.0,
        "expected a heavy hub, got {}",
        m.load.skew()
    );
    assert_battery_case("zipf", &keys);
}

#[test]
fn all_one_key_shuffles_identically() {
    let keys = vec![17u64; 4_000];
    assert_battery_case("all-one-key", &keys);
}

#[test]
fn all_distinct_keys_shuffle_identically() {
    // Reversed so input order and key order disagree — a shuffle that
    // leaked arrival order into key order would be caught here.
    let keys: Vec<u64> = (0..4_000u64).rev().collect();
    assert_battery_case("all-distinct", &keys);
}

#[test]
fn concurrent_overflows_report_the_sequential_offender() {
    // 64 hot keys scattered across the key space, each receiving 8 values
    // — with up to 16 partitions, many partitions contain an over-budget
    // key simultaneously. The parallel path must still report exactly the
    // offender the sequential in-key-order scan finds: the smallest one.
    let mut keys: Vec<u64> = Vec::new();
    for hot in 0..64u64 {
        keys.extend(std::iter::repeat_n(hot * 1_000_003 + 11, 8));
    }
    // A thin tail of distinct keys so partitions also hold innocent keys.
    keys.extend((0..500u64).map(|x| x * 17 + 3));
    let inputs = indexed(&keys);
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {
        panic!("reducer must not run on an over-budget round")
    });
    let cfg = |w: usize| EngineConfig::parallel(w).with_max_reducer_inputs(5);
    let seq_err = run_round(&inputs, &mapper, &reducer, &cfg(1)).unwrap_err();
    // The smallest over-budget key in key order is hot key 11 (hot = 0).
    let EngineError::ReducerOverflow { key, load, limit } = &seq_err;
    assert_eq!(key, "11");
    assert_eq!(*load, 8);
    assert_eq!(*limit, 5);
    for workers in [2usize, 3, 8, 16] {
        let par_err = run_round(&inputs, &mapper, &reducer, &cfg(workers)).unwrap_err();
        assert_eq!(seq_err, par_err, "offender diverged at workers={workers}");
    }
}

#[test]
fn combiner_accounting_is_exact_under_partitioning() {
    // Hand-computed fixture: 8 identical documents "a b". The mapper
    // emits (word, 1), the combiner sums, the reducer sums.
    //
    //   pre-combine pairs  = 8 docs × 2 words = 16, for EVERY worker count
    //   post-combine pairs = (#map chunks) × 2 distinct words, because
    //     each worker sends one combined value per key it saw:
    //       workers=1 → 1 chunk  → 2      workers=3 → 3 chunks → 6
    //       workers=2 → 2 chunks → 4      workers=4 → 4 chunks → 8
    //       workers=8 → 8 chunks → 16     workers=16 → clamped to 8 chunks
    //   outputs           = a:8, b:8 regardless of workers, and their sum
    //     equals the pre-combine total (each pre-combine pair is a 1).
    let docs: Vec<&str> = vec!["a b"; 8];
    let mapper = FnMapper(|doc: &&str, emit: &mut dyn FnMut(String, u64)| {
        for w in doc.split_whitespace() {
            emit(w.to_string(), 1);
        }
    });
    let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);
    let reducer = FnReducer(
        |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        },
    );
    for (workers, expected_wire) in [(1u64, 2u64), (2, 4), (3, 6), (4, 8), (8, 16), (16, 16)] {
        let cfg = EngineConfig::parallel(workers as usize);
        let (out, m) = run_round_combined(&docs, &mapper, &combiner, &reducer, &cfg).unwrap();
        assert_eq!(
            m.pre_combine_pairs, 16,
            "pre-combine pairs must not depend on workers={workers}"
        );
        assert_eq!(
            m.round.kv_pairs, expected_wire,
            "wire pairs at workers={workers}"
        );
        assert_eq!(m.pairs_saved(), 16 - expected_wire);
        assert_eq!(
            out,
            vec![("a".to_string(), 8), ("b".to_string(), 8)],
            "combined outputs must be invariant at workers={workers}"
        );
        // Value conservation: combining redistributes the 16 unit pairs
        // without losing any.
        let total: u64 = out.iter().map(|(_, n)| n).sum();
        assert_eq!(total, m.pre_combine_pairs);
    }
}

#[test]
fn combined_path_matches_across_worker_counts_on_skewed_keys() {
    // The combiner path's partitioned shuffle must also be invisible:
    // same outputs for every worker count, pre-combine pairs invariant.
    let g = mr_graph::gen::power_law(400, 2.2, 40.0, 13);
    let inputs: Vec<u64> = g
        .edges()
        .iter()
        .flat_map(|e| [u64::from(e.u), u64::from(e.v)])
        .collect();
    let mapper = FnMapper(|k: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k, 1));
    let combiner = FnCombiner(|_: &u64, acc: &mut u64, v: u64| *acc += v);
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.iter().sum()))
    });
    let (seq_out, seq_m) = run_round_combined(
        &inputs,
        &mapper,
        &combiner,
        &reducer,
        &EngineConfig::sequential(),
    )
    .unwrap();
    for workers in WORKER_COUNTS {
        let (out, m) = run_round_combined(
            &inputs,
            &mapper,
            &combiner,
            &reducer,
            &EngineConfig::parallel(workers),
        )
        .unwrap();
        assert_eq!(seq_out, out, "outputs diverged at workers={workers}");
        assert_eq!(
            seq_m.pre_combine_pairs, m.pre_combine_pairs,
            "pre-combine accounting diverged at workers={workers}"
        );
        assert_eq!(seq_m.round.reducers, m.round.reducers);
        assert_eq!(seq_m.round.outputs, m.round.outputs);
    }
}
