//! Oracle battery: the columnar radix-partitioned data plane against the
//! retained naive `BTreeMap` pipeline.
//!
//! [`mr_sim::naive`] is the pre-columnar shuffle, kept precisely so this
//! suite can exist: for any workload and any worker count, the columnar
//! engine must produce byte-identical outputs, equal semantic metrics,
//! the same overflow verdict (down to the reported offender key), and the
//! same combiner accounting. The battery drives that equivalence over the
//! four adversarial key distributions (uniform, Zipf-skewed via
//! `mr-graph`'s Chung–Lu generator, all-one-key, all-distinct) and the
//! concurrent-offender and combiner fixtures; the *randomised*
//! cross-checks (workloads, budgets, deltas) live in the unified
//! `differential_fuzz.rs` battery.

use mr_sim::naive::{run_round_combined_naive, run_round_naive};
use mr_sim::{
    run_round, run_round_combined, EngineConfig, FnCombiner, FnMapper, FnReducer, RoundMetrics,
};
use proptest::test_runner::TestRng;

/// Worker counts the battery sweeps on both paths.
const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs one round through the columnar engine with an order-sensitive
/// reducer (rotate-xor value chaining), so any within-key reordering or
/// cross-key leakage relative to the oracle changes the output.
fn columnar_round(
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let (mapper, reducer) = (digest_mapper(), digest_reducer());
    run_round(inputs, &mapper, &reducer, config).expect("no q bound set")
}

/// The same round through the naive `BTreeMap` oracle.
fn naive_round(
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let (mapper, reducer) = (digest_mapper(), digest_reducer());
    run_round_naive(inputs, &mapper, &reducer, config).expect("no q bound set")
}

type DigestMapper = FnMapper<fn(&(u64, u64), &mut dyn FnMut(u64, u64))>;
type DigestReducer = FnReducer<fn(&u64, &[u64], &mut dyn FnMut((u64, u64, u64)))>;

fn digest_mapper() -> DigestMapper {
    FnMapper(|&(idx, key), emit| emit(key, idx))
}

fn digest_reducer() -> DigestReducer {
    FnReducer(|k, vs, emit| {
        emit((
            *k,
            vs.len() as u64,
            vs.iter().fold(0u64, |acc, v| acc.rotate_left(7) ^ v),
        ))
    })
}

/// Indexes a key sequence into `(position, key)` inputs.
fn indexed(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (i as u64, k))
        .collect()
}

/// The core assertion: the columnar engine is indistinguishable from the
/// naive oracle at every worker count — on both engines' own worker
/// sweeps, pinned to the naive sequential run as ground truth.
fn assert_oracle_case(name: &str, keys: &[u64]) {
    let inputs = indexed(keys);
    let (oracle_out, oracle_m) = naive_round(&inputs, &EngineConfig::sequential());
    for workers in WORKER_COUNTS {
        let cfg = EngineConfig::parallel(workers);
        let (col_out, col_m) = columnar_round(&inputs, &cfg);
        assert_eq!(
            oracle_out, col_out,
            "[{name}] columnar outputs diverged from the oracle at workers={workers}"
        );
        assert_eq!(
            oracle_m, col_m,
            "[{name}] columnar metrics diverged from the oracle at workers={workers}"
        );
        // The oracle itself is worker-count independent too — the two
        // pipelines must agree at *matching* worker counts, not just
        // against the sequential baseline.
        let (naive_out, naive_m) = naive_round(&inputs, &cfg);
        assert_eq!(oracle_out, naive_out, "[{name}] oracle drifted");
        assert_eq!(oracle_m, naive_m, "[{name}] oracle metrics drifted");
    }
}

#[test]
fn uniform_keys_match_the_oracle() {
    let mut rng = TestRng::deterministic("columnar-oracle-uniform");
    let keys: Vec<u64> = (0..6_000).map(|_| rng.below(1_024)).collect();
    assert_oracle_case("uniform", &keys);
}

#[test]
fn zipf_skewed_keys_match_the_oracle() {
    // Chung–Lu power-law edge endpoints: a few heavy hub keys and a long
    // thin tail — the §1.4 skew regime, where the columnar path's radix
    // buckets fill very unevenly.
    let g = mr_graph::gen::power_law(400, 2.2, 40.0, 7);
    let keys: Vec<u64> = g
        .edges()
        .iter()
        .flat_map(|e| [u64::from(e.u), u64::from(e.v)])
        .collect();
    assert!(keys.len() > 300, "degenerate power-law instance");
    assert_oracle_case("zipf", &keys);
}

#[test]
fn one_key_workloads_match_the_oracle() {
    // Every pair in one group: a single radix bucket carries everything
    // and the open-addressing table holds exactly one entry.
    let keys = vec![17u64; 4_000];
    assert_oracle_case("one-key", &keys);
}

#[test]
fn all_distinct_keys_match_the_oracle() {
    // Reversed so arrival order and key order disagree; every group has
    // exactly one value, maximising directory-sort work.
    let keys: Vec<u64> = (0..4_000u64).rev().collect();
    assert_oracle_case("all-distinct", &keys);
}

#[test]
fn full_64_bit_keys_match_the_oracle() {
    // Keys spanning the whole u64 range (including u64::MAX) exercise the
    // fingerprint path far from the small-integer regime of the other
    // cases.
    let mut rng = TestRng::deterministic("columnar-oracle-wide");
    let mut keys: Vec<u64> = (0..3_000).map(|_| rng.next_u64()).collect();
    keys.push(u64::MAX);
    keys.push(0);
    assert_oracle_case("wide", &keys);
}

#[test]
fn overflow_offender_parity_on_scattered_hot_keys() {
    // 64 hot keys spread across the key space so, at 16 workers, many
    // partitions hold an over-budget key at once. Both pipelines must
    // report the *same* offender — the smallest in key order — and they
    // must agree at every worker count.
    let mut keys: Vec<u64> = Vec::new();
    for hot in 0..64u64 {
        keys.extend(std::iter::repeat_n(hot * 1_000_003 + 11, 8));
    }
    keys.extend((0..500u64).map(|x| x * 17 + 3));
    let inputs = indexed(&keys);
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(|_: &u64, _: &[u64], _: &mut dyn FnMut(u64)| {
        panic!("reducer must not run on an over-budget round")
    });
    let cfg = |w: usize| EngineConfig::parallel(w).with_max_reducer_inputs(5);
    let oracle_err = run_round_naive(&inputs, &mapper, &reducer, &cfg(1)).unwrap_err();
    for workers in WORKER_COUNTS {
        let col_err = run_round(&inputs, &mapper, &reducer, &cfg(workers)).unwrap_err();
        assert_eq!(
            oracle_err, col_err,
            "offender diverged at workers={workers}"
        );
        let naive_err = run_round_naive(&inputs, &mapper, &reducer, &cfg(workers)).unwrap_err();
        assert_eq!(oracle_err, naive_err, "oracle offender drifted");
    }
}

#[test]
fn combiner_accounting_matches_the_oracle() {
    // The combined paths chunk inputs identically, so not just outputs
    // and pre-combine pairs but the post-combine wire pairs (and with
    // them the full semantic RoundMetrics) must agree at every worker
    // count.
    let g = mr_graph::gen::power_law(400, 2.2, 40.0, 13);
    let inputs: Vec<u64> = g
        .edges()
        .iter()
        .flat_map(|e| [u64::from(e.u), u64::from(e.v)])
        .collect();
    let mapper = FnMapper(|k: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k, 1));
    let combiner = FnCombiner(|_: &u64, acc: &mut u64, v: u64| *acc += v);
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.iter().sum()))
    });
    for workers in WORKER_COUNTS {
        let cfg = EngineConfig::parallel(workers);
        let (naive_out, naive_m) =
            run_round_combined_naive(&inputs, &mapper, &combiner, &reducer, &cfg).unwrap();
        let (col_out, col_m) =
            run_round_combined(&inputs, &mapper, &combiner, &reducer, &cfg).unwrap();
        assert_eq!(naive_out, col_out, "outputs diverged at workers={workers}");
        assert_eq!(
            naive_m.pre_combine_pairs, col_m.pre_combine_pairs,
            "pre-combine accounting diverged at workers={workers}"
        );
        assert_eq!(
            naive_m.round, col_m.round,
            "post-combine round metrics diverged at workers={workers}"
        );
        assert_eq!(naive_m.pairs_saved(), col_m.pairs_saved());
    }
}
