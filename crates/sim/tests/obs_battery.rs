//! Observability battery (invariant #12): enabling the mr-obs recorder
//! never perturbs semantics. For every execution surface — raw rounds on
//! both shuffle pipelines, the schema path, retained deltas, staged DAG
//! levels — outputs and semantic metrics under `mr_obs::record` are
//! byte-identical to the disabled run, on every executor at every worker
//! count 1–16. The battery also pins the trace's own structural
//! contract: collected traces are well-formed (spans closed, nested or
//! disjoint per lane) and name the engine phases and pool events the
//! instrumentation promises.

use mr_sim::{
    run_round_on, run_schema, run_schema_retained, DagJob, Delta, EngineConfig, Executor, FnMapper,
    FnReducer, Pipeline, RoundMetrics, SchemaJob,
};
use std::collections::BTreeSet;

/// Worker counts the battery sweeps on every executor.
const WORKER_COUNTS: [usize; 6] = [1, 2, 3, 4, 8, 16];

/// Indexes a key sequence into `(position, key)` inputs.
fn indexed(keys: &[u64]) -> Vec<(u64, u64)> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (i as u64, k))
        .collect()
}

/// A mixed-skew key workload (heavy hubs plus a distinct tail).
fn mixed_keys() -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::new();
    for hot in 0..8u64 {
        keys.extend(std::iter::repeat_n(hot * 1_000_003 + 11, 120));
    }
    keys.extend((0..1_200u64).map(|x| x * 17 + 3));
    keys
}

/// One round with an order-sensitive reducer, so any perturbation the
/// recorder could introduce (reordering, cross-key leakage) shows up.
fn digest_round(
    pipeline: Pipeline,
    inputs: &[(u64, u64)],
    config: &EngineConfig,
) -> (Vec<(u64, u64, u64)>, RoundMetrics) {
    let mapper = FnMapper(|&(idx, key): &(u64, u64), emit: &mut dyn FnMut(u64, u64)| {
        emit(key, idx);
    });
    let reducer = FnReducer(
        |k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))| {
            emit((
                *k,
                vs.len() as u64,
                vs.iter().fold(0u64, |acc, v| acc.rotate_left(7) ^ v),
            ))
        },
    );
    run_round_on(pipeline, inputs, &mapper, &reducer, config).expect("no q bound set")
}

/// The shared oblivious schema with an order-sensitive digest reducer.
#[derive(Clone, Copy)]
struct DigestFan {
    groups: u64,
    reps: u64,
}

impl SchemaJob<u64, u64> for DigestFan {
    fn assign(&self, x: &u64) -> Vec<u64> {
        let set: BTreeSet<u64> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        set.into_iter().collect()
    }

    fn reduce(&self, r: u64, inputs: &[u64], emit: &mut dyn FnMut(u64)) {
        let digest = inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v);
        emit(
            r.wrapping_mul(1_000_003)
                .wrapping_add(inputs.len() as u64)
                .wrapping_add(digest.rotate_left(17)),
        );
    }
}

#[test]
fn rounds_and_schemas_are_recorder_invariant_at_every_worker_count() {
    let inputs = indexed(&mixed_keys());
    let schema_inputs: Vec<u64> = (0..1_500u64).map(|i| i * 11 + 3).collect();
    let schema = DigestFan {
        groups: 53,
        reps: 3,
    };
    for executor in Executor::ALL {
        for workers in WORKER_COUNTS {
            let cfg = EngineConfig::parallel(workers).with_executor(executor);
            for pipeline in Pipeline::ALL {
                let truth = digest_round(pipeline, &inputs, &cfg);
                let (recorded, trace) = mr_obs::record(|| digest_round(pipeline, &inputs, &cfg));
                assert_eq!(
                    truth,
                    recorded,
                    "recorder perturbed {}/{} at workers={workers}",
                    pipeline.name(),
                    executor.name()
                );
                trace.check_well_formed().expect("trace well-formed");
            }
            let truth = run_schema(&schema_inputs, &schema, &cfg).expect("no budget set");
            let (recorded, trace) =
                mr_obs::record(|| run_schema(&schema_inputs, &schema, &cfg).expect("no budget"));
            assert_eq!(
                truth,
                recorded,
                "recorder perturbed run_schema on {} at workers={workers}",
                executor.name()
            );
            trace.check_well_formed().expect("trace well-formed");
        }
    }
}

#[test]
fn delta_applies_are_recorder_invariant() {
    let schema = DigestFan {
        groups: 37,
        reps: 3,
    };
    let base: Vec<u64> = (0..400u64).map(|i| i * 13 + 7).collect();
    let delta = Delta::new(
        (10_000..10_040).collect(),
        (0..60).map(|i| i * 3 as mr_sim::Seq).collect(),
    );
    for workers in WORKER_COUNTS {
        let cfg = EngineConfig::parallel(workers);
        for pipeline in Pipeline::ALL {
            let churn = || {
                let mut job = run_schema_retained(&base, schema, pipeline, &cfg)
                    .expect("unbudgeted init cannot fail");
                let outcome = job.apply(&delta).expect("unbudgeted apply cannot fail");
                let m = outcome.metrics;
                // Semantic fields only: the outcome's wall-clock varies.
                (
                    job.outputs(),
                    job.metrics(),
                    m.dirty_reducers,
                    m.delta_pairs,
                    m.total_reducers,
                )
            };
            let truth = churn();
            let (recorded, trace) = mr_obs::record(churn);
            assert_eq!(
                truth,
                recorded,
                "recorder perturbed the delta path on {} at workers={workers}",
                pipeline.name()
            );
            trace.check_well_formed().expect("trace well-formed");
            assert!(trace.span_count("delta.apply") >= 1);
            assert!(trace.span_count("delta.routing") >= 1);
            assert!(trace.span_count("delta.rereduce") >= 1);
        }
    }
}

#[test]
fn dag_runs_are_recorder_invariant_and_name_their_levels() {
    let inputs: Vec<u64> = (0..800u64).map(|i| i * 7 + 1).collect();
    let mut dag = DagJob::new();
    dag.add_schema_round(
        "src",
        vec![],
        DigestFan {
            groups: 23,
            reps: 2,
        },
        Pipeline::Columnar,
    );
    dag.add_schema_round(
        "sink",
        vec![0],
        DigestFan {
            groups: 11,
            reps: 1,
        },
        Pipeline::Columnar,
    );
    for workers in WORKER_COUNTS {
        let cfg = EngineConfig::parallel(workers);
        let truth = dag.run(&inputs, &cfg).expect("no budget set");
        let (recorded, trace) = mr_obs::record(|| dag.run(&inputs, &cfg).expect("no budget set"));
        assert_eq!(
            truth, recorded,
            "recorder perturbed the DAG at workers={workers}"
        );
        trace.check_well_formed().expect("trace well-formed");
        assert_eq!(trace.span_count("dag.run"), 1);
        assert_eq!(trace.span_count("dag.level.0"), 1);
        assert_eq!(trace.span_count("dag.level.1"), 1);
        assert_eq!(trace.span_count("dag.node.src"), 1);
        assert_eq!(trace.span_count("dag.node.sink"), 1);
    }
}

#[test]
fn recorded_traces_name_the_engine_phases_and_pool_events() {
    let schema_inputs: Vec<u64> = (0..4_000u64).map(|i| i * 11 + 3).collect();
    let schema = DigestFan {
        groups: 97,
        reps: 3,
    };
    let cfg = EngineConfig::parallel(4).with_executor(Executor::Pool);
    let (_, trace) =
        mr_obs::record(|| run_schema(&schema_inputs, &schema, &cfg).expect("no budget set"));
    trace.check_well_formed().expect("trace well-formed");
    for name in [
        "engine.round",
        "engine.map",
        "engine.shuffle",
        "engine.group.partition",
        "engine.reduce",
        "pool.task",
        "pool.queue_wait",
    ] {
        assert!(
            trace.span_count(name) >= 1,
            "span {name} missing from the pooled trace; aggregate: {:?}",
            trace.aggregate().keys().collect::<Vec<_>>()
        );
    }
    // The engine counters fed the global hub during the run.
    assert!(mr_obs::global().counter_value("engine.rounds") >= 1);
    assert!(mr_obs::global().counter_value("engine.kv_pairs") >= 1);
    assert!(mr_obs::global().counter_value("pool.tasks") >= 1);
}

#[test]
fn disabled_mode_records_nothing() {
    // Outside a session the instrumented paths must leave no trace: a
    // later empty session sees an empty event set.
    let inputs = indexed(&mixed_keys());
    let _ = digest_round(Pipeline::Columnar, &inputs, &EngineConfig::parallel(4));
    let ((), trace) = mr_obs::record(|| {});
    // Concurrent tests in this binary may be recording their own work
    // during our session window, so only assert nothing *from before*
    // the session leaked in: every event must start within the session.
    trace.check_well_formed().expect("trace well-formed");
}
