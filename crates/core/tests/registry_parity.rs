//! Schema/engine parity battery for the family registry.
//!
//! On a *complete* model instance, exhaustive schema validation
//! ([`mr_core::model::validate_schema`] — counting assignments over every
//! potential input) and an actual engine round
//! ([`mr_sim::run_schema_dyn`] under [`mr_core::family::DynFamily::run`])
//! must agree exactly: the same replication rate `Σ qᵢ / |I|` and the
//! same maximum reducer load. This pins the §2.3 "all inputs present"
//! assumption through the registry's type-erased path for **every**
//! family at once — any family whose erased closures dropped, duplicated,
//! or rerouted an assignment would split the two numbers apart.

use mr_core::family::{registry_at, sparse_scenarios, Scale};
use mr_sim::EngineConfig;

#[test]
fn validation_and_engine_agree_for_every_family_at_small_scale() {
    for fam in registry_at(Scale::Small) {
        let grid = fam.grid();
        assert!(!grid.is_empty(), "{}: empty grid", fam.name());
        for (pi, gp) in grid.iter().enumerate() {
            let report = fam
                .validate(pi)
                .unwrap_or_else(|| panic!("{}: complete family must validate", fam.name()));
            assert!(
                report.is_valid(),
                "{} / {}: invalid schema {report:?}",
                fam.name(),
                gp.schema
            );
            let run = fam.run(pi, &EngineConfig::sequential());
            assert_eq!(
                report.max_load,
                run.measured.q,
                "{} / {}: validated max load differs from engine-measured q",
                fam.name(),
                gp.schema
            );
            assert!(
                (report.replication_rate - run.measured.r).abs() < 1e-12,
                "{} / {}: validated r={} vs engine r={}",
                fam.name(),
                gp.schema,
                report.replication_rate,
                run.measured.r
            );
            // The §2.2 coverage condition showed up in is_valid(); the
            // engine side must also have emitted every output exactly
            // once, so the counts agree too.
            assert_eq!(
                report.num_outputs,
                run.measured.outputs,
                "{} / {}: engine outputs differ from the model's |O|",
                fam.name(),
                gp.schema
            );
        }
    }
}

#[test]
fn parity_holds_across_engine_worker_counts() {
    // The erased path rides the engine's determinism contract: the same
    // numbers at any worker count. One family per instance type suffices
    // here (the full cross-product lives in the engine's own batteries).
    for fam in registry_at(Scale::Small) {
        let baseline = fam.run(0, &EngineConfig::sequential());
        for workers in [2usize, 4] {
            let par = fam.run(0, &EngineConfig::parallel(workers));
            assert_eq!(baseline.measured, par.measured, "{}", fam.name());
        }
    }
}

#[test]
fn sparse_scenarios_have_no_exhaustive_validation() {
    // Sparse instances measure one data graph, not the model's potential
    // inputs; exhaustive validation would be a category error and the
    // registry must refuse it rather than validate the wrong thing.
    for fam in sparse_scenarios(Scale::Small) {
        for pi in 0..fam.grid().len() {
            assert!(fam.validate(pi).is_none(), "{} point {pi}", fam.name());
        }
    }
}
