#![warn(missing_docs)]

//! The paper's contribution: a model of single-round map-reduce problems,
//! the generic lower-bound recipe, and matching constructive algorithms.
//!
//! *Upper and Lower Bounds on the Cost of a Map-Reduce Computation*
//! (Afrati, Das Sarma, Salihoglu, Ullman; VLDB 2013) models a problem as a
//! finite set of potential **inputs**, a finite set of potential
//! **outputs**, and a mapping from each output to the set of inputs it
//! depends on (§2). A **mapping schema** assigns inputs to reducers so that
//! no reducer exceeds `q` inputs and every output is *covered* by some
//! reducer holding all of its inputs (§2.2). The figure of merit is the
//! **replication rate** `r = Σᵢ qᵢ / |I|`.
//!
//! Crate layout:
//!
//! * [`model`] — the `Problem` and
//!   `MappingSchema` traits, exhaustive schema
//!   validation, and exact replication-rate accounting;
//! * [`recipe`] — the four-step lower-bound recipe of §2.4 plus an
//!   empirical `g(q)` prober used to validate each problem's claimed bound
//!   on small instances;
//! * [`cost`] — the §1.2 cluster cost model `a·r + b·q (+ c·q²)` and
//!   frontier minimisation;
//! * [`frontier`] — measured `(q, r)` tradeoff curves built by sweeping
//!   every implemented algorithm, ready for cost minimisation;
//! * [`family`] — the type-erased problem-family registry: every family
//!   behind one `DynFamily` interface (grids, scale presets, sparse
//!   scenarios), so executors iterate families without naming their
//!   input/output types;
//! * [`problems`] — one module per problem family analysed in the paper:
//!   Hamming distance (§3), triangles (§4), general sample graphs (§5.1–5.3),
//!   2-paths (§5.4), multiway joins (§5.5), matrix multiplication (§6), and
//!   the illustrative model examples of §2.1.

pub mod cost;
pub mod family;
pub mod frontier;
pub mod model;
pub mod problems;
pub mod recipe;

pub use family::{registry, AssignCensus, DynFamily, FamilyPoint, GridPoint, Scale};
pub use model::{validate_schema, MappingSchema, Problem, SchemaReport};
pub use recipe::LowerBoundRecipe;
