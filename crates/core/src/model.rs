//! The input/output model and mapping schemas (§2).
//!
//! A [`Problem`] is a finite family of potential inputs and outputs with a
//! dependency map from each output to the inputs it needs. A
//! [`MappingSchema`] assigns every potential input to a set of reducers.
//! [`validate_schema`] checks the two §2.2 conditions exhaustively —
//! (1) no reducer receives more than `q` inputs, (2) every output is
//! covered — and computes the exact replication rate `Σ qᵢ / |I|`.
//!
//! Validation enumerates all potential inputs and outputs, which is
//! exactly what the paper's lower-bound analysis assumes (§2.3: bounds are
//! computed "pretend\[ing\] that we have an instance of the problem where
//! all inputs over the given domain are present").

use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;

/// Identifier of a reducer in a mapping schema.
pub type ReducerId = u64;

/// A problem in the §2 model.
///
/// Implementations enumerate the *potential* inputs and outputs — every
/// input that could occur in an instance, not the inputs of one instance.
pub trait Problem {
    /// One potential input (e.g. a bit string, a graph edge, a matrix
    /// entry).
    type Input: Clone + Ord + Debug;
    /// One potential output (e.g. a close pair, a triangle, an output
    /// matrix cell).
    type Output: Clone + Ord + Debug;

    /// Enumerates every potential input.
    fn inputs(&self) -> Vec<Self::Input>;

    /// Enumerates every potential output.
    fn outputs(&self) -> Vec<Self::Output>;

    /// The set of inputs that `output` depends on.
    fn inputs_of(&self, output: &Self::Output) -> Vec<Self::Input>;

    /// `|I|`, the number of potential inputs.
    fn num_inputs(&self) -> u64 {
        self.inputs().len() as u64
    }

    /// `|O|`, the number of potential outputs.
    fn num_outputs(&self) -> u64 {
        self.outputs().len() as u64
    }
}

/// A mapping schema for some problem: the assignment of inputs to reducers
/// (§2.2). The schema must be *oblivious*: `assign` sees one input at a
/// time, mirroring the independence of mappers (§2.3).
pub trait MappingSchema<P: Problem> {
    /// The reducers that `input` is sent to.
    fn assign(&self, input: &P::Input) -> Vec<ReducerId>;

    /// The reducer-size bound `q` this schema is designed for (the maximum
    /// number of *potential* inputs any reducer may receive).
    fn max_inputs_per_reducer(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

/// The result of exhaustively validating a schema against a problem.
#[derive(Debug, Clone)]
pub struct SchemaReport {
    /// Number of potential inputs `|I|`.
    pub num_inputs: u64,
    /// Number of potential outputs `|O|`.
    pub num_outputs: u64,
    /// Number of distinct reducers that received at least one input.
    pub num_reducers: u64,
    /// Total input assignments `Σ qᵢ`.
    pub total_assignments: u64,
    /// Largest reducer load (the schema's *achieved* `q`).
    pub max_load: u64,
    /// Exact replication rate `Σ qᵢ / |I|`.
    pub replication_rate: f64,
    /// Outputs not covered by any reducer (empty for a valid schema).
    pub uncovered_outputs: u64,
    /// True when the declared `q` bound holds for every reducer.
    pub q_respected: bool,
}

impl SchemaReport {
    /// True when the schema satisfies both §2.2 conditions.
    pub fn is_valid(&self) -> bool {
        self.uncovered_outputs == 0 && self.q_respected
    }
}

/// Exhaustively validates `schema` against `problem`.
///
/// Enumerates every potential input to compute reducer loads, then checks
/// every potential output for coverage: some reducer must be assigned all
/// of the output's inputs.
pub fn validate_schema<P, S>(problem: &P, schema: &S) -> SchemaReport
where
    P: Problem,
    S: MappingSchema<P>,
{
    let inputs = problem.inputs();
    let mut loads: HashMap<ReducerId, u64> = HashMap::new();
    // Cache each input's reducer set for the coverage pass.
    let mut assignment: BTreeMap<P::Input, Vec<ReducerId>> = BTreeMap::new();
    let mut total_assignments = 0u64;
    for input in &inputs {
        let mut rs = schema.assign(input);
        rs.sort_unstable();
        rs.dedup();
        total_assignments += rs.len() as u64;
        for &r in &rs {
            *loads.entry(r).or_insert(0) += 1;
        }
        assignment.insert(input.clone(), rs);
    }

    let q = schema.max_inputs_per_reducer();
    let max_load = loads.values().copied().max().unwrap_or(0);
    let q_respected = max_load <= q;

    // Coverage: intersect the reducer sets of the output's inputs.
    let outputs = problem.outputs();
    let mut uncovered = 0u64;
    for output in &outputs {
        let deps = problem.inputs_of(output);
        debug_assert!(!deps.is_empty(), "outputs must depend on some input");
        let mut iter = deps.iter();
        let first = iter.next().expect("non-empty dependency set");
        let mut common: Vec<ReducerId> = assignment
            .get(first)
            .unwrap_or_else(|| panic!("inputs_of returned unknown input {first:?}"))
            .clone();
        for dep in iter {
            let rs = assignment
                .get(dep)
                .unwrap_or_else(|| panic!("inputs_of returned unknown input {dep:?}"));
            common.retain(|r| rs.binary_search(r).is_ok());
            if common.is_empty() {
                break;
            }
        }
        if common.is_empty() {
            uncovered += 1;
        }
    }

    SchemaReport {
        num_inputs: inputs.len() as u64,
        num_outputs: outputs.len() as u64,
        num_reducers: loads.len() as u64,
        total_assignments,
        max_load,
        replication_rate: total_assignments as f64 / inputs.len() as f64,
        uncovered_outputs: uncovered,
        q_respected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny test problem: inputs 0..n, outputs are adjacent pairs (i, i+1).
    struct AdjacentPairs {
        n: u32,
    }

    impl Problem for AdjacentPairs {
        type Input = u32;
        type Output = (u32, u32);

        fn inputs(&self) -> Vec<u32> {
            (0..self.n).collect()
        }
        fn outputs(&self) -> Vec<(u32, u32)> {
            (0..self.n - 1).map(|i| (i, i + 1)).collect()
        }
        fn inputs_of(&self, o: &(u32, u32)) -> Vec<u32> {
            vec![o.0, o.1]
        }
    }

    /// Overlapping blocks of size 2: input i goes to reducers i and i-1, so
    /// every adjacent pair shares reducer min(i, j).
    struct OverlappingBlocks;

    impl MappingSchema<AdjacentPairs> for OverlappingBlocks {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            let i = *input as u64;
            if i == 0 {
                vec![0]
            } else {
                vec![i - 1, i]
            }
        }
        fn max_inputs_per_reducer(&self) -> u64 {
            2
        }
    }

    #[test]
    fn valid_schema_passes() {
        let p = AdjacentPairs { n: 10 };
        let report = validate_schema(&p, &OverlappingBlocks);
        assert!(report.is_valid(), "{report:?}");
        assert_eq!(report.num_inputs, 10);
        assert_eq!(report.num_outputs, 9);
        assert_eq!(report.max_load, 2);
        // Input 0 assigned once, inputs 1..9 twice: 1 + 18 = 19.
        assert_eq!(report.total_assignments, 19);
        assert!((report.replication_rate - 1.9).abs() < 1e-12);
    }

    /// A schema that forgets to co-locate pairs: each input to its own
    /// reducer.
    struct Isolating;

    impl MappingSchema<AdjacentPairs> for Isolating {
        fn assign(&self, input: &u32) -> Vec<ReducerId> {
            vec![*input as u64]
        }
        fn max_inputs_per_reducer(&self) -> u64 {
            1
        }
    }

    #[test]
    fn uncovered_outputs_detected() {
        let p = AdjacentPairs { n: 5 };
        let report = validate_schema(&p, &Isolating);
        assert!(!report.is_valid());
        assert_eq!(report.uncovered_outputs, 4); // all pairs uncovered
        assert!(report.q_respected);
    }

    /// A schema that overflows its declared budget.
    struct Monolithic;

    impl MappingSchema<AdjacentPairs> for Monolithic {
        fn assign(&self, _input: &u32) -> Vec<ReducerId> {
            vec![0]
        }
        fn max_inputs_per_reducer(&self) -> u64 {
            3 // but all n inputs land on reducer 0
        }
    }

    #[test]
    fn q_violation_detected() {
        let p = AdjacentPairs { n: 5 };
        let report = validate_schema(&p, &Monolithic);
        assert!(!report.is_valid());
        assert!(!report.q_respected);
        assert_eq!(report.max_load, 5);
        assert_eq!(report.uncovered_outputs, 0); // coverage is fine
    }

    #[test]
    fn duplicate_assignments_are_deduped() {
        struct Dup;
        impl MappingSchema<AdjacentPairs> for Dup {
            fn assign(&self, input: &u32) -> Vec<ReducerId> {
                let i = *input as u64;
                if i == 0 {
                    vec![0, 0, 0]
                } else {
                    vec![i, i - 1, i]
                }
            }
            fn max_inputs_per_reducer(&self) -> u64 {
                2
            }
        }
        let p = AdjacentPairs { n: 4 };
        let report = validate_schema(&p, &Dup);
        assert!(report.is_valid());
        assert_eq!(report.total_assignments, 7); // 1 + 2 + 2 + 2
    }
}
