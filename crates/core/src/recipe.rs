//! The generic lower-bound recipe (§2.4).
//!
//! The paper derives every lower bound in four steps:
//!
//! 1. find `g(q)`, an upper bound on the number of outputs a reducer with
//!    `q` inputs can cover;
//! 2. count the total inputs `|I|` and outputs `|O|`;
//! 3. observe `Σᵢ g(qᵢ) ≥ |O|`;
//! 4. provided `g(q)/q` is monotonically increasing in `q`, conclude
//!    `r ≥ q·|O| / (g(q)·|I|)`.
//!
//! [`LowerBoundRecipe`] packages the three ingredients and evaluates step
//! 4; [`max_outputs_covered`] exhaustively probes the true `g(q)` on small
//! problem instances so tests can confirm the claimed `g` dominates
//! reality.

use crate::model::Problem;
use std::collections::BTreeMap;

/// The three inputs of the §2.4 recipe, with `g` supplied as a closure.
///
/// ```
/// use mr_core::LowerBoundRecipe;
/// // Hamming distance 1 on b-bit strings (Theorem 3.2): g = (q/2)·log₂q,
/// // |I| = 2^b, |O| = (b/2)·2^b gives r ≥ b / log₂ q.
/// let b = 12.0_f64;
/// let recipe = LowerBoundRecipe::new(
///     |q| q / 2.0 * q.log2(),
///     b.exp2(),
///     b / 2.0 * b.exp2(),
/// );
/// let bound = recipe.replication_lower_bound(16.0); // q = 2^4
/// assert!((bound - b / 4.0).abs() < 1e-9);
/// ```
pub struct LowerBoundRecipe {
    /// `g(q)`: upper bound on outputs covered by a reducer with `q` inputs.
    g: Box<dyn Fn(f64) -> f64 + Sync>,
    /// `|I|`.
    pub num_inputs: f64,
    /// `|O|`.
    pub num_outputs: f64,
}

impl LowerBoundRecipe {
    /// Builds a recipe from `g(q)`, `|I|`, and `|O|`.
    pub fn new(g: impl Fn(f64) -> f64 + Sync + 'static, num_inputs: f64, num_outputs: f64) -> Self {
        LowerBoundRecipe {
            g: Box::new(g),
            num_inputs,
            num_outputs,
        }
    }

    /// Evaluates `g(q)`.
    pub fn g(&self, q: f64) -> f64 {
        (self.g)(q)
    }

    /// Step 4: the lower bound `r ≥ q·|O| / (g(q)·|I|)`.
    ///
    /// Returns at least 1.0 when clamped: a replication rate below 1 is
    /// meaningless (§5.4.1 replaces the bound by the trivial `r ≥ 1`).
    pub fn replication_lower_bound(&self, q: f64) -> f64 {
        q * self.num_outputs / (self.g(q) * self.num_inputs)
    }

    /// The §5.4.1-style clamped bound `max(1, q·|O|/(g(q)·|I|))`.
    pub fn clamped_lower_bound(&self, q: f64) -> f64 {
        self.replication_lower_bound(q).max(1.0)
    }

    /// Checks that `g(q)/q` is monotonically non-decreasing over the given
    /// sample points — the precondition for step 4's manipulation.
    pub fn g_over_q_monotone(&self, qs: &[f64]) -> bool {
        let ratios: Vec<f64> = qs.iter().map(|&q| self.g(q) / q).collect();
        ratios.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    }
}

/// Exhaustively computes the true `g(q)` of a problem instance: the maximum
/// number of outputs covered by any `q`-subset of inputs.
///
/// Complexity is `C(|I|, q)` times the coverage check, so this is strictly
/// a test/validation tool for small instances.
///
/// # Panics
/// Panics if `C(|I|, q)` exceeds ~20 million subsets — a guard against
/// accidental exponential blow-up in tests.
pub fn max_outputs_covered<P: Problem>(problem: &P, q: usize) -> u64 {
    let inputs = problem.inputs();
    let n = inputs.len();
    assert!(q <= n, "q={q} exceeds the number of inputs {n}");
    let combos = binomial(n as u64, q as u64);
    assert!(
        combos <= 20_000_000,
        "C({n},{q}) = {combos} subsets is too many for exhaustive probing"
    );

    // Index inputs for set-membership checks.
    let index: BTreeMap<&P::Input, usize> =
        inputs.iter().enumerate().map(|(i, x)| (x, i)).collect();
    // Precompute each output's dependency indices.
    let outputs = problem.outputs();
    let deps: Vec<Vec<usize>> = outputs
        .iter()
        .map(|o| {
            problem
                .inputs_of(o)
                .iter()
                .map(|inp| *index.get(inp).expect("inputs_of returned unknown input"))
                .collect()
        })
        .collect();

    let mut best = 0u64;
    let mut subset: Vec<usize> = (0..q).collect();
    let mut member = vec![false; n];
    loop {
        for m in member.iter_mut() {
            *m = false;
        }
        for &i in &subset {
            member[i] = true;
        }
        let covered = deps.iter().filter(|d| d.iter().all(|&i| member[i])).count() as u64;
        best = best.max(covered);

        // Next combination in lexicographic order.
        let mut i = q;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if subset[i] != i + n - q {
                break;
            }
            if i == 0 {
                return best;
            }
        }
        subset[i] += 1;
        for j in (i + 1)..q {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

/// Binomial coefficient with saturation (used for guardrails and closed
/// forms).
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Problem;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn recipe_evaluates_bound() {
        // Hamming-distance-1 shape: g(q) = (q/2)·log2 q, |I| = 2^b,
        // |O| = (b/2)·2^b. Bound must be b / log2 q.
        let b = 12.0f64;
        let recipe = LowerBoundRecipe::new(
            |q| q / 2.0 * q.log2(),
            (2.0f64).powf(b),
            b / 2.0 * (2.0f64).powf(b),
        );
        for log_q in [2.0, 3.0, 4.0, 6.0] {
            let q = (2.0f64).powf(log_q);
            let bound = recipe.replication_lower_bound(q);
            assert!(
                (bound - b / log_q).abs() < 1e-9,
                "q=2^{log_q}: got {bound}, want {}",
                b / log_q
            );
        }
    }

    #[test]
    fn clamping_applies_for_weak_bounds() {
        // 2-path shape where the bound dips below 1 for large q (§5.4.1).
        let n = 10.0f64;
        let recipe = LowerBoundRecipe::new(|q| q * q / 2.0, n * n / 2.0, n * n * n / 2.0);
        assert!(recipe.replication_lower_bound(4.0 * n) < 1.0);
        assert_eq!(recipe.clamped_lower_bound(4.0 * n), 1.0);
        assert!(recipe.clamped_lower_bound(2.0) > 1.0);
    }

    #[test]
    fn monotonicity_check() {
        let ok = LowerBoundRecipe::new(|q| q * q, 1.0, 1.0);
        assert!(ok.g_over_q_monotone(&[1.0, 2.0, 4.0, 100.0]));
        let bad = LowerBoundRecipe::new(|q| q.sqrt(), 1.0, 1.0);
        assert!(!bad.g_over_q_monotone(&[1.0, 4.0, 16.0]));
    }

    /// A triangle-ish toy problem for the prober: inputs are the 6 edges of
    /// K_4, outputs its 4 triangles.
    struct K4Triangles;

    impl Problem for K4Triangles {
        type Input = (u32, u32);
        type Output = (u32, u32, u32);

        fn inputs(&self) -> Vec<(u32, u32)> {
            let mut v = Vec::new();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    v.push((i, j));
                }
            }
            v
        }
        fn outputs(&self) -> Vec<(u32, u32, u32)> {
            vec![(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]
        }
        fn inputs_of(&self, o: &(u32, u32, u32)) -> Vec<(u32, u32)> {
            vec![(o.0, o.1), (o.0, o.2), (o.1, o.2)]
        }
    }

    #[test]
    fn prober_finds_true_g() {
        let p = K4Triangles;
        // 3 edges cover at most 1 triangle.
        assert_eq!(max_outputs_covered(&p, 3), 1);
        // 5 edges cover at most 2 triangles (K_4 minus an edge).
        assert_eq!(max_outputs_covered(&p, 5), 2);
        // All 6 edges cover all 4 triangles.
        assert_eq!(max_outputs_covered(&p, 6), 4);
        // 2 edges cover nothing.
        assert_eq!(max_outputs_covered(&p, 2), 0);
    }

    #[test]
    fn prober_respects_triangle_g_bound() {
        // §4.1: g(q) = (√2/3)·q^{3/2}; the true maxima must not exceed it
        // (allowing for the k(k-1)(k-2)/6 discretisation at tiny q).
        let p = K4Triangles;
        for q in 3..=6usize {
            let actual = max_outputs_covered(&p, q) as f64;
            let k = (2.0 * q as f64).sqrt();
            let exact_bound = k * (k + 1.0) * (k + 2.0) / 6.0; // generous
            assert!(
                actual <= exact_bound,
                "q={q}: covered {actual} > bound {exact_bound}"
            );
        }
    }
}
