//! Measured tradeoff frontiers: the `r = f(q)` curves of §1.2.
//!
//! §1.2 assumes "we have determined that the best algorithms for a problem
//! have replication rate r and reducer size q, where r = f(q)". This
//! module *constructs* those curves by validating every algorithm the
//! library implements at a sweep of parameters, returning the achieved
//! `(q, r)` points ready for [`CostModel`](crate::cost::CostModel)
//! minimisation.

use crate::model::validate_schema;
use crate::problems::hamming::{HammingProblem, SplittingSchema, WeightSchema2D};
use crate::problems::matmul::{MatMulProblem, OnePhaseSchema};
use crate::problems::triangle::{NodePartitionSchema, TriangleProblem};
use crate::problems::two_path::{BucketPairSchema, PerNodeSchema, TwoPathProblem};
use mr_sim::RoundMetrics;

/// One achieved point on a tradeoff frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Human-readable algorithm identifier.
    pub algorithm: String,
    /// Achieved maximum reducer load.
    pub q: u64,
    /// Achieved replication rate (exact, from exhaustive validation).
    pub r: f64,
}

/// One point of an *executed* frontier: the engine-measured counterpart of
/// [`FrontierPoint`].
///
/// Analytic frontiers ([`hamming_frontier`] and friends) come from
/// exhaustive schema validation over the space of potential inputs; a
/// `MeasuredPoint` records what one actual
/// [`run_schema`](mr_sim::run_schema) round of the same schema achieved on
/// instance data — the quantities the frontier-sweep subsystem in
/// `mr-bench` compares against the §2.4 lower-bound recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Human-readable algorithm identifier.
    pub algorithm: String,
    /// Measured maximum reducer load (the run's effective `q`).
    pub q: u64,
    /// Measured replication rate `(shuffled pairs) / (inputs)`.
    pub r: f64,
    /// Reducer-load skew `max / mean` (1.0 when perfectly balanced).
    pub load_skew: f64,
    /// Outputs the round emitted.
    pub outputs: u64,
}

impl MeasuredPoint {
    /// Extracts the measured point of one engine round.
    pub fn from_round(algorithm: impl Into<String>, metrics: &RoundMetrics) -> Self {
        MeasuredPoint {
            algorithm: algorithm.into(),
            q: metrics.load.max,
            r: metrics.replication_rate(),
            load_skew: metrics.load.skew(),
            outputs: metrics.outputs,
        }
    }

    /// Projects to the `(q, r)` [`FrontierPoint`] shape used by
    /// [`pareto`] and [`as_cost_points`].
    pub fn to_frontier_point(&self) -> FrontierPoint {
        FrontierPoint {
            algorithm: self.algorithm.clone(),
            q: self.q,
            r: self.r,
        }
    }
}

/// The gap ratio `measured r / analytic lower bound` — 1.0 when the
/// algorithm sits exactly on the bound, larger when it over-replicates.
///
/// Every valid schema satisfies `gap ≥ 1` (up to floating-point noise) on
/// the complete instance; the sweep asserts exactly that.
///
/// # Panics
/// Panics if `bound` is not positive (a clamped §2.4 bound is always
/// ≥ 1).
pub fn bound_gap(r: f64, bound: f64) -> f64 {
    assert!(bound > 0.0, "lower bound must be positive, got {bound}");
    r / bound
}

/// Sorts points by `q` ascending and drops dominated points (those with
/// both larger `q` and larger-or-equal `r` than another point).
pub fn pareto(mut points: Vec<FrontierPoint>) -> Vec<FrontierPoint> {
    points.sort_by(|a, b| a.q.cmp(&b.q).then(a.r.partial_cmp(&b.r).expect("no NaN")));
    let mut kept: Vec<FrontierPoint> = Vec::new();
    let mut best_r = f64::INFINITY;
    for p in points {
        if p.r < best_r - 1e-12 {
            best_r = p.r;
            kept.push(p);
        }
    }
    kept
}

/// The Hamming-distance-1 frontier for `b`-bit strings: all Splitting
/// divisors plus the §3.4 weight-partition points.
///
/// Exhaustive validation caps `b` at 16 in practice; panics above 20.
pub fn hamming_frontier(b: u32) -> Vec<FrontierPoint> {
    assert!(b <= 20, "frontier validation is exhaustive; keep b <= 20");
    let problem = HammingProblem::distance_one(b);
    let mut points = Vec::new();
    for c in (1..=b).filter(|c| b.is_multiple_of(*c)) {
        let s = SplittingSchema::new(b, c);
        let rep = validate_schema(&problem, &s);
        debug_assert!(rep.is_valid());
        points.push(FrontierPoint {
            algorithm: format!("splitting(c={c})"),
            q: rep.max_load,
            r: rep.replication_rate,
        });
    }
    if b.is_multiple_of(2) {
        let half = b / 2;
        for k in (1..=half).filter(|k| half.is_multiple_of(*k) && half / k >= 2) {
            let s = WeightSchema2D::new(b, k);
            let rep = validate_schema(&problem, &s);
            debug_assert!(rep.is_valid());
            points.push(FrontierPoint {
                algorithm: format!("weight-2d(k={k})"),
                q: rep.max_load,
                r: rep.replication_rate,
            });
        }
    }
    pareto(points)
}

/// The triangle frontier on `n` nodes across group counts.
pub fn triangle_frontier(n: u32, ks: &[u32]) -> Vec<FrontierPoint> {
    let problem = TriangleProblem::new(n);
    let points = ks
        .iter()
        .map(|&k| {
            let s = NodePartitionSchema::new(n, k);
            let rep = validate_schema(&problem, &s);
            debug_assert!(rep.is_valid());
            FrontierPoint {
                algorithm: format!("node-partition(k={k})"),
                q: rep.max_load,
                r: rep.replication_rate,
            }
        })
        .collect();
    pareto(points)
}

/// The 2-path frontier on `n` nodes: per-node plus bucket-pair sweeps.
pub fn two_path_frontier(n: u32, ks: &[u32]) -> Vec<FrontierPoint> {
    let problem = TwoPathProblem::new(n);
    let mut points = Vec::new();
    {
        let s = PerNodeSchema { n };
        let rep = validate_schema(&problem, &s);
        points.push(FrontierPoint {
            algorithm: "per-node".into(),
            q: rep.max_load,
            r: rep.replication_rate,
        });
    }
    for &k in ks.iter().filter(|&&k| k >= 2) {
        let s = BucketPairSchema::new(n, k);
        let rep = validate_schema(&problem, &s);
        debug_assert!(rep.is_valid());
        points.push(FrontierPoint {
            algorithm: format!("bucket-pair(k={k})"),
            q: rep.max_load,
            r: rep.replication_rate,
        });
    }
    pareto(points)
}

/// The matrix-multiplication frontier for `n×n` one-phase tiling across
/// divisor group sizes.
pub fn matmul_frontier(n: u32) -> Vec<FrontierPoint> {
    let problem = MatMulProblem::new(n);
    let points = (1..=n)
        .filter(|s| n.is_multiple_of(*s))
        .map(|s| {
            let schema = OnePhaseSchema::new(n, s);
            let rep = validate_schema(&problem, &schema);
            debug_assert!(rep.is_valid());
            FrontierPoint {
                algorithm: format!("one-phase(s={s})"),
                q: rep.max_load,
                r: rep.replication_rate,
            }
        })
        .collect();
    pareto(points)
}

/// Converts a frontier to the `(q, r)` pairs the cost model consumes.
pub fn as_cost_points(frontier: &[FrontierPoint]) -> Vec<(f64, f64)> {
    frontier.iter().map(|p| (p.q as f64, p.r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn pareto_drops_dominated_points() {
        let pts = vec![
            FrontierPoint {
                algorithm: "a".into(),
                q: 10,
                r: 5.0,
            },
            FrontierPoint {
                algorithm: "b".into(),
                q: 20,
                r: 6.0,
            }, // dominated
            FrontierPoint {
                algorithm: "c".into(),
                q: 30,
                r: 2.0,
            },
        ];
        let kept = pareto(pts);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].algorithm, "a");
        assert_eq!(kept[1].algorithm, "c");
    }

    #[test]
    fn frontiers_are_monotone() {
        // On a Pareto frontier r strictly decreases as q grows.
        for frontier in [
            hamming_frontier(12),
            triangle_frontier(20, &[1, 2, 3, 4, 5]),
            two_path_frontier(24, &[2, 3, 4, 6]),
            matmul_frontier(12),
        ] {
            assert!(frontier.len() >= 2, "{frontier:?}");
            for w in frontier.windows(2) {
                assert!(w[1].q > w[0].q, "{frontier:?}");
                assert!(w[1].r < w[0].r, "{frontier:?}");
            }
        }
    }

    #[test]
    fn hamming_frontier_contains_weight_points() {
        // The §3.4 algorithm contributes non-dominated points between
        // log2 q = b/2 and b.
        let f = hamming_frontier(12);
        assert!(
            f.iter().any(|p| p.algorithm.starts_with("weight-2d")),
            "{f:?}"
        );
    }

    #[test]
    fn measured_point_extracts_round_quantities() {
        use crate::problems::triangle::NodePartitionSchema;
        use mr_graph::Graph;
        use mr_sim::{run_schema, EngineConfig};
        let g = Graph::complete(12);
        let s = NodePartitionSchema::new(12, 3);
        let (_, m) = run_schema(g.edges(), &s, &EngineConfig::sequential()).unwrap();
        let p = MeasuredPoint::from_round("node-partition(k=3)", &m);
        assert_eq!(p.q, m.load.max);
        assert!((p.r - m.replication_rate()).abs() < 1e-12);
        assert!(p.load_skew >= 1.0);
        assert_eq!(p.outputs, m.outputs);
        // On the complete instance the engine measures exactly what
        // exhaustive validation computes.
        let report = validate_schema(&TriangleProblem::new(12), &s);
        assert_eq!(p.q, report.max_load);
        assert!((p.r - report.replication_rate).abs() < 1e-12);
        // And the projection keeps (q, r).
        let fp = p.to_frontier_point();
        assert_eq!((fp.q, fp.r), (p.q, p.r));
    }

    #[test]
    fn bound_gap_ratios() {
        assert!((bound_gap(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((bound_gap(3.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bound_gap_rejects_nonpositive_bound() {
        bound_gap(1.0, 0.0);
    }

    #[test]
    fn cost_model_integration() {
        let f = matmul_frontier(12);
        let pts = as_cost_points(&f);
        // Communication-dominated cost picks the largest-q point (r = 1).
        let comm = CostModel::linear(1e6, 1e-6);
        let (q, r, _) = comm.cheapest_point(&pts).unwrap();
        assert_eq!(r, 1.0);
        assert_eq!(q, 2.0 * 144.0);
        // Compute-dominated cost picks the smallest-q point.
        let cpu = CostModel::linear(1e-6, 1e6);
        let (q2, _, _) = cpu.cheapest_point(&pts).unwrap();
        assert_eq!(q2, f[0].q as f64);
    }
}
