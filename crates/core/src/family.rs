//! The type-erased problem-family registry.
//!
//! The paper's thesis is that **one model** — potential inputs/outputs, a
//! mapping schema, the §2.4 recipe — covers every family it analyses,
//! from Hamming distance to Shares joins. This module makes the
//! *execution* side match: every family is a [`DynFamily`] — a name, an
//! instance description, a grid of [`GridPoint`]s (declared budget,
//! schema name, lower-bound recipe), and a type-erased
//! [`run`](DynFamily::run) entry that executes one grid point through the
//! engine. [`registry`] returns all implemented families as boxed trait
//! objects, so consumers (the frontier sweep, the `repro` driver, the
//! test batteries) iterate families without ever naming a concrete input
//! or output type.
//!
//! The erasure itself lives **below** this layer, in
//! [`mr_sim::DynSchema`]: each family's typed
//! [`SchemaJob`] is erased to index-based closures and
//! executed with [`mr_sim::run_schema_dyn`], whose metrics are provably
//! identical to the typed path's. This module only decides *which*
//! schema runs on *which* instance.
//!
//! # Scales and scenarios
//!
//! Each family exposes three [`Scale`] presets. [`Scale::Default`] is the
//! grid the `repro frontier` experiment and its byte-identical-output
//! tests pin down; [`Scale::Small`] keeps exhaustive validation cheap
//! (the validation-vs-engine parity tests run here); [`Scale::Full`]
//! stretches the instances for benchmarking. Beyond the six
//! complete-instance families, [`sparse_scenarios`] adds the §4.2/§5.3
//! edge-budget variants: seeded `G(n, m)` random data graphs where the
//! recipe's `|I|` and `|O|` are the *instance's* edge and occurrence
//! counts rather than the complete model's.
//!
//! # Adding a family
//!
//! Implement [`DynFamily`] for a struct owning the instance data, and
//! append it in [`registry_at`] (or [`sparse_scenarios`] for non-complete
//! instances). Nothing else changes: the sweep, `repro frontier`, and
//! the batteries pick the new family up from the registry. The README's
//! "adding a new problem family" walkthrough shows a worked example.

use crate::frontier::{bound_gap, MeasuredPoint};
use crate::model::{validate_schema, MappingSchema, Problem, SchemaReport};
use crate::problems::hamming::{DistanceDSplittingSchema, HammingProblem};
use crate::problems::join::problem::{MultiwayJoinProblem, SharesOverDomain};
use crate::problems::join::query::Query;
use crate::problems::join::shares::{SharesSchema, TaggedTuple};
use crate::problems::matmul::problem::{numeric_inputs, NumericEntry};
use crate::problems::matmul::{MatMulProblem, Matrix, OnePhaseSchema};
use crate::problems::sample_graph::{MultisetPartitionSchema, SampleGraphProblem};
use crate::problems::triangle::{g_triangles, NodePartitionSchema, TriangleProblem};
use crate::problems::two_path::{BucketPairSchema, PerNodeSchema, TwoPathProblem};
use crate::recipe::LowerBoundRecipe;
use mr_graph::{gen, patterns, subgraph, Graph};
use mr_sim::schema::SchemaJob;
use mr_sim::{
    run_schema, run_schema_dyn, run_schema_retained, Delta, DynSchema, EngineConfig, Pipeline, Seq,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Instance-size preset of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Instances small enough for exhaustive schema validation in tests.
    Small,
    /// The grid `repro frontier` pins down byte-for-byte.
    #[default]
    Default,
    /// Stretched instances for benchmarking.
    Full,
}

/// One declared point of a family's schema grid: the §2.2 design budget,
/// the schema's display name, and the family's §2.4 recipe evaluated at
/// that point. ([`LowerBoundRecipe`] holds a closure, so grid points are
/// rebuilt per [`DynFamily::grid`] call rather than cloned.)
pub struct GridPoint {
    /// The schema's declared reducer budget (its design `q`; the measured
    /// load never exceeds it).
    pub q_declared: u64,
    /// Schema name with its grid parameter, e.g. `splitting-d(b=10, k=5, d=1)`.
    pub schema: String,
    /// The family's §2.4 lower-bound recipe.
    pub recipe: LowerBoundRecipe,
}

/// An exact map-side prediction of one grid point: the §2.2 assignment
/// function applied to every instance input, with no shuffle and no
/// reduce work.
///
/// The engine's semantic load metrics depend only on assignments, so the
/// census `q` and `r` are **exactly** what a full
/// [`run`](DynFamily::run) of the same point will measure — at a
/// fraction of the cost. This is the planner layer's prediction
/// primitive: `mr-plan` prices candidate points with a census and only
/// executes the one it picks.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignCensus {
    /// Exact maximum reducer load — the point's effective `q`.
    pub q: u64,
    /// Exact replication rate `Σᵢ qᵢ / |I|`.
    pub r: f64,
    /// Number of distinct reducers the assignment touches.
    pub reducers: u64,
    /// Total key-value pairs the map phase would shuffle.
    pub pairs: u64,
}

/// An index-based delta request crossing the erased registry boundary:
/// which of a family's instance inputs form the retained **base**, which
/// base positions a delta removes, and which further instance inputs it
/// adds.
///
/// Indices in `base` and `add` address the family's instance input slice
/// (`0..num_inputs`); entries of `remove` are *positions within `base`*
/// (equivalently, the [`Seq`] ids the retained run assigned,
/// since the base receives seqs `0..base.len()` in order). Specs must be
/// well-formed — in-range indices, no repeated removal position; the
/// typed layer rejects malformed removals at apply time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSpec {
    /// Instance-input indices forming the retained base, in order.
    pub base: Vec<usize>,
    /// Positions within `base` to remove.
    pub remove: Vec<usize>,
    /// Instance-input indices to add.
    pub add: Vec<usize>,
}

impl DeltaSpec {
    /// Number of changed inputs.
    pub fn changes(&self) -> usize {
        self.remove.len() + self.add.len()
    }

    /// The deterministic churn `repro delta` executes on an instance of
    /// `num_inputs` inputs: the first ~90% form the retained base, every
    /// 7th base position is removed, and the held-out tail is added.
    /// No randomness — the spec (and so the whole report) is a pure
    /// function of the instance size.
    pub fn tail_churn(num_inputs: usize) -> DeltaSpec {
        let split = num_inputs - num_inputs / 10;
        DeltaSpec {
            base: (0..split).collect(),
            remove: (0..split).step_by(7).collect(),
            add: (split..num_inputs).collect(),
        }
    }
}

/// The delta counterpart of [`AssignCensus`]: what a [`DeltaSpec`] *will*
/// touch, computed from the schema's assignment function alone — no
/// engine, no reduce work. Exact by §2.2 obliviousness, so
/// [`delta_run`](DynFamily::delta_run) executes under `post_q` as a hard
/// reducer budget and an under-prediction aborts loudly (the planner
/// layer's honesty contract, extended to deltas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCensus {
    /// Maximum reducer load of the base instance.
    pub base_q: u64,
    /// Key-value pairs a full run of the base shuffles.
    pub base_pairs: u64,
    /// Reducers the base instance touches.
    pub base_reducers: u64,
    /// Reducers the delta dirties (the incremental path re-executes
    /// exactly these).
    pub dirty_reducers: u64,
    /// Key-value pairs the delta round shuffles — `Σ |assign(i)|` over
    /// the changed inputs only.
    pub delta_pairs: u64,
    /// Maximum reducer load after the delta (over all reducers).
    pub post_q: u64,
    /// Live reducers after the delta.
    pub post_reducers: u64,
}

/// The result of one incremental execution through
/// [`delta_run`](DynFamily::delta_run): the delta-path measurements next
/// to their full-run equivalents, plus the two correctness verdicts the
/// battery asserts per family.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Inputs in the retained base.
    pub base_inputs: u64,
    /// Inputs the delta added / removed.
    pub added: u64,
    /// Inputs the delta removed.
    pub removed: u64,
    /// Dirty reducers the delta path re-executed — vs
    /// [`full_reducers`](DeltaReport::full_reducers) for the saving.
    pub dirty_reducers: u64,
    /// Key-value pairs the delta round shuffled — vs
    /// [`full_pairs`](DeltaReport::full_pairs).
    pub delta_pairs: u64,
    /// Outputs the delta retracted.
    pub outputs_retracted: u64,
    /// Outputs the delta added.
    pub outputs_added: u64,
    /// Reducers a full run of the post-delta instance uses.
    pub full_reducers: u64,
    /// Key-value pairs a full run of the post-delta instance shuffles.
    pub full_pairs: u64,
    /// Maximum reducer load of the post-delta instance.
    pub full_q: u64,
    /// Outputs of the post-delta instance.
    pub outputs_total: u64,
    /// Whether the retained result equals the full run of the post-delta
    /// instance **byte-identically** (outputs and semantic metrics) —
    /// `full_run(I ∪ ΔI) == apply(delta_run(ΔI), retained)`.
    pub matches_full_run: bool,
    /// Whether the [`DeltaCensus`] predicted the measured dirty count,
    /// delta pairs, post-`q`, and post-reducer count exactly.
    pub prediction_exact: bool,
    /// The census the run was priced (and budgeted) with.
    pub census: DeltaCensus,
    /// Wall-clock of the delta application (execution metadata).
    pub wall_delta: Duration,
    /// Wall-clock of the oracle full run (execution metadata).
    pub wall_full: Duration,
}

/// The result of executing one grid point through the engine.
#[derive(Debug, Clone)]
pub struct FamilyPoint {
    /// The grid point's declared budget.
    pub q_declared: u64,
    /// What the engine measured (algorithm name, effective `q`, `r`,
    /// load skew, outputs).
    pub measured: MeasuredPoint,
    /// The clamped §2.4 bound evaluated at the *measured* `q`.
    pub bound: f64,
    /// Gap ratio `r / bound` (≥ 1 for every valid schema).
    pub gap: f64,
    /// Shuffle partition skew — execution metadata, like `wall`.
    pub partition_skew: f64,
    /// Bytes the columnar shuffle moved — `pairs × (fingerprint + key +
    /// value width)`, the paper's communication cost in bytes rather
    /// than pairs. Execution metadata, like `wall`.
    pub shuffle_bytes: u64,
    /// Per-partition shuffle occupancy histogram (raw pair count of each
    /// hash partition, in partition order) — execution metadata: its
    /// length is the engine's partition count.
    pub bucket_loads: Vec<u64>,
    /// Wall-clock time of the engine round (execution metadata).
    pub wall: Duration,
}

/// A problem family with everything needed to measure its `(q, r)`
/// frontier, behind a type-erased interface.
///
/// Implementations own their instance data (built once at registry
/// construction) and are `Sync`, so a sweep can fan grid points out
/// across threads sharing `&dyn DynFamily`.
pub trait DynFamily: Send + Sync {
    /// Stable family identifier (used by tests, JSON consumers, and the
    /// `repro frontier` selector).
    fn name(&self) -> &'static str;

    /// Human-readable description of the instance swept.
    fn instance(&self) -> String;

    /// The family's schema grid, cheapest-`q` parameterisations first or
    /// in any fixed order — consumers sort measured points by `(q, name)`.
    fn grid(&self) -> Vec<GridPoint>;

    /// Executes grid point `point` through the engine.
    ///
    /// # Panics
    /// Panics if `point` is out of range for [`grid`](DynFamily::grid),
    /// or if `engine` carries a `max_reducer_inputs` budget smaller than
    /// the point's load (the registry exists to *measure* loads).
    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint;

    /// Exhaustively validates grid point `point` against the family's
    /// §2 problem ([`validate_schema`]), where that is meaningful:
    /// complete-instance families return `Some`, instance-specific
    /// scenarios (sparse random graphs) return `None`.
    fn validate(&self, point: usize) -> Option<SchemaReport>;

    /// Exact map-side prediction of grid point `point` — see
    /// [`AssignCensus`]. Costs one pass of the assignment function over
    /// the instance; never runs the engine.
    ///
    /// # Panics
    /// Panics if `point` is out of range for [`grid`](DynFamily::grid).
    fn census(&self, point: usize) -> AssignCensus;

    /// The instance's defining parameters as `(name, value)` pairs — the
    /// type-erased hook the planner layer uses to evaluate the paper's
    /// closed forms. Every family exposes `n` (or `b` for Hamming); e.g.
    /// matmul's `n` lets a planner place the §6 one- vs two-phase
    /// crossover at `q = n²`.
    fn params(&self) -> Vec<(&'static str, u64)>;

    /// Number of inputs in the family's instance — the index space
    /// [`DeltaSpec`]s address.
    fn num_inputs(&self) -> usize;

    /// Map-side prediction of what `spec` will touch at grid point
    /// `point` — see [`DeltaCensus`]. Never runs the engine.
    ///
    /// # Panics
    /// Panics if `point` is out of range or `spec` holds out-of-range
    /// indices.
    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus;

    /// Executes `spec` incrementally at grid point `point`: retains the
    /// base through the selected [`Pipeline`], applies the delta
    /// (re-executing only the dirty reducers, under the census-predicted
    /// post-`q` as a hard budget), runs the full-instance oracle, and
    /// reports both sides — see [`DeltaReport`].
    ///
    /// # Panics
    /// Panics if `point`/`spec` are out of range, if `spec.remove`
    /// repeats a position, or if the census-predicted budget overflows
    /// (a prediction bug by definition).
    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport;
}

/// Executes one typed schema through the type-erased runner and packages
/// the family point. This is the single seam between the registry and
/// the engine: every family's `run` lands here.
fn measure<I, O, S>(
    inputs: &[I],
    schema: &S,
    q_declared: u64,
    recipe: &LowerBoundRecipe,
    name: String,
    engine: &EngineConfig,
) -> FamilyPoint
where
    I: Clone + Send + Sync,
    O: Send,
    S: SchemaJob<I, O>,
{
    let erased = DynSchema::erase::<I, O, S>(inputs, schema);
    let (_outputs, metrics, wall) = run_schema_dyn(&erased, engine)
        .expect("a registry round overflowed the caller-supplied reducer budget");
    let measured = MeasuredPoint::from_round(name, &metrics);
    let bound = recipe.clamped_lower_bound(measured.q as f64);
    FamilyPoint {
        q_declared,
        gap: bound_gap(measured.r, bound),
        bound,
        partition_skew: metrics.shuffle.partition_skew(),
        // Registry rounds always run the real engine, which fills the
        // byte count; `unwrap_or(0)` only guards a hypothetical synthetic
        // stats path.
        shuffle_bytes: metrics.shuffle.bytes_moved.unwrap_or(0),
        bucket_loads: metrics.shuffle.bucket_loads.clone(),
        wall,
        measured,
    }
}

/// Runs a typed schema's assignment function over the instance and
/// aggregates per-reducer loads — the counterpart of [`measure`] that
/// stops at the map phase. Every family's `census` lands here.
fn census_of<I, O, S>(inputs: &[I], schema: &S) -> AssignCensus
where
    S: SchemaJob<I, O>,
{
    let mut loads: HashMap<u64, u64> = HashMap::new();
    let mut pairs = 0u64;
    for input in inputs {
        for rid in schema.assign(input) {
            *loads.entry(rid).or_insert(0) += 1;
            pairs += 1;
        }
    }
    AssignCensus {
        q: loads.values().copied().max().unwrap_or(0),
        r: if inputs.is_empty() {
            0.0
        } else {
            pairs as f64 / inputs.len() as f64
        },
        reducers: loads.len() as u64,
        pairs,
    }
}

/// Prices a [`DeltaSpec`] with assignment passes alone — the registry
/// counterpart of [`mr_sim::DeltaJob::predict`], plus the base-instance
/// figures `delta_run` needs to budget the retained run. Every family's
/// `delta_census` lands here.
fn delta_census_of<I, O, S>(inputs: &[I], schema: &S, spec: &DeltaSpec) -> DeltaCensus
where
    S: SchemaJob<I, O>,
{
    let mut loads: HashMap<u64, u64> = HashMap::new();
    let mut base_pairs = 0u64;
    for &ix in &spec.base {
        for rid in schema.assign(&inputs[ix]) {
            *loads.entry(rid).or_insert(0) += 1;
            base_pairs += 1;
        }
    }
    let base_q = loads.values().copied().max().unwrap_or(0);
    let base_reducers = loads.len() as u64;

    // Per-dirty-reducer (removals, additions) change counts.
    let mut touched: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut delta_pairs = 0u64;
    for &pos in &spec.remove {
        for rid in schema.assign(&inputs[spec.base[pos]]) {
            touched.entry(rid).or_insert((0, 0)).0 += 1;
            delta_pairs += 1;
        }
    }
    for &ix in &spec.add {
        for rid in schema.assign(&inputs[ix]) {
            touched.entry(rid).or_insert((0, 0)).1 += 1;
            delta_pairs += 1;
        }
    }

    let mut post_q = 0u64;
    let mut post_reducers = 0u64;
    for (rid, load) in &loads {
        if !touched.contains_key(rid) {
            post_q = post_q.max(*load);
            post_reducers += 1;
        }
    }
    for (rid, (removed, added)) in &touched {
        let load = loads.get(rid).copied().unwrap_or(0) - removed + added;
        if load > 0 {
            post_q = post_q.max(load);
            post_reducers += 1;
        }
    }
    DeltaCensus {
        base_q,
        base_pairs,
        base_reducers,
        dirty_reducers: touched.len() as u64,
        delta_pairs,
        post_q,
        post_reducers,
    }
}

/// Runs one [`DeltaSpec`] through the retained incremental path and the
/// full-run oracle and packages the comparison — the delta counterpart
/// of [`measure`]. Every family's `delta_run` lands here.
fn delta_measure<I, O, S>(
    inputs: &[I],
    schema: S,
    pipeline: Pipeline,
    spec: &DeltaSpec,
    engine: &EngineConfig,
) -> DeltaReport
where
    I: Clone + Send + Sync,
    O: Clone + Send + PartialEq,
    S: SchemaJob<I, O>,
{
    let census = delta_census_of::<I, O, S>(inputs, &schema, spec);
    let base: Vec<I> = spec.base.iter().map(|&ix| inputs[ix].clone()).collect();
    // Removals can pull the maximum load below the base's, so the
    // retained run is budgeted at the larger of the two censuses: tight
    // enough to keep the honesty contract, loose enough that the base
    // itself fits.
    let retained_cfg = engine
        .clone()
        .with_max_reducer_inputs(census.base_q.max(census.post_q))
        .with_pairs_hint(census.base_pairs);
    let mut job = run_schema_retained(&base, schema, pipeline, &retained_cfg)
        .expect("a census-budgeted base run cannot overflow");

    let delta = Delta::new(
        spec.add.iter().map(|&ix| inputs[ix].clone()).collect(),
        spec.remove.iter().map(|&pos| pos as Seq).collect(),
    );
    let start = Instant::now();
    let outcome = job
        .apply(&delta)
        .expect("a census-budgeted delta cannot overflow");
    let wall_delta = start.elapsed();

    // Oracle: a fresh full run of the post-delta instance, budgeted at
    // the census-predicted post-q — an under-prediction aborts here.
    let live = job.inputs();
    let full_cfg = engine.clone().with_max_reducer_inputs(census.post_q);
    let start = Instant::now();
    let (full_out, full_m) = run_schema(&live, job.schema(), &full_cfg)
        .expect("the census-predicted post-delta q cannot overflow");
    let wall_full = start.elapsed();

    let retained_m = job.metrics();
    let matches_full_run = retained_m == full_m && job.outputs() == full_out;
    let m = &outcome.metrics;
    let prediction_exact = census.dirty_reducers == m.dirty_reducers
        && census.delta_pairs == m.delta_pairs
        && census.post_reducers == m.total_reducers
        && census.post_q == retained_m.load.max;

    DeltaReport {
        base_inputs: spec.base.len() as u64,
        added: m.inputs_added,
        removed: m.inputs_removed,
        dirty_reducers: m.dirty_reducers,
        delta_pairs: m.delta_pairs,
        outputs_retracted: m.outputs_retracted,
        outputs_added: m.outputs_added,
        full_reducers: full_m.reducers,
        full_pairs: full_m.kv_pairs,
        full_q: full_m.load.max,
        outputs_total: full_out.len() as u64,
        matches_full_run,
        prediction_exact,
        census,
        wall_delta,
        wall_full,
    }
}

/// Per-scale instance sizes. Default values are pinned by the
/// byte-identical `repro frontier` contract; change them only with a
/// matching baseline update.
struct Sizes {
    hamming_b: u32,
    triangle_n: u32,
    sample_n: u32,
    two_path_n: u32,
    join_n: u32,
    matmul_n: u32,
}

impl Scale {
    fn sizes(self) -> Sizes {
        match self {
            Scale::Small => Sizes {
                hamming_b: 6,
                triangle_n: 8,
                sample_n: 6,
                two_path_n: 8,
                join_n: 3,
                matmul_n: 4,
            },
            Scale::Default => Sizes {
                hamming_b: 10,
                triangle_n: 16,
                sample_n: 8,
                two_path_n: 16,
                join_n: 6,
                matmul_n: 8,
            },
            Scale::Full => Sizes {
                hamming_b: 12,
                triangle_n: 24,
                sample_n: 10,
                two_path_n: 24,
                join_n: 8,
                matmul_n: 12,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Family 0 — Hamming distance 1 (§3): splitting at every divisor of b.
// ---------------------------------------------------------------------

struct HammingD1 {
    b: u32,
    ks: Vec<u32>,
    inputs: Vec<u64>,
}

impl HammingD1 {
    fn new(b: u32) -> Self {
        HammingD1 {
            b,
            ks: (1..=b).filter(|k| b.is_multiple_of(*k)).collect(),
            inputs: (0..(1u64 << b)).collect(),
        }
    }

    fn schema(&self, point: usize) -> DistanceDSplittingSchema {
        DistanceDSplittingSchema::new(self.b, self.ks[point], 1)
    }
}

impl DynFamily for HammingD1 {
    fn name(&self) -> &'static str {
        "hamming-d1"
    }

    fn instance(&self) -> String {
        format!("all {}-bit strings (|I| = {})", self.b, 1u64 << self.b)
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ks.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    q_declared: MappingSchema::<HammingProblem>::max_inputs_per_reducer(&schema),
                    schema: MappingSchema::<HammingProblem>::name(&schema),
                    recipe: HammingProblem::distance_one(self.b).recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = HammingProblem::distance_one(self.b).recipe();
        let name = MappingSchema::<HammingProblem>::name(&schema);
        let q = MappingSchema::<HammingProblem>::max_inputs_per_reducer(&schema);
        measure::<u64, (u64, u64), _>(&self.inputs, &schema, q, &recipe, name, engine)
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        Some(validate_schema(
            &HammingProblem::distance_one(self.b),
            &self.schema(point),
        ))
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<u64, (u64, u64), _>(&self.inputs, &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("b", self.b as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<u64, (u64, u64), _>(&self.inputs, &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<u64, (u64, u64), _>(
            &self.inputs,
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

// ---------------------------------------------------------------------
// Family 1 — triangles (§4): node partition at divisor group counts.
// ---------------------------------------------------------------------

struct Triangles {
    n: u32,
    ks: Vec<u32>,
    graph: Graph,
}

impl Triangles {
    fn new(n: u32) -> Self {
        Triangles {
            n,
            ks: (1..=n)
                .filter(|k| n.is_multiple_of(*k) && *k <= n / 2)
                .collect(),
            graph: Graph::complete(n as usize),
        }
    }

    fn schema(&self, point: usize) -> NodePartitionSchema {
        NodePartitionSchema::new(self.n, self.ks[point])
    }
}

impl DynFamily for Triangles {
    fn name(&self) -> &'static str {
        "triangles"
    }

    fn instance(&self) -> String {
        format!(
            "complete graph K_{} ({} edges)",
            self.n,
            self.graph.num_edges()
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ks.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    q_declared: schema.exact_max_load(),
                    schema: MappingSchema::<TriangleProblem>::name(&schema),
                    recipe: TriangleProblem::new(self.n).recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = TriangleProblem::new(self.n).recipe();
        let name = MappingSchema::<TriangleProblem>::name(&schema);
        let q = schema.exact_max_load();
        measure::<_, [u32; 3], _>(self.graph.edges(), &schema, q, &recipe, name, engine)
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        Some(validate_schema(
            &TriangleProblem::new(self.n),
            &self.schema(point),
        ))
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, [u32; 3], _>(self.graph.edges(), &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.graph.num_edges()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, [u32; 3], _>(self.graph.edges(), &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, [u32; 3], _>(
            self.graph.edges(),
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

// ---------------------------------------------------------------------
// Family 2 — sample graphs (§5.1–5.3): 4-cycle pattern, multiset
// partition over k groups. The k = n point (one node per group) pushes
// the measured load below |O|/|I|, where the unclamped g(q) = q^{s/2}
// bound exceeds 1 — so the family's r ≥ bound check has teeth.
// ---------------------------------------------------------------------

struct SampleC4 {
    n: u32,
    ks: Vec<u32>,
    pattern: Graph,
    graph: Graph,
}

impl SampleC4 {
    fn new(n: u32) -> Self {
        SampleC4 {
            n,
            ks: vec![1, 2, 3, 4, n],
            pattern: patterns::cycle(4),
            graph: Graph::complete(n as usize),
        }
    }

    fn schema(&self, point: usize) -> MultisetPartitionSchema {
        MultisetPartitionSchema::new(self.pattern.clone(), self.n, self.ks[point])
    }
}

impl DynFamily for SampleC4 {
    fn name(&self) -> &'static str {
        "sample-c4"
    }

    fn instance(&self) -> String {
        format!(
            "4-cycle pattern in K_{} ({} edges)",
            self.n,
            self.graph.num_edges()
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ks.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    q_declared: MappingSchema::<SampleGraphProblem>::max_inputs_per_reducer(
                        &schema,
                    ),
                    schema: MappingSchema::<SampleGraphProblem>::name(&schema),
                    recipe: SampleGraphProblem::new(self.pattern.clone(), self.n).recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = SampleGraphProblem::new(self.pattern.clone(), self.n).recipe();
        let name = MappingSchema::<SampleGraphProblem>::name(&schema);
        let q = MappingSchema::<SampleGraphProblem>::max_inputs_per_reducer(&schema);
        measure::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &schema, q, &recipe, name, engine)
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        Some(validate_schema(
            &SampleGraphProblem::new(self.pattern.clone(), self.n),
            &self.schema(point),
        ))
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n as u64), ("s", self.pattern.num_nodes() as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.graph.num_edges()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, Vec<(u32, u32)>, _>(
            self.graph.edges(),
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

// ---------------------------------------------------------------------
// Family 3 — 2-paths (§5.4): the per-node q = n point plus the
// bucket-pair refinement at power-of-two bucket counts.
// ---------------------------------------------------------------------

struct TwoPaths {
    n: u32,
    bucket_ks: Vec<u32>,
    graph: Graph,
}

impl TwoPaths {
    fn new(n: u32) -> Self {
        TwoPaths {
            n,
            bucket_ks: vec![2, 4, 8],
            graph: Graph::complete(n as usize),
        }
    }
}

impl DynFamily for TwoPaths {
    fn name(&self) -> &'static str {
        "two-path"
    }

    fn instance(&self) -> String {
        format!(
            "complete graph K_{} ({} edges)",
            self.n,
            self.graph.num_edges()
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        let recipe = || TwoPathProblem::new(self.n).recipe();
        let mut points = Vec::with_capacity(1 + self.bucket_ks.len());
        let per_node = PerNodeSchema { n: self.n };
        points.push(GridPoint {
            q_declared: MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&per_node),
            schema: MappingSchema::<TwoPathProblem>::name(&per_node),
            recipe: recipe(),
        });
        for &k in &self.bucket_ks {
            let schema = BucketPairSchema::new(self.n, k);
            points.push(GridPoint {
                q_declared: MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&schema),
                schema: MappingSchema::<TwoPathProblem>::name(&schema),
                recipe: recipe(),
            });
        }
        points
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let recipe = TwoPathProblem::new(self.n).recipe();
        if point == 0 {
            let schema = PerNodeSchema { n: self.n };
            let name = MappingSchema::<TwoPathProblem>::name(&schema);
            let q = MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&schema);
            measure::<_, (u32, u32, u32), _>(self.graph.edges(), &schema, q, &recipe, name, engine)
        } else {
            let schema = BucketPairSchema::new(self.n, self.bucket_ks[point - 1]);
            let name = MappingSchema::<TwoPathProblem>::name(&schema);
            let q = MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&schema);
            measure::<_, (u32, u32, u32), _>(self.graph.edges(), &schema, q, &recipe, name, engine)
        }
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        let problem = TwoPathProblem::new(self.n);
        Some(if point == 0 {
            validate_schema(&problem, &PerNodeSchema { n: self.n })
        } else {
            validate_schema(
                &problem,
                &BucketPairSchema::new(self.n, self.bucket_ks[point - 1]),
            )
        })
    }

    fn census(&self, point: usize) -> AssignCensus {
        if point == 0 {
            census_of::<_, (u32, u32, u32), _>(self.graph.edges(), &PerNodeSchema { n: self.n })
        } else {
            census_of::<_, (u32, u32, u32), _>(
                self.graph.edges(),
                &BucketPairSchema::new(self.n, self.bucket_ks[point - 1]),
            )
        }
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.graph.num_edges()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        if point == 0 {
            delta_census_of::<_, (u32, u32, u32), _>(
                self.graph.edges(),
                &PerNodeSchema { n: self.n },
                spec,
            )
        } else {
            delta_census_of::<_, (u32, u32, u32), _>(
                self.graph.edges(),
                &BucketPairSchema::new(self.n, self.bucket_ks[point - 1]),
                spec,
            )
        }
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        if point == 0 {
            delta_measure::<_, (u32, u32, u32), _>(
                self.graph.edges(),
                PerNodeSchema { n: self.n },
                pipeline,
                spec,
                engine,
            )
        } else {
            delta_measure::<_, (u32, u32, u32), _>(
                self.graph.edges(),
                BucketPairSchema::new(self.n, self.bucket_ks[point - 1]),
                pipeline,
                spec,
                engine,
            )
        }
    }
}

// ---------------------------------------------------------------------
// Family 4 — multiway joins (§5.5): the cycle query R(A,B) ⋈ S(B,C) ⋈
// T(C,A) under symmetric Shares grids. g(q) = q^ρ by AGM (§5.5.1).
// The s = n grid (one domain value per bucket) drives q low enough
// that the unclamped n/(3√q) bound exceeds 1 — the non-vacuous point
// of this family's r ≥ bound check.
// ---------------------------------------------------------------------

struct JoinCycle3 {
    n: u32,
    ss: Vec<u64>,
    problem: MultiwayJoinProblem,
    inputs: Vec<TaggedTuple>,
}

impl JoinCycle3 {
    fn new(n: u32) -> Self {
        let problem = MultiwayJoinProblem::new(Query::cycle(3), n);
        let inputs = problem.inputs();
        let mut ss: Vec<u64> = vec![1, 2, 3, n as u64];
        ss.dedup();
        JoinCycle3 {
            n,
            ss,
            problem,
            inputs,
        }
    }

    fn schema(&self, point: usize) -> SharesSchema {
        let s = self.ss[point];
        SharesSchema::new(self.problem.query.clone(), vec![s, s, s])
    }

    fn point_name(&self, point: usize) -> String {
        format!("shares(cycle3, s={})", self.ss[point])
    }
}

impl DynFamily for JoinCycle3 {
    fn name(&self) -> &'static str {
        "join-cycle3"
    }

    fn instance(&self) -> String {
        format!(
            "cycle query, complete instance on domain {} ({} tuples)",
            self.n,
            self.inputs.len()
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ss.len())
            .map(|p| GridPoint {
                q_declared: SharesOverDomain::new(self.schema(p), self.n).cell_budget(),
                schema: self.point_name(p),
                recipe: self.problem.recipe(),
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = self.problem.recipe();
        let name = self.point_name(point);
        let q = SharesOverDomain::new(schema.clone(), self.n).cell_budget();
        measure::<_, Vec<u32>, _>(&self.inputs, &schema, q, &recipe, name, engine)
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        Some(validate_schema(
            &self.problem,
            &SharesOverDomain::new(self.schema(point), self.n),
        ))
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, Vec<u32>, _>(&self.inputs, &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("n", self.n as u64),
            ("atoms", self.problem.query.atoms.len() as u64),
        ]
    }

    fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, Vec<u32>, _>(&self.inputs, &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, Vec<u32>, _>(&self.inputs, self.schema(point), pipeline, spec, engine)
    }
}

// ---------------------------------------------------------------------
// Family 5 — matrix multiplication (§6): one-phase tiling at every
// divisor tile size. r = 2n²/q exactly — the bound is tight.
// ---------------------------------------------------------------------

struct MatMul {
    n: u32,
    ss: Vec<u32>,
    inputs: Vec<NumericEntry>,
}

impl MatMul {
    fn new(n: u32) -> Self {
        let a = Matrix::random(n as usize, 3);
        let b = Matrix::random(n as usize, 4);
        MatMul {
            n,
            ss: (1..=n).filter(|s| n.is_multiple_of(*s)).collect(),
            inputs: numeric_inputs(&a, &b),
        }
    }

    fn schema(&self, point: usize) -> OnePhaseSchema {
        OnePhaseSchema::new(self.n, self.ss[point])
    }
}

impl DynFamily for MatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn instance(&self) -> String {
        format!(
            "{}×{} dense pair (|I| = {})",
            self.n,
            self.n,
            self.inputs.len()
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ss.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    q_declared: schema.q(),
                    schema: MappingSchema::<MatMulProblem>::name(&schema),
                    recipe: MatMulProblem::new(self.n).recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = MatMulProblem::new(self.n).recipe();
        let name = MappingSchema::<MatMulProblem>::name(&schema);
        let q = schema.q();
        measure::<_, (u32, u32, [u8; 8]), _>(&self.inputs, &schema, q, &recipe, name, engine)
    }

    fn validate(&self, point: usize) -> Option<SchemaReport> {
        Some(validate_schema(
            &MatMulProblem::new(self.n),
            &self.schema(point),
        ))
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, (u32, u32, [u8; 8]), _>(&self.inputs, &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, (u32, u32, [u8; 8]), _>(&self.inputs, &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, (u32, u32, [u8; 8]), _>(
            &self.inputs,
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

// ---------------------------------------------------------------------
// Sparse scenarios — the §4.2/§5.3 edge-budget variants: seeded G(n, m)
// random data graphs instead of complete model instances. The §2.4
// argument still applies per instance (g bounds any reducer's coverage,
// every present output must be covered), so measured r ≥ the clamped
// bound with |I| = m and |O| = the instance's occurrence count. The
// bounds are weak — that is §4.2's point: a schema designed for budget
// q on the complete instance sees only ~q·2m/n(n−1) real inputs.
// ---------------------------------------------------------------------

/// Fixed seed of the sparse scenario graphs — part of the reproducible
/// surface (`repro` output must be byte-identical across runs).
const SPARSE_SEED: u64 = 42;

struct SparseTriangles {
    n: u32,
    ks: Vec<u32>,
    graph: Graph,
    triangles: u64,
}

impl SparseTriangles {
    fn new(n: u32, m: usize) -> Self {
        let graph = gen::gnm(n as usize, m, SPARSE_SEED);
        let triangles = subgraph::triangle_count(&graph);
        SparseTriangles {
            n,
            ks: vec![1, 2, 3, 4, 6],
            graph,
            triangles,
        }
    }

    fn schema(&self, point: usize) -> NodePartitionSchema {
        NodePartitionSchema::new(self.n, self.ks[point])
    }

    fn recipe(&self) -> LowerBoundRecipe {
        LowerBoundRecipe::new(
            g_triangles,
            self.graph.num_edges() as f64,
            self.triangles as f64,
        )
    }
}

impl DynFamily for SparseTriangles {
    fn name(&self) -> &'static str {
        "triangles-gnm"
    }

    fn instance(&self) -> String {
        format!(
            "sparse G(n={}, m={}) random graph, seed {SPARSE_SEED} ({} triangles)",
            self.n,
            self.graph.num_edges(),
            self.triangles
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ks.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    // Declared budget: the complete-instance load, an upper
                    // bound on what the sparse instance can deliver.
                    q_declared: schema.exact_max_load(),
                    schema: MappingSchema::<TriangleProblem>::name(&schema),
                    recipe: self.recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = self.recipe();
        let name = MappingSchema::<TriangleProblem>::name(&schema);
        let q = schema.exact_max_load();
        measure::<_, [u32; 3], _>(self.graph.edges(), &schema, q, &recipe, name, engine)
    }

    fn validate(&self, _point: usize) -> Option<SchemaReport> {
        None // exhaustive validation is a complete-instance notion
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, [u32; 3], _>(self.graph.edges(), &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n as u64), ("m", self.graph.num_edges() as u64)]
    }

    fn num_inputs(&self) -> usize {
        self.graph.num_edges()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, [u32; 3], _>(self.graph.edges(), &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, [u32; 3], _>(
            self.graph.edges(),
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

struct SparseSampleC4 {
    n: u32,
    ks: Vec<u32>,
    pattern: Graph,
    graph: Graph,
    instances: u64,
}

impl SparseSampleC4 {
    fn new(n: u32, m: usize) -> Self {
        let pattern = patterns::cycle(4);
        let graph = gen::gnm(n as usize, m, SPARSE_SEED);
        let instances = subgraph::instances(&pattern, &graph);
        SparseSampleC4 {
            n,
            ks: vec![1, 2, 3, 4],
            pattern,
            graph,
            instances,
        }
    }

    fn schema(&self, point: usize) -> MultisetPartitionSchema {
        MultisetPartitionSchema::new(self.pattern.clone(), self.n, self.ks[point])
    }

    fn recipe(&self) -> LowerBoundRecipe {
        // g(q) = q^{s/2} = q² for the 4-node Alon-class cycle.
        LowerBoundRecipe::new(
            |q| q * q,
            self.graph.num_edges() as f64,
            self.instances as f64,
        )
    }
}

impl DynFamily for SparseSampleC4 {
    fn name(&self) -> &'static str {
        "sample-c4-gnm"
    }

    fn instance(&self) -> String {
        format!(
            "4-cycle pattern in sparse G(n={}, m={}), seed {SPARSE_SEED} ({} instances)",
            self.n,
            self.graph.num_edges(),
            self.instances
        )
    }

    fn grid(&self) -> Vec<GridPoint> {
        (0..self.ks.len())
            .map(|p| {
                let schema = self.schema(p);
                GridPoint {
                    q_declared: MappingSchema::<SampleGraphProblem>::max_inputs_per_reducer(
                        &schema,
                    ),
                    schema: MappingSchema::<SampleGraphProblem>::name(&schema),
                    recipe: self.recipe(),
                }
            })
            .collect()
    }

    fn run(&self, point: usize, engine: &EngineConfig) -> FamilyPoint {
        let schema = self.schema(point);
        let recipe = self.recipe();
        let name = MappingSchema::<SampleGraphProblem>::name(&schema);
        let q = MappingSchema::<SampleGraphProblem>::max_inputs_per_reducer(&schema);
        measure::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &schema, q, &recipe, name, engine)
    }

    fn validate(&self, _point: usize) -> Option<SchemaReport> {
        None
    }

    fn census(&self, point: usize) -> AssignCensus {
        census_of::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &self.schema(point))
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("n", self.n as u64),
            ("m", self.graph.num_edges() as u64),
            ("s", self.pattern.num_nodes() as u64),
        ]
    }

    fn num_inputs(&self) -> usize {
        self.graph.num_edges()
    }

    fn delta_census(&self, point: usize, spec: &DeltaSpec) -> DeltaCensus {
        delta_census_of::<_, Vec<(u32, u32)>, _>(self.graph.edges(), &self.schema(point), spec)
    }

    fn delta_run(
        &self,
        point: usize,
        engine: &EngineConfig,
        pipeline: Pipeline,
        spec: &DeltaSpec,
    ) -> DeltaReport {
        delta_measure::<_, Vec<(u32, u32)>, _>(
            self.graph.edges(),
            self.schema(point),
            pipeline,
            spec,
            engine,
        )
    }
}

// ---------------------------------------------------------------------
// Registry constructors.
// ---------------------------------------------------------------------

/// All complete-instance problem families at [`Scale::Default`] — the
/// grid `repro frontier` and the frontier sweep execute.
pub fn registry() -> Vec<Box<dyn DynFamily>> {
    registry_at(Scale::Default)
}

/// The complete-instance family names, in the paper's presentation
/// order: Hamming (§3), triangles (§4), sample graphs (§5.1–5.3),
/// 2-paths (§5.4), joins (§5.5), matmul (§6).
const COMPLETE_FAMILIES: [&str; 6] = [
    "hamming-d1",
    "triangles",
    "sample-c4",
    "two-path",
    "join-cycle3",
    "matmul",
];

/// The sparse-scenario names, in presentation order.
const SPARSE_FAMILIES: [&str; 2] = ["triangles-gnm", "sample-c4-gnm"];

/// Builds **one** family by name at the given scale — without
/// constructing any other family's instance data. Returns `None` for an
/// unknown name.
///
/// Instance construction is the expensive part of the registry (complete
/// bit-string universes, complete join databases, seeded sparse graphs
/// with subgraph counting), so consumers that want a single family — the
/// planner layer above all — should come through here rather than
/// filtering [`registry_at`] / [`extended_registry`].
pub fn family_by_name(name: &str, scale: Scale) -> Option<Box<dyn DynFamily>> {
    let s = scale.sizes();
    let (tri, c4) = sparse_sizes(scale);
    Some(match name {
        "hamming-d1" => Box::new(HammingD1::new(s.hamming_b)),
        "triangles" => Box::new(Triangles::new(s.triangle_n)),
        "sample-c4" => Box::new(SampleC4::new(s.sample_n)),
        "two-path" => Box::new(TwoPaths::new(s.two_path_n)),
        "join-cycle3" => Box::new(JoinCycle3::new(s.join_n)),
        "matmul" => Box::new(MatMul::new(s.matmul_n)),
        "triangles-gnm" => Box::new(SparseTriangles::new(tri.0, tri.1)),
        "sample-c4-gnm" => Box::new(SparseSampleC4::new(c4.0, c4.1)),
        _ => return None,
    })
}

/// All complete-instance problem families at the given scale, in the
/// paper's presentation order (see [`family_by_name`] for single-family
/// construction).
pub fn registry_at(scale: Scale) -> Vec<Box<dyn DynFamily>> {
    COMPLETE_FAMILIES
        .iter()
        .map(|n| family_by_name(n, scale).expect("complete family names are constructible"))
        .collect()
}

/// Per-scale `(n, m)` sizes of the sparse `G(n, m)` scenarios.
fn sparse_sizes(scale: Scale) -> ((u32, usize), (u32, usize)) {
    match scale {
        Scale::Small => ((12, 30), (10, 22)),
        Scale::Default => ((24, 72), (16, 44)),
        Scale::Full => ((40, 200), (24, 90)),
    }
}

/// The §4.2/§5.3 sparse-instance scenarios: seeded `G(n, m)` data graphs
/// run through the same schemas, with the recipe's `|I|`/`|O|` counted on
/// the instance.
pub fn sparse_scenarios(scale: Scale) -> Vec<Box<dyn DynFamily>> {
    SPARSE_FAMILIES
        .iter()
        .map(|n| family_by_name(n, scale).expect("sparse family names are constructible"))
        .collect()
}

/// Complete families plus sparse scenarios — everything `repro frontier`
/// can select from.
pub fn extended_registry(scale: Scale) -> Vec<Box<dyn DynFamily>> {
    let mut fams = registry_at(scale);
    fams.extend(sparse_scenarios(scale));
    fams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_and_order_are_stable() {
        let names: Vec<&str> = registry().iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec![
                "hamming-d1",
                "triangles",
                "sample-c4",
                "two-path",
                "join-cycle3",
                "matmul"
            ]
        );
        let extended: Vec<&str> = extended_registry(Scale::Default)
            .iter()
            .map(|f| f.name())
            .collect();
        assert_eq!(&extended[..6], &names[..]);
        assert_eq!(&extended[6..], &["triangles-gnm", "sample-c4-gnm"]);
    }

    #[test]
    fn default_grids_match_the_pinned_sweep_shape() {
        // 4 + 4 + 5 + 4 + 4 + 4 = the 25-point default grid.
        let lens: Vec<usize> = registry().iter().map(|f| f.grid().len()).collect();
        assert_eq!(lens, vec![4, 4, 5, 4, 4, 4]);
    }

    #[test]
    fn every_scale_has_nonempty_deduplicated_grids() {
        for scale in [Scale::Small, Scale::Default, Scale::Full] {
            for fam in extended_registry(scale) {
                let grid = fam.grid();
                assert!(
                    grid.len() >= 3,
                    "{} at {scale:?}: grid too small ({})",
                    fam.name(),
                    grid.len()
                );
                let mut names: Vec<&str> = grid.iter().map(|p| p.schema.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                assert_eq!(
                    names.len(),
                    grid.len(),
                    "{} at {scale:?}: duplicate grid points",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn run_respects_declared_budget_and_bound() {
        // Small-scale smoke over every family, sparse included.
        for fam in extended_registry(Scale::Small) {
            for (p, gp) in fam.grid().iter().enumerate() {
                let fp = fam.run(p, &EngineConfig::sequential());
                assert!(
                    fp.measured.q <= fp.q_declared,
                    "{} / {}: load {} exceeds declared {}",
                    fam.name(),
                    gp.schema,
                    fp.measured.q,
                    fp.q_declared
                );
                assert!(
                    fp.measured.r >= fp.bound - 1e-9,
                    "{} / {}: r={} below bound={}",
                    fam.name(),
                    gp.schema,
                    fp.measured.r,
                    fp.bound
                );
                assert_eq!(fp.measured.algorithm, gp.schema);
            }
        }
    }

    #[test]
    fn sparse_scenarios_refuse_exhaustive_validation() {
        for fam in sparse_scenarios(Scale::Small) {
            assert!(fam.validate(0).is_none(), "{}", fam.name());
        }
    }

    #[test]
    fn sparse_triangle_outputs_match_serial_baseline() {
        // The engine round must find exactly the instance's triangles —
        // the sparse scenario measures a real execution, not a model.
        let fam = SparseTriangles::new(12, 30);
        let expected = subgraph::triangle_count(&fam.graph);
        assert!(expected > 0, "test instance must contain triangles");
        for p in 0..fam.grid().len() {
            let fp = fam.run(p, &EngineConfig::sequential());
            assert_eq!(fp.measured.outputs, expected, "point {p}");
        }
    }

    #[test]
    fn census_predicts_engine_measurement_exactly() {
        // The planner hook's whole contract: a map-side census and a full
        // engine round agree on q and r at every grid point, complete and
        // sparse families alike.
        for fam in extended_registry(Scale::Small) {
            for (p, gp) in fam.grid().iter().enumerate() {
                let census = fam.census(p);
                let fp = fam.run(p, &EngineConfig::sequential());
                assert_eq!(
                    census.q,
                    fp.measured.q,
                    "{} / {}: census q diverged",
                    fam.name(),
                    gp.schema
                );
                assert!(
                    (census.r - fp.measured.r).abs() < 1e-12,
                    "{} / {}: census r={} vs measured {}",
                    fam.name(),
                    gp.schema,
                    census.r,
                    fp.measured.r
                );
                assert!(census.reducers > 0);
                assert!(census.pairs >= census.q, "pairs can't undercut max load");
            }
        }
    }

    #[test]
    fn family_by_name_covers_the_registries_and_rejects_unknowns() {
        for scale in [Scale::Small, Scale::Default, Scale::Full] {
            for fam in extended_registry(scale) {
                let single = family_by_name(fam.name(), scale)
                    .unwrap_or_else(|| panic!("{} not constructible alone", fam.name()));
                assert_eq!(single.name(), fam.name());
                assert_eq!(single.instance(), fam.instance());
                assert_eq!(single.grid().len(), fam.grid().len());
            }
        }
        assert!(family_by_name("nonsense", Scale::Small).is_none());
    }

    #[test]
    fn every_family_exposes_its_size_parameter() {
        for fam in extended_registry(Scale::Small) {
            let params = fam.params();
            assert!(
                params.iter().any(|(k, _)| *k == "n" || *k == "b"),
                "{}: params {:?} lack a size parameter",
                fam.name(),
                params
            );
            for (_, v) in params {
                assert!(v > 0, "{}: zero-valued parameter", fam.name());
            }
        }
    }

    #[test]
    fn census_of_empty_instance_is_all_zero() {
        let empty: Vec<u64> = Vec::new();
        struct Nowhere;
        impl SchemaJob<u64, u64> for Nowhere {
            fn assign(&self, _input: &u64) -> Vec<u64> {
                vec![]
            }
            fn reduce(&self, _r: u64, _inputs: &[u64], _emit: &mut dyn FnMut(u64)) {}
        }
        let c = census_of::<u64, u64, _>(&empty, &Nowhere);
        assert_eq!((c.q, c.reducers, c.pairs), (0, 0, 0));
        assert_eq!(c.r, 0.0);
    }

    #[test]
    fn delta_run_matches_full_run_for_every_family() {
        // The erased delta seam end to end: for each registry family, a
        // mixed tail-churn delta at grid point 0 must reproduce the full
        // post-delta run byte-identically, with the census exact.
        for fam in extended_registry(Scale::Small) {
            let spec = DeltaSpec::tail_churn(fam.num_inputs());
            assert!(spec.changes() > 0, "{}: degenerate spec", fam.name());
            let census = fam.delta_census(0, &spec);
            for pipeline in Pipeline::ALL {
                let report = fam.delta_run(0, &EngineConfig::parallel(4), pipeline, &spec);
                assert!(
                    report.matches_full_run,
                    "{} / {}: retained result diverged from the full run",
                    fam.name(),
                    pipeline.name()
                );
                assert!(
                    report.prediction_exact,
                    "{} / {}: census mispredicted the delta",
                    fam.name(),
                    pipeline.name()
                );
                assert_eq!(report.census, census, "{}", fam.name());
                assert_eq!(report.dirty_reducers, census.dirty_reducers);
                assert!(report.dirty_reducers <= report.full_reducers);
                assert!(report.delta_pairs <= report.full_pairs);
                assert_eq!(report.full_q, census.post_q);
            }
        }
    }

    #[test]
    fn small_deltas_touch_strictly_fewer_reducers_than_a_full_run() {
        // The point of the whole subsystem: a delta touching k ≪ n
        // inputs re-executes strictly fewer reducers than a full run
        // uses. Measured at each family's most-partitioned grid point.
        for fam in extended_registry(Scale::Small) {
            let n = fam.num_inputs();
            let point = (0..fam.grid().len())
                .max_by_key(|&p| fam.census(p).reducers)
                .unwrap();
            let spec = DeltaSpec {
                base: (0..n).collect(),
                remove: vec![0],
                add: vec![],
            };
            let report = fam.delta_run(
                point,
                &EngineConfig::sequential(),
                Pipeline::Columnar,
                &spec,
            );
            assert!(
                report.matches_full_run && report.prediction_exact,
                "{}",
                fam.name()
            );
            assert!(
                report.dirty_reducers < report.full_reducers,
                "{}: dirty {} not strictly below full {}",
                fam.name(),
                report.dirty_reducers,
                report.full_reducers
            );
            assert!(
                report.delta_pairs < report.full_pairs,
                "{}: delta shuffle {} not below full {}",
                fam.name(),
                report.delta_pairs,
                report.full_pairs
            );
        }
    }

    #[test]
    fn grid_recipes_evaluate_like_family_bounds() {
        for fam in registry_at(Scale::Small) {
            for gp in fam.grid() {
                let b = gp.recipe.clamped_lower_bound(gp.q_declared as f64);
                assert!(
                    b >= 1.0,
                    "{} / {}: clamped bound {b}",
                    fam.name(),
                    gp.schema
                );
            }
        }
    }
}
