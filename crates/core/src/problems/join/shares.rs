//! The Shares algorithm of Afrati–Ullman \[1\] as a mapping schema.
//!
//! Each join variable `v` receives a *share* `s_v`; reducers form a grid
//! with one coordinate per variable (`p = Π s_v` reducers). A tuple fixes
//! the coordinates of its own variables by hashing and is replicated over
//! all combinations of the remaining coordinates — so a tuple of atom `e`
//! is sent to `Π_{v ∉ e} s_v` reducers. Every potential join result maps
//! to exactly one reducer (the one agreeing with all its hashed
//! coordinates), which both guarantees coverage and makes emission
//! duplicate-free.

use super::query::{Database, Query};
use crate::model::ReducerId;
use mr_sim::schema::SchemaJob;
use mr_sim::{run_schema, EngineConfig, EngineError, RoundMetrics};

/// A tagged tuple: `(atom index, tuple values)` — the simulator input type
/// for join jobs.
pub type TaggedTuple = (u32, Vec<u32>);

/// The Shares mapping schema for a query.
#[derive(Debug, Clone)]
pub struct SharesSchema {
    /// The query being computed.
    pub query: Query,
    /// Share per variable; the reducer grid has `Π shares` cells.
    pub shares: Vec<u64>,
}

impl SharesSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics if the share vector length differs from the variable count
    /// or any share is zero.
    pub fn new(query: Query, shares: Vec<u64>) -> Self {
        assert_eq!(shares.len(), query.num_vars, "one share per variable");
        assert!(shares.iter().all(|&s| s > 0), "shares must be positive");
        SharesSchema { query, shares }
    }

    /// Total number of reducers `p = Π s_v`.
    pub fn num_reducers(&self) -> u64 {
        self.shares.iter().product()
    }

    /// Bucket of `value` in variable `v`'s dimension.
    fn bucket(&self, var: usize, value: u32) -> u64 {
        // Simple modular hash; adequate for the uniform domains of the
        // experiments and fully deterministic.
        value as u64 % self.shares[var]
    }

    /// Mixed-radix encoding of a full bucket vector.
    fn encode(&self, buckets: &[u64]) -> ReducerId {
        buckets
            .iter()
            .zip(&self.shares)
            .fold(0u64, |acc, (&b, &s)| acc * s + b)
    }

    /// Decodes a reducer id into its bucket vector.
    pub fn decode(&self, id: ReducerId) -> Vec<u64> {
        let mut buckets = vec![0u64; self.shares.len()];
        let mut rest = id;
        for (slot, &s) in buckets.iter_mut().zip(&self.shares).rev() {
            *slot = rest % s;
            rest /= s;
        }
        buckets
    }

    /// The number of reducers a tuple of `atom` is replicated to:
    /// `Π_{v ∉ atom} s_v`.
    pub fn replication_of_atom(&self, atom: usize) -> u64 {
        let in_atom: Vec<bool> = {
            let mut m = vec![false; self.query.num_vars];
            for &v in &self.query.atoms[atom] {
                m[v] = true;
            }
            m
        };
        self.shares
            .iter()
            .zip(&in_atom)
            .filter(|(_, &inside)| !inside)
            .map(|(&s, _)| s)
            .product()
    }

    /// Runs the schema on a database instance via the simulator, returning
    /// the join result rows and the round metrics.
    pub fn run(
        &self,
        db: &Database,
        config: &EngineConfig,
    ) -> Result<(Vec<Vec<u32>>, RoundMetrics), EngineError> {
        let inputs: Vec<TaggedTuple> = db
            .tuples
            .iter()
            .enumerate()
            .flat_map(|(a, ts)| ts.iter().map(move |t| (a as u32, t.clone())))
            .collect();
        run_schema(&inputs, self, config)
    }
}

impl SchemaJob<TaggedTuple, Vec<u32>> for SharesSchema {
    fn assign(&self, input: &TaggedTuple) -> Vec<ReducerId> {
        let (atom, tuple) = input;
        let vars = &self.query.atoms[*atom as usize];
        // Fixed coordinates from the tuple's own variables.
        let mut fixed: Vec<Option<u64>> = vec![None; self.query.num_vars];
        for (pos, &v) in vars.iter().enumerate() {
            fixed[v] = Some(self.bucket(v, tuple[pos]));
        }
        // Enumerate the free coordinates.
        let mut ids = Vec::new();
        let mut buckets = vec![0u64; self.query.num_vars];
        fn rec(
            schema: &SharesSchema,
            var: usize,
            fixed: &[Option<u64>],
            buckets: &mut Vec<u64>,
            ids: &mut Vec<ReducerId>,
        ) {
            if var == fixed.len() {
                ids.push(schema.encode(buckets));
                return;
            }
            match fixed[var] {
                Some(b) => {
                    buckets[var] = b;
                    rec(schema, var + 1, fixed, buckets, ids);
                }
                None => {
                    for b in 0..schema.shares[var] {
                        buckets[var] = b;
                        rec(schema, var + 1, fixed, buckets, ids);
                    }
                }
            }
        }
        rec(self, 0, &fixed, &mut buckets, &mut ids);
        ids
    }

    fn reduce(&self, _reducer: ReducerId, inputs: &[TaggedTuple], emit: &mut dyn FnMut(Vec<u32>)) {
        // Local join over the tuples present at this reducer. Because the
        // grid coordinates of a join result are determined by its variable
        // values, each result is produced at exactly one reducer.
        let mut local = Database {
            tuples: vec![Vec::new(); self.query.atoms.len()],
        };
        for (atom, tuple) in inputs {
            local.tuples[*atom as usize].push(tuple.clone());
        }
        if local.tuples.iter().any(|t| t.is_empty()) {
            return; // some relation empty here: no results
        }
        for row in local.join(&self.query) {
            emit(row);
        }
    }
}

/// Predicted communication of a share vector:
/// `Σ_e |R_e| · Π_{v ∉ e} s_v` (the Afrati–Ullman cost expression).
pub fn predicted_communication(query: &Query, sizes: &[u64], shares: &[u64]) -> u64 {
    assert_eq!(sizes.len(), query.atoms.len());
    let schema = SharesSchema::new(query.clone(), shares.to_vec());
    sizes
        .iter()
        .enumerate()
        .map(|(a, &sz)| sz * schema.replication_of_atom(a))
        .sum()
}

/// Finds the power-of-two share vector with `Π s_v = p` (p rounded down
/// to a power of two) minimising the predicted communication — a discrete
/// version of the Lagrangean optimisation in \[1\]. The product constraint
/// is an *equality*: `p` is the cluster's parallelism target, and
/// minimising communication alone would always collapse to one reducer.
///
/// Power-of-two grids are within a constant factor of the fractional
/// optimum; ties break toward the lexicographically smallest vector for
/// determinism.
pub fn optimize_shares(query: &Query, sizes: &[u64], p: u64) -> Vec<u64> {
    assert!(p >= 1);
    let p = 1u64 << (63 - p.leading_zeros()); // round down to a power of 2
    let mut best: Option<(u64, Vec<u64>)> = None;
    let mut current = vec![1u64; query.num_vars];
    fn rec(
        query: &Query,
        sizes: &[u64],
        var: usize,
        budget: u64,
        current: &mut Vec<u64>,
        best: &mut Option<(u64, Vec<u64>)>,
    ) {
        if var == current.len() {
            if budget != 1 {
                return; // product must equal p exactly
            }
            let cost = predicted_communication(query, sizes, current);
            let better = match best {
                None => true,
                Some((c, v)) => cost < *c || (cost == *c && current < v),
            };
            if better {
                *best = Some((cost, current.clone()));
            }
            return;
        }
        let mut s = 1u64;
        while s <= budget {
            current[var] = s;
            rec(query, sizes, var + 1, budget / s, current, best);
            s *= 2;
        }
        current[var] = 1;
    }
    rec(query, sizes, 0, p, &mut current, &mut best);
    best.expect("the vector (p, 1, …, 1) is always feasible").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_of_atom_products() {
        let q = Query::chain(2); // vars A0,A1,A2; atoms {0,1},{1,2}
        let s = SharesSchema::new(q, vec![1, 4, 2]);
        // R1(A0,A1) replicated over A2's share = 2.
        assert_eq!(s.replication_of_atom(0), 2);
        // R2(A1,A2) replicated over A0's share = 1.
        assert_eq!(s.replication_of_atom(1), 1);
        assert_eq!(s.num_reducers(), 8);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = Query::chain(3);
        let s = SharesSchema::new(q, vec![2, 3, 4, 1]);
        for id in 0..s.num_reducers() {
            assert_eq!(s.encode(&s.decode(id)), id);
        }
    }

    #[test]
    fn shares_join_matches_serial_baseline() {
        let q = Query::chain(3);
        let db = Database::random(&q, 12, 60, 17);
        let expected = db.join(&q);
        let schema = SharesSchema::new(q, vec![1, 2, 3, 1]);
        let (mut got, metrics) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        got.sort_unstable();
        assert_eq!(got, expected);
        // Replication: R1 over s2·s3=3... sanity: r > 1.
        assert!(metrics.replication_rate() > 1.0);
    }

    #[test]
    fn no_duplicate_join_results() {
        let q = Query::cycle(3);
        let db = Database::random(&q, 8, 30, 23);
        let schema = SharesSchema::new(q, vec![2, 2, 2]);
        let (got, _) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got.len(), sorted.len(), "duplicate join rows emitted");
    }

    #[test]
    fn star_join_shares_fact_goes_to_one_reducer() {
        let q = Query::star(3);
        // Shares on fact attributes only (the [1] optimum shape).
        let shares = vec![2, 2, 2, 1, 1, 1];
        let s = SharesSchema::new(q, shares);
        // Fact atom covers vars 0,1,2 → replication over B_i shares = 1.
        assert_eq!(s.replication_of_atom(0), 1);
        // Dimension D_0(A_0,B_0): replicated over s(A_1)·s(A_2) = 4.
        assert_eq!(s.replication_of_atom(1), 4);
    }

    #[test]
    fn measured_replication_matches_prediction() {
        let q = Query::chain(2);
        let db = Database::random(&q, 16, 100, 31);
        let shares = vec![1, 4, 1];
        let schema = SharesSchema::new(q.clone(), shares.clone());
        let (_, metrics) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        let predicted = predicted_communication(&q, &[100, 100], &shares);
        assert_eq!(metrics.kv_pairs, predicted);
    }

    #[test]
    fn optimizer_prefers_shared_variables() {
        // For R(A0,A1) ⋈ S(A1,A2), all budget should go to the shared A1:
        // sharing A0 or A2 replicates the other relation for nothing.
        let q = Query::chain(2);
        let shares = optimize_shares(&q, &[1000, 1000], 16);
        assert_eq!(shares, vec![1, 16, 1]);
    }

    #[test]
    fn optimizer_splits_chain5_interior() {
        // N=3 chain: optimum spreads between the two interior attributes.
        let q = Query::chain(3);
        let shares = optimize_shares(&q, &[1000, 1000, 1000], 16);
        assert_eq!(shares[0], 1);
        assert_eq!(shares[3], 1);
        assert_eq!(shares[1] * shares[2], 16);
        assert_eq!(shares[1], 4); // symmetric split
    }

    #[test]
    fn optimizer_star_puts_shares_on_fact() {
        let q = Query::star(2);
        // Fact is huge, dimensions small: shares go on fact attributes.
        let shares = optimize_shares(&q, &[100_000, 100, 100], 16);
        assert_eq!(shares[2], 1, "private attr B_0 must not be shared");
        assert_eq!(shares[3], 1, "private attr B_1 must not be shared");
        assert_eq!(shares[0] * shares[1], 16);
    }

    #[test]
    fn complete_instance_respects_agm_output_bound() {
        // Every reducer's local output ≤ q^ρ (§5.5.1 g(q) = q^ρ).
        let q = Query::cycle(3);
        let rho = q.rho();
        let db = Database::complete(&q, 4);
        let schema = SharesSchema::new(q, vec![2, 2, 1]);
        let (out, metrics) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        assert_eq!(out.len() as u64, 4 * 4 * 4); // complete: n^m results
        let per_reducer_inputs = metrics.load.max as f64;
        let max_outputs_bound = per_reducer_inputs.powf(rho);
        // Outputs per reducer ≤ bound: total/num_reducers is an average,
        // use the max load estimate conservatively.
        assert!(
            (out.len() as f64 / metrics.reducers as f64) <= max_outputs_bound,
            "AGM violated?"
        );
    }
}
