//! Join→aggregate pipelines as DAGs of rounds (§7.1's suggested
//! direction, generalising [`aggregate`](super::aggregate)).
//!
//! The query is the experiment-`e71` canonical instance —
//! `SELECT A₀, COUNT(*) FROM (chain join) GROUP BY A₀` — expressed over a
//! uniform [`JoinToken`] so the round structure becomes a searchable
//! [`DagJob`]:
//!
//! * [`naive_count_dag`] — round 1 computes the full Shares join, round 2
//!   shuffles every result row to its `A₀` aggregator (the *hot-key*
//!   round: one reducer per distinct `A₀` swallows the whole output
//!   blow-up);
//! * [`pushed_count_dag`] with `fanout = 1` — round-1 reducers fold their
//!   local join to per-`A₀` partial counts before anything leaves
//!   (§6.3's pre-aggregation trick applied to SQL), round 2 merges;
//! * [`pushed_count_dag`] with `fanout ≥ 2` — a three-round variant that
//!   merges partials per `(A₀, bucket)` first and only then per `A₀`,
//!   trading an extra round (latency) for a smaller final-round reducer —
//!   the join-side analogue of the recursive matmul aggregation tree.
//!
//! All variants produce identical counts; they differ only in where the
//! communication and the reducer sizes land, which is exactly what the
//! plan layer's round-structure search prices.

use super::query::Database;
use super::shares::{SharesSchema, TaggedTuple};
use crate::model::ReducerId;
use mr_sim::schema::SchemaJob;
use mr_sim::{DagJob, FnMapper, FnReducer};
use std::collections::BTreeMap;

/// The uniform token a join→aggregate [`DagJob`] flows between rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinToken {
    /// An input tuple tagged with its atom.
    Tuple(TaggedTuple),
    /// A full join-result row (naive plan's intermediate).
    Row(Vec<u32>),
    /// A partial count for `a0`, tagged with the merge bucket it belongs
    /// to on its way up the aggregation tree.
    Partial {
        /// The group-by value.
        a0: u32,
        /// Merge bucket (derived from the originating reducer).
        bucket: u32,
        /// Rows counted so far.
        count: u64,
    },
    /// A final `(a0, count)` result.
    Count(u32, u64),
}

/// The database as tokens, in the same atom-major order
/// [`SharesSchema::run`] uses.
pub fn tagged_inputs(db: &Database) -> Vec<JoinToken> {
    db.tuples
        .iter()
        .enumerate()
        .flat_map(|(a, ts)| {
            ts.iter()
                .map(move |t| JoinToken::Tuple((a as u32, t.clone())))
        })
        .collect()
}

/// Adds the Shares join round: tuples shuffled to the schema's reducer
/// grid. `reduce` turns each reducer's locally-joined rows into output
/// tokens.
fn add_join_round(
    dag: &mut DagJob<JoinToken>,
    schema: SharesSchema,
    reduce: impl Fn(ReducerId, Vec<Vec<u32>>, &mut dyn FnMut(JoinToken)) + Sync + 'static,
) -> usize {
    let assign_schema = schema.clone();
    dag.add_round(
        "join",
        vec![],
        FnMapper(
            move |token: &JoinToken, emit: &mut dyn FnMut(ReducerId, JoinToken)| {
                let JoinToken::Tuple(t) = token else {
                    unreachable!("the join round consumes tuples only");
                };
                for rid in assign_schema.assign(t) {
                    emit(rid, token.clone());
                }
            },
        ),
        FnReducer(
            move |rid: &ReducerId, inputs: &[JoinToken], emit: &mut dyn FnMut(JoinToken)| {
                let tuples: Vec<TaggedTuple> = inputs
                    .iter()
                    .map(|t| {
                        let JoinToken::Tuple(tt) = t else {
                            unreachable!("the join round consumes tuples only");
                        };
                        tt.clone()
                    })
                    .collect();
                let mut rows = Vec::new();
                schema.reduce(*rid, &tuples, &mut |row| rows.push(row));
                reduce(*rid, rows, emit);
            },
        ),
    )
}

/// Adds the final merge round: everything for one `a0` meets at one
/// reducer and the counts are summed.
fn add_final_merge(dag: &mut DagJob<JoinToken>, dep: usize) {
    dag.add_round(
        "merge",
        vec![dep],
        FnMapper(
            |token: &JoinToken, emit: &mut dyn FnMut(u32, JoinToken)| match token {
                JoinToken::Row(row) => emit(row[0], token.clone()),
                JoinToken::Partial { a0, .. } => emit(*a0, token.clone()),
                _ => unreachable!("the merge round consumes rows or partials"),
            },
        ),
        FnReducer(
            |a0: &u32, inputs: &[JoinToken], emit: &mut dyn FnMut(JoinToken)| {
                let total: u64 = inputs
                    .iter()
                    .map(|t| match t {
                        JoinToken::Row(_) => 1,
                        JoinToken::Partial { count, .. } => *count,
                        _ => unreachable!("the merge round consumes rows or partials"),
                    })
                    .sum();
                emit(JoinToken::Count(*a0, total));
            },
        ),
    );
}

/// The naive two-round pipeline: full join, then hot-key aggregation.
pub fn naive_count_dag(schema: SharesSchema) -> DagJob<JoinToken> {
    let mut dag = DagJob::new();
    let join = add_join_round(&mut dag, schema, |_rid, rows, emit| {
        for row in rows {
            emit(JoinToken::Row(row));
        }
    });
    add_final_merge(&mut dag, join);
    dag
}

/// The pushed pipeline: join reducers emit per-`A₀` partial counts. With
/// `fanout = 1` the partials merge in one round (two rounds total); with
/// `fanout ≥ 2` an intermediate round first merges per
/// `(A₀, reducer-id mod fanout)` bucket (three rounds total).
///
/// # Panics
/// Panics if `fanout` is 0.
pub fn pushed_count_dag(schema: SharesSchema, fanout: u32) -> DagJob<JoinToken> {
    assert!(fanout >= 1, "fanout must be positive");
    let mut dag = DagJob::new();
    let join = add_join_round(&mut dag, schema, move |rid, rows, emit| {
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for row in rows {
            *counts.entry(row[0]).or_insert(0) += 1;
        }
        let bucket = (rid % fanout as u64) as u32;
        for (a0, count) in counts {
            emit(JoinToken::Partial { a0, bucket, count });
        }
    });
    let mut prev = join;
    if fanout >= 2 {
        prev = dag.add_round(
            "merge-buckets",
            vec![join],
            FnMapper(
                |token: &JoinToken, emit: &mut dyn FnMut((u32, u32), JoinToken)| {
                    let JoinToken::Partial { a0, bucket, .. } = token else {
                        unreachable!("the bucket round consumes partials only");
                    };
                    emit((*a0, *bucket), token.clone());
                },
            ),
            FnReducer(
                |key: &(u32, u32), inputs: &[JoinToken], emit: &mut dyn FnMut(JoinToken)| {
                    let total: u64 = inputs
                        .iter()
                        .map(|t| {
                            let JoinToken::Partial { count, .. } = t else {
                                unreachable!("the bucket round consumes partials only");
                            };
                            *count
                        })
                        .sum();
                    emit(JoinToken::Partial {
                        a0: key.0,
                        bucket: key.1,
                        count: total,
                    });
                },
            ),
        );
    }
    add_final_merge(&mut dag, prev);
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::join::query::Query;
    use mr_sim::EngineConfig;

    fn setup() -> (SharesSchema, Database) {
        let query = Query::chain(2);
        let db = Database::complete(&query, 6);
        (SharesSchema::new(query, vec![1, 3, 1]), db)
    }

    fn counts_of(dag: &DagJob<JoinToken>, db: &Database, cfg: &EngineConfig) -> Vec<(u32, u64)> {
        let (out, _) = dag.run(&tagged_inputs(db), cfg).unwrap();
        out.into_iter()
            .map(|t| match t {
                JoinToken::Count(a0, c) => (a0, c),
                other => panic!("non-count output {other:?}"),
            })
            .collect()
    }

    /// Ground truth from the serial join.
    fn serial_counts(schema: &SharesSchema, db: &Database) -> Vec<(u32, u64)> {
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for row in db.join(&schema.query) {
            *counts.entry(row[0]).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    #[test]
    fn all_variants_compute_the_same_counts() {
        let (schema, db) = setup();
        let expected = serial_counts(&schema, &db);
        let cfg = EngineConfig::sequential();
        assert_eq!(
            counts_of(&naive_count_dag(schema.clone()), &db, &cfg),
            expected
        );
        assert_eq!(
            counts_of(&pushed_count_dag(schema.clone(), 1), &db, &cfg),
            expected
        );
        assert_eq!(
            counts_of(&pushed_count_dag(schema.clone(), 2), &db, &cfg),
            expected
        );
    }

    #[test]
    fn round_counts_and_depths() {
        let (schema, _) = setup();
        assert_eq!(naive_count_dag(schema.clone()).num_rounds(), 2);
        assert_eq!(pushed_count_dag(schema.clone(), 1).num_rounds(), 2);
        let tree = pushed_count_dag(schema, 2);
        assert_eq!(tree.num_rounds(), 3);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn pushed_communicates_less_than_naive_after_round_one() {
        let (schema, db) = setup();
        let cfg = EngineConfig::sequential();
        let (_, naive) = naive_count_dag(schema.clone())
            .run(&tagged_inputs(&db), &cfg)
            .unwrap();
        let (_, pushed) = pushed_count_dag(schema, 1)
            .run(&tagged_inputs(&db), &cfg)
            .unwrap();
        assert_eq!(naive.rounds[0].kv_pairs, pushed.rounds[0].kv_pairs);
        assert!(pushed.rounds[1].kv_pairs < naive.rounds[1].kv_pairs);
    }

    #[test]
    fn pipelines_are_worker_count_independent() {
        let (schema, db) = setup();
        for dag in [
            naive_count_dag(schema.clone()),
            pushed_count_dag(schema.clone(), 1),
            pushed_count_dag(schema, 3),
        ] {
            let (seq, ms) = dag
                .run(&tagged_inputs(&db), &EngineConfig::sequential())
                .unwrap();
            for workers in [1usize, 4, 16] {
                let (par, mp) = dag
                    .run(&tagged_inputs(&db), &EngineConfig::parallel(workers))
                    .unwrap();
                assert_eq!(seq, par, "workers={workers}");
                assert_eq!(ms, mp, "workers={workers}");
            }
        }
    }
}
