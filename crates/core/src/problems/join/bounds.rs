//! Closed-form multiway-join bounds (§5.5.1, §5.5.2).

/// §5.5.1: the general lower bound `r ≥ n^{m−2} / q^{ρ−1}` for a join
/// over `m` variables with fractional-edge-cover value `ρ` on a domain of
/// `n` values.
pub fn multiway_lower_bound(n: f64, m_vars: usize, rho: f64, q: f64) -> f64 {
    n.powi(m_vars as i32 - 2) / q.powf(rho - 1.0)
}

/// §5.5.2: the chain-join lower bound for odd `N`,
/// `r ≥ (n/√q)^{N−1}` (with `m = N+1`, `ρ = (N+1)/2`).
pub fn chain_lower_bound(n: f64, num_relations: usize, q: f64) -> f64 {
    (n / q.sqrt()).powi(num_relations as i32 - 1)
}

/// §5.5.2: the matching chain-join upper bound from \[1\],
/// `r = (n/√q)^{N−1}`.
pub fn chain_upper_bound(n: f64, num_relations: usize, q: f64) -> f64 {
    chain_lower_bound(n, num_relations, q)
}

/// §5.5.2: star-join replication of the Shares algorithm with `p`
/// reducers, fact size `f`, `N` dimension tables of size `d0` each:
/// `r = (f + N·d0·p^{(N−1)/N}) / (f + N·d0)`.
pub fn star_replication(f: f64, d0: f64, num_dims: usize, p: f64) -> f64 {
    let n = num_dims as f64;
    (f + n * d0 * p.powf((n - 1.0) / n)) / (f + n * d0)
}

/// §5.5.2: the star-join lower bound
/// `r ≥ N·d0·(N·d0/q)^{N−1} / (f + N·d0)`.
pub fn star_lower_bound(f: f64, d0: f64, num_dims: usize, q: f64) -> f64 {
    let n = num_dims as f64;
    n * d0 * (n * d0 / q).powf(n - 1.0) / (f + n * d0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::join::query::Query;

    #[test]
    fn multiway_reduces_to_chain_form_for_odd_chains() {
        // Chain N=3: m = 4 vars, ρ = 2 → n^2/q = (n/√q)^2. N=5: m=6,
        // ρ=3 → n^4/q^2 = (n/√q)^4.
        for n_rels in [3usize, 5] {
            let q = Query::chain(n_rels);
            let rho = q.rho();
            let n = 100.0;
            for budget in [100.0, 400.0] {
                let general = multiway_lower_bound(n, n_rels + 1, rho, budget);
                let chain = chain_lower_bound(n, n_rels, budget);
                assert!(
                    (general - chain).abs() / chain < 1e-9,
                    "N={n_rels} q={budget}: {general} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn chain_bound_decreases_in_q() {
        let n = 50.0;
        let mut prev = f64::INFINITY;
        for q in [25.0, 100.0, 400.0, 2500.0] {
            let b = chain_lower_bound(n, 5, q);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn star_replication_monotone_in_p() {
        let (f, d0) = (1_000_000.0, 1_000.0);
        let mut prev = 0.0;
        for p in [8.0, 64.0, 512.0] {
            let r = star_replication(f, d0, 3, p);
            assert!(r > prev);
            prev = r;
        }
        // With p = 1 the replication is exactly 1.
        assert!((star_replication(f, d0, 3, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_lower_bound_below_replication() {
        // The §5.5.2 analysis shows the achieved r differs from the lower
        // bound by ~e(1-e)/e^N — a constant. Check bound ≤ achieved at a
        // consistent (p, q) pairing: q ≈ (f + N·d0·p^{(N-1)/N})/p.
        let (f, d0, n) = (1_000_000.0, 1_000.0, 3usize);
        for p in [64.0, 512.0] {
            let r = star_replication(f, d0, n, p);
            let q = r * (f + n as f64 * d0) / p;
            let lb = star_lower_bound(f, d0, n, q);
            assert!(
                lb <= r * 1.05,
                "p={p}: lower bound {lb} exceeds achieved {r}"
            );
        }
    }

    #[test]
    fn trivial_chain_n1_bound_is_one() {
        // N=1: a single relation; bound (n/√q)^0 = 1.
        assert_eq!(chain_lower_bound(100.0, 1, 10.0), 1.0);
    }
}
