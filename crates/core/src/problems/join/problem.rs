//! The multiway join as a §2 [`Problem`], so Shares grids can be
//! *exhaustively validated* like every other family.
//!
//! §5.5.1 analyses joins over the complete instance: every relation holds
//! every possible tuple over an `n`-value domain. [`MultiwayJoinProblem`]
//! enumerates exactly that — inputs are [`TaggedTuple`]s of the complete
//! database, outputs are the join's result rows, and a row depends on its
//! projection onto each atom. [`SharesOverDomain`] pairs a
//! [`SharesSchema`] with the domain size it runs over, which is what a
//! [`MappingSchema`] needs to declare its reducer budget (a Shares grid
//! cell holds at most `Σ_e Π_{v ∈ e} ⌈n/s_v⌉` complete-instance tuples).
//!
//! With these two pieces, [`validate_schema`](crate::model::validate_schema)
//! covers the join family too, and the registry's validation-vs-engine
//! parity tests can assert that the exhaustively computed replication
//! rate equals the engine-measured one on the same complete instance.

use super::query::{Database, Query};
use super::shares::{SharesSchema, TaggedTuple};
use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_sim::schema::SchemaJob;

/// A multiway join over the complete instance on a domain of `n` values
/// (§2.3's "all inputs present" assumption, specialised to §5.5).
#[derive(Debug, Clone)]
pub struct MultiwayJoinProblem {
    /// The conjunctive query.
    pub query: Query,
    /// Domain size per variable.
    pub n: u32,
}

impl MultiwayJoinProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(query: Query, n: u32) -> Self {
        assert!(n >= 1, "the domain must be non-empty");
        MultiwayJoinProblem { query, n }
    }

    /// The complete database instance this problem enumerates.
    pub fn database(&self) -> Database {
        Database::complete(&self.query, self.n)
    }

    /// The §5.5.1 recipe: `g(q) = q^ρ` by the AGM bound, with `|I|` and
    /// `|O|` counted on the complete instance.
    pub fn recipe(&self) -> LowerBoundRecipe {
        let rho = self.query.rho();
        let db = self.database();
        let outputs = db.join(&self.query).len() as f64;
        LowerBoundRecipe::new(move |q| q.powf(rho), db.num_tuples() as f64, outputs)
    }
}

impl Problem for MultiwayJoinProblem {
    type Input = TaggedTuple;
    type Output = Vec<u32>;

    fn inputs(&self) -> Vec<TaggedTuple> {
        self.database()
            .tuples
            .iter()
            .enumerate()
            .flat_map(|(a, ts)| ts.iter().map(move |t| (a as u32, t.clone())))
            .collect()
    }

    fn outputs(&self) -> Vec<Vec<u32>> {
        self.database().join(&self.query)
    }

    fn inputs_of(&self, output: &Vec<u32>) -> Vec<TaggedTuple> {
        // A result row needs, from each relation, its projection onto
        // that atom's variables.
        self.query
            .atoms
            .iter()
            .enumerate()
            .map(|(a, vars)| (a as u32, vars.iter().map(|&v| output[v]).collect()))
            .collect()
    }
}

/// A [`SharesSchema`] bound to the domain it partitions, making it a
/// [`MappingSchema`] for [`MultiwayJoinProblem`].
///
/// The pairing exists because a schema's declared reducer budget depends
/// on the instance domain, which the bare grid does not know.
#[derive(Debug, Clone)]
pub struct SharesOverDomain {
    /// The Shares grid.
    pub schema: SharesSchema,
    /// Domain size per variable.
    pub n: u32,
}

impl SharesOverDomain {
    /// Creates the pairing.
    pub fn new(schema: SharesSchema, n: u32) -> Self {
        SharesOverDomain { schema, n }
    }

    /// The exact complete-instance budget of one grid cell:
    /// `Σ_e Π_{v ∈ e} ⌈n/s_v⌉` — each atom contributes every tuple whose
    /// hashed coordinates agree with the cell, and a bucket of variable
    /// `v` holds at most `⌈n/s_v⌉` domain values.
    pub fn cell_budget(&self) -> u64 {
        self.schema
            .query
            .atoms
            .iter()
            .map(|atom| {
                atom.iter()
                    .map(|&v| (self.n as u64).div_ceil(self.schema.shares[v]))
                    .product::<u64>()
            })
            .sum()
    }
}

impl MappingSchema<MultiwayJoinProblem> for SharesOverDomain {
    fn assign(&self, input: &TaggedTuple) -> Vec<ReducerId> {
        SchemaJob::assign(&self.schema, input)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.cell_budget()
    }

    fn name(&self) -> String {
        format!(
            "shares(vars={}, shares={:?})",
            self.schema.query.num_vars, self.schema.shares
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use mr_sim::{run_schema, EngineConfig};

    #[test]
    fn complete_instance_counts() {
        let p = MultiwayJoinProblem::new(Query::cycle(3), 3);
        // 3 binary relations × n² tuples each; n³ result rows.
        assert_eq!(p.num_inputs(), 27);
        assert_eq!(p.num_outputs(), 27);
    }

    #[test]
    fn inputs_of_projects_onto_atoms() {
        let p = MultiwayJoinProblem::new(Query::cycle(3), 4);
        let deps = p.inputs_of(&vec![1, 2, 3]);
        // Cycle atoms: (A0,A1), (A1,A2), (A2,A0).
        assert_eq!(
            deps,
            vec![(0, vec![1, 2]), (1, vec![2, 3]), (2, vec![3, 1])]
        );
    }

    #[test]
    fn shares_schema_validates_on_complete_instance() {
        let query = Query::cycle(3);
        let p = MultiwayJoinProblem::new(query.clone(), 4);
        for s in [1u64, 2, 4] {
            let schema = SharesOverDomain::new(SharesSchema::new(query.clone(), vec![s, s, s]), 4);
            let report = validate_schema(&p, &schema);
            assert!(report.is_valid(), "s={s}: {report:?}");
        }
    }

    #[test]
    fn cell_budget_is_tight_when_shares_divide_n() {
        // s | n: buckets are perfectly balanced, so the declared budget is
        // exactly the achieved max load.
        let query = Query::cycle(3);
        let p = MultiwayJoinProblem::new(query.clone(), 4);
        let schema = SharesOverDomain::new(SharesSchema::new(query.clone(), vec![2, 2, 2]), 4);
        let report = validate_schema(&p, &schema);
        assert!(report.is_valid());
        assert_eq!(report.max_load, schema.cell_budget()); // 3 · 2²
    }

    #[test]
    fn validation_agrees_with_engine_measurement() {
        // The parity the registry tests generalise: exhaustive validation
        // and an engine round measure the same r and q on the complete
        // instance.
        let query = Query::cycle(3);
        let p = MultiwayJoinProblem::new(query.clone(), 3);
        let schema = SharesSchema::new(query, vec![3, 3, 3]);
        let report = validate_schema(&p, &SharesOverDomain::new(schema.clone(), 3));
        let inputs = p.inputs();
        let (_, metrics) = run_schema(&inputs, &schema, &EngineConfig::sequential()).unwrap();
        assert_eq!(report.max_load, metrics.load.max);
        assert!((report.replication_rate - metrics.replication_rate()).abs() < 1e-12);
    }

    #[test]
    fn recipe_bound_is_positive_and_clamped() {
        let p = MultiwayJoinProblem::new(Query::cycle(3), 4);
        let recipe = p.recipe();
        // ρ = 3/2 for the 3-cycle, so the bound is n/(3√q): at q = 1 it
        // is n/3 > 1, and at huge q the clamp takes over.
        assert!(recipe.replication_lower_bound(1.0) > 1.0);
        assert_eq!(recipe.clamped_lower_bound(1e9), 1.0);
    }
}
