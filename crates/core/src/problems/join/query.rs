//! Conjunctive queries, databases, and the serial join baseline.

use mr_lp::{fractional_edge_cover, Hypergraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// A conjunctive query (natural multiway join): `num_vars` variables and
/// one atom per relation, each atom listing the variables it covers in
/// positional order.
#[derive(Debug, Clone)]
pub struct Query {
    /// Number of join variables (the paper's `m`).
    pub num_vars: usize,
    /// Variable indices of each relational atom (the paper's `s` atoms).
    pub atoms: Vec<Vec<usize>>,
}

impl Query {
    /// Creates a query, checking every atom references valid variables.
    ///
    /// # Panics
    /// Panics on empty atoms, out-of-range variables, or repeated
    /// variables within an atom.
    pub fn new(num_vars: usize, atoms: Vec<Vec<usize>>) -> Self {
        for a in &atoms {
            assert!(!a.is_empty(), "atoms must be non-empty");
            let distinct: BTreeSet<_> = a.iter().collect();
            assert_eq!(distinct.len(), a.len(), "repeated variable in atom {a:?}");
            for &v in a {
                assert!(v < num_vars, "variable {v} out of range");
            }
        }
        Query { num_vars, atoms }
    }

    /// The chain join `R_1(A_0,A_1) ⋈ R_2(A_1,A_2) ⋈ … ⋈ R_N(A_{N−1},A_N)`
    /// (§5.5.2).
    pub fn chain(num_relations: usize) -> Self {
        assert!(num_relations >= 1);
        Query::new(
            num_relations + 1,
            (0..num_relations).map(|i| vec![i, i + 1]).collect(),
        )
    }

    /// The star join (§5.5.2): a fact table over attributes `A_0..A_{N−1}`
    /// joined with `N` dimension tables `D_i(A_i, B_i)`, each with one
    /// private attribute.
    pub fn star(num_dims: usize) -> Self {
        assert!(num_dims >= 1);
        let mut atoms = vec![(0..num_dims).collect::<Vec<_>>()];
        for i in 0..num_dims {
            atoms.push(vec![i, num_dims + i]);
        }
        Query::new(2 * num_dims, atoms)
    }

    /// The cycle query `R_1(A_0,A_1) ⋈ … ⋈ R_k(A_{k−1},A_0)`.
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3);
        Query::new(k, (0..k).map(|i| vec![i, (i + 1) % k]).collect())
    }

    /// The query hypergraph `G(q)` of §5.5.1.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::from_edges(self.num_vars, self.atoms.clone())
    }

    /// The parameter `ρ`: the optimal fractional edge cover value,
    /// computed by LP (§5.5.1, after \[6\]).
    ///
    /// # Panics
    /// Panics if some variable appears in no atom (the cover LP is then
    /// infeasible, which `Query::new` should have prevented in practice).
    pub fn rho(&self) -> f64 {
        fractional_edge_cover(&self.hypergraph())
            .expect("every variable appears in some atom")
            .0
    }

    /// Arity of atom `i`.
    pub fn arity(&self, atom: usize) -> usize {
        self.atoms[atom].len()
    }
}

/// A database instance: one tuple list per atom. Tuple values are indexed
/// positionally, matching the atom's variable list.
#[derive(Debug, Clone)]
pub struct Database {
    /// `tuples[a]` = the tuples of atom `a`'s relation.
    pub tuples: Vec<Vec<Vec<u32>>>,
}

impl Database {
    /// The *complete* instance over a domain of `n` values: every possible
    /// tuple in every relation — the instance the lower-bound analysis
    /// assumes (§2.3). Relation `a` gets `n^arity(a)` tuples.
    pub fn complete(query: &Query, n: u32) -> Self {
        let tuples = query
            .atoms
            .iter()
            .map(|atom| {
                let arity = atom.len();
                let count = (n as u64).pow(arity as u32);
                (0..count)
                    .map(|code| {
                        let mut t = vec![0u32; arity];
                        let mut rest = code;
                        for slot in t.iter_mut().rev() {
                            *slot = (rest % n as u64) as u32;
                            rest /= n as u64;
                        }
                        t
                    })
                    .collect()
            })
            .collect();
        Database { tuples }
    }

    /// A random instance: `per_relation` distinct tuples per relation over
    /// domain `0..n`, seeded.
    pub fn random(query: &Query, n: u32, per_relation: usize, seed: u64) -> Self {
        Self::random_with_sizes(query, n, &vec![per_relation; query.atoms.len()], seed)
    }

    /// A random instance with a distinct size per relation (e.g. a large
    /// fact table and small dimension tables, §5.5.2).
    ///
    /// # Panics
    /// Panics if `sizes.len()` differs from the atom count or a size
    /// exceeds the relation's tuple universe `n^arity`.
    pub fn random_with_sizes(query: &Query, n: u32, sizes: &[usize], seed: u64) -> Self {
        assert_eq!(sizes.len(), query.atoms.len(), "one size per relation");
        let mut rng = StdRng::seed_from_u64(seed);
        let tuples = query
            .atoms
            .iter()
            .zip(sizes)
            .map(|(atom, &per_relation)| {
                let arity = atom.len();
                let universe = (n as u64).pow(arity as u32);
                assert!(
                    per_relation as u64 <= universe,
                    "cannot draw {per_relation} distinct tuples from {universe}"
                );
                let mut chosen: BTreeSet<Vec<u32>> = BTreeSet::new();
                while chosen.len() < per_relation {
                    let t: Vec<u32> = (0..arity).map(|_| rng.random_range(0..n)).collect();
                    chosen.insert(t);
                }
                chosen.into_iter().collect()
            })
            .collect();
        Database { tuples }
    }

    /// Total number of tuples (the instance's `|I|`).
    pub fn num_tuples(&self) -> u64 {
        self.tuples.iter().map(|t| t.len() as u64).sum()
    }

    /// Serial join baseline: backtracking over atoms, returning all
    /// variable assignments satisfying every atom. Result rows are sorted.
    pub fn join(&self, query: &Query) -> Vec<Vec<u32>> {
        let mut results = Vec::new();
        let mut assignment: Vec<Option<u32>> = vec![None; query.num_vars];
        self.join_rec(query, 0, &mut assignment, &mut results);
        results.sort_unstable();
        results
    }

    fn join_rec(
        &self,
        query: &Query,
        atom: usize,
        assignment: &mut Vec<Option<u32>>,
        results: &mut Vec<Vec<u32>>,
    ) {
        if atom == query.atoms.len() {
            results.push(
                assignment
                    .iter()
                    .map(|v| v.expect("all variables bound after all atoms"))
                    .collect(),
            );
            return;
        }
        let vars = &query.atoms[atom];
        'tuples: for t in &self.tuples[atom] {
            // Check consistency and record new bindings.
            let mut newly_bound = Vec::new();
            for (pos, &var) in vars.iter().enumerate() {
                match assignment[var] {
                    Some(bound) if bound != t[pos] => {
                        for &v in &newly_bound {
                            assignment[v] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        assignment[var] = Some(t[pos]);
                        newly_bound.push(var);
                    }
                }
            }
            self.join_rec(query, atom + 1, assignment, results);
            for &v in &newly_bound {
                assignment[v] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_query_shape() {
        let q = Query::chain(3);
        assert_eq!(q.num_vars, 4);
        assert_eq!(q.atoms, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn star_query_shape() {
        let q = Query::star(3);
        assert_eq!(q.num_vars, 6);
        assert_eq!(q.atoms[0], vec![0, 1, 2]); // fact
        assert_eq!(q.atoms[1], vec![0, 3]);
        assert_eq!(q.atoms[3], vec![2, 5]);
    }

    #[test]
    fn rho_values_match_theory() {
        // Chain of N: ρ = ceil((N+1)/2); cycle k: ρ = k/2; star N: ρ = N.
        assert!((Query::chain(3).rho() - 2.0).abs() < 1e-6);
        assert!((Query::chain(5).rho() - 3.0).abs() < 1e-6);
        assert!((Query::cycle(3).rho() - 1.5).abs() < 1e-6);
        assert!((Query::star(3).rho() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn complete_database_sizes() {
        let q = Query::chain(2);
        let db = Database::complete(&q, 3);
        assert_eq!(db.tuples[0].len(), 9);
        assert_eq!(db.tuples[1].len(), 9);
        assert_eq!(db.num_tuples(), 18);
    }

    #[test]
    fn complete_database_join_is_full_cross() {
        // On the complete instance every assignment joins: n^m results.
        let q = Query::chain(2);
        let db = Database::complete(&q, 3);
        assert_eq!(db.join(&q).len(), 27);
    }

    #[test]
    fn join_on_instance_matches_hand_computation() {
        // R(A,B) = {(0,1),(1,2)}, S(B,C) = {(1,5),(2,6),(3,7)}:
        // join = {(0,1,5),(1,2,6)}.
        let q = Query::chain(2);
        let db = Database {
            tuples: vec![
                vec![vec![0, 1], vec![1, 2]],
                vec![vec![1, 5], vec![2, 6], vec![3, 7]],
            ],
        };
        assert_eq!(db.join(&q), vec![vec![0, 1, 5], vec![1, 2, 6]]);
    }

    #[test]
    fn triangle_join_counts_directed_triangles() {
        // Cycle query over the same relation contents: R=S=T={(0,1),(1,2),(2,0)}
        // has exactly the 3 rotations of the one directed triangle.
        let q = Query::cycle(3);
        let edges = vec![vec![0u32, 1], vec![1, 2], vec![2, 0]];
        let db = Database {
            tuples: vec![edges.clone(), edges.clone(), edges],
        };
        let result = db.join(&q);
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn random_database_is_deterministic() {
        let q = Query::chain(3);
        let a = Database::random(&q, 10, 20, 99);
        let b = Database::random(&q, 10, 20, 99);
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.num_tuples(), 60);
    }

    #[test]
    #[should_panic(expected = "repeated variable")]
    fn rejects_repeated_variable() {
        Query::new(2, vec![vec![0, 0]]);
    }
}
