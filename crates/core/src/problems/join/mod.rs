//! Multiway joins (§5.5).
//!
//! A multiway join of binary (or higher-arity) relations is viewed as
//! finding labeled sample graphs in a labeled data graph. §5.5.1 derives
//! the lower bound `r ≥ n^{m−2}/q^{ρ−1}` from the AGM bound
//! `g(q) = q^ρ`, where `ρ` is the optimal fractional edge cover of the
//! query hypergraph (computed here with `mr-lp`). §5.5.2 shows the Shares
//! algorithm of Afrati–Ullman \[1\] matches the bound for chain joins and
//! analyses star joins.
//!
//! * [`query`] — conjunctive queries, databases, and the serial join
//!   baseline;
//! * [`shares`] — the Shares mapping schema, share optimisation, and
//!   predicted communication;
//! * [`problem`] — the complete-instance join as a §2 [`Problem`](crate::model::Problem),
//!   so Shares grids validate exhaustively like every other family;
//! * [`bounds`] — the §5.5.1/§5.5.2 closed forms for chains and stars;
//! * [`aggregate`] — two-round join-then-aggregate pipelines with and
//!   without partial-aggregation push-down (§7.1's open direction);
//! * [`pipeline`] — the same pipelines re-expressed as [`DagJob`]s over a
//!   uniform token, including a three-round partial-merge tree, for the
//!   planner's round-structure search.
//!
//! [`DagJob`]: mr_sim::DagJob

pub mod aggregate;
pub mod bounds;
pub mod pipeline;
pub mod problem;
pub mod query;
pub mod shares;

pub use aggregate::{count_by_first_var_naive, count_by_first_var_pushed};
pub use bounds::{
    chain_lower_bound, chain_upper_bound, multiway_lower_bound, star_lower_bound, star_replication,
};
pub use pipeline::{naive_count_dag, pushed_count_dag, tagged_inputs, JoinToken};
pub use problem::{MultiwayJoinProblem, SharesOverDomain};
pub use query::{Database, Query};
pub use shares::{optimize_shares, predicted_communication, SharesSchema};
