//! Two-round join-then-aggregate pipelines (§7.1's suggested direction).
//!
//! The paper closes by asking whether the §6.3 two-round analysis extends
//! to "SQL statements that require two phases of map-reduce, e.g., joins
//! followed by aggregations". This module implements the canonical
//! instance — `SELECT A₀, COUNT(*) FROM (chain join) GROUP BY A₀` — in two
//! ways:
//!
//! * **naive**: round 1 computes the full join (Shares), round 2 groups
//!   the result rows by `A₀` and counts — round-2 communication is the
//!   full join size;
//! * **pushed**: round-1 reducers emit *partial counts* per `A₀` instead
//!   of rows — round-2 communication is at most (#reducers × #distinct
//!   A₀), independent of the join size.
//!
//! The partial-count trick is exactly the §6.3 mechanism (associative
//! aggregation lets phase-1 reducers pre-combine), and the measured gap
//! mirrors the matrix-multiplication result: push-down never loses and
//! usually wins by the join's output blow-up factor.

use super::query::Database;
use super::shares::{SharesSchema, TaggedTuple};
use crate::model::ReducerId;
use mr_sim::schema::SchemaJob;
use mr_sim::{
    run_schema, EngineConfig, EngineError, FnMapper, FnReducer, JobMetrics, RoundMetrics,
};
use std::collections::BTreeMap;

/// Group-by-count over the join's first variable, naive two-round plan.
///
/// Returns `(a₀ value, count)` rows sorted by value, plus per-round
/// metrics (round 1 = join shuffle, round 2 = row shuffle).
pub fn count_by_first_var_naive(
    schema: &SharesSchema,
    db: &Database,
    config: &EngineConfig,
) -> Result<(Vec<(u32, u64)>, JobMetrics), EngineError> {
    let (rows, join_metrics) = schema.run(db, config)?;
    let mapper = FnMapper(|row: &Vec<u32>, emit: &mut dyn FnMut(u32, u64)| emit(row[0], 1));
    let reducer = FnReducer(|k: &u32, vs: &[u64], emit: &mut dyn FnMut((u32, u64))| {
        emit((*k, vs.iter().sum()))
    });
    let (counts, agg_metrics) = mr_sim::run_round(&rows, &mapper, &reducer, config)?;
    Ok((
        counts,
        JobMetrics {
            rounds: vec![join_metrics, agg_metrics],
        },
    ))
}

/// A Shares schema whose reducers emit per-`A₀` partial counts instead of
/// join rows.
struct PartialCountSchema<'a>(&'a SharesSchema);

impl SchemaJob<TaggedTuple, (u32, u64)> for PartialCountSchema<'_> {
    fn assign(&self, input: &TaggedTuple) -> Vec<ReducerId> {
        self.0.assign(input)
    }

    fn reduce(&self, reducer: ReducerId, inputs: &[TaggedTuple], emit: &mut dyn FnMut((u32, u64))) {
        // Compute the local join, then fold it to per-A₀ counts before
        // anything leaves the reducer.
        let mut rows = Vec::new();
        self.0.reduce(reducer, inputs, &mut |row| rows.push(row));
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for row in rows {
            *counts.entry(row[0]).or_insert(0) += 1;
        }
        for (a0, c) in counts {
            emit((a0, c));
        }
    }
}

/// Group-by-count with aggregation pushed into the join reducers.
pub fn count_by_first_var_pushed(
    schema: &SharesSchema,
    db: &Database,
    config: &EngineConfig,
) -> Result<(Vec<(u32, u64)>, JobMetrics), EngineError> {
    let inputs: Vec<TaggedTuple> = db
        .tuples
        .iter()
        .enumerate()
        .flat_map(|(a, ts)| ts.iter().map(move |t| (a as u32, t.clone())))
        .collect();
    let wrapper = PartialCountSchema(schema);
    let (partials, join_metrics): (Vec<(u32, u64)>, RoundMetrics) =
        run_schema(&inputs, &wrapper, config)?;

    let mapper = FnMapper(|&(a0, c): &(u32, u64), emit: &mut dyn FnMut(u32, u64)| emit(a0, c));
    let reducer = FnReducer(|k: &u32, vs: &[u64], emit: &mut dyn FnMut((u32, u64))| {
        emit((*k, vs.iter().sum()))
    });
    let (counts, agg_metrics) = mr_sim::run_round(&partials, &mapper, &reducer, config)?;
    Ok((
        counts,
        JobMetrics {
            rounds: vec![join_metrics, agg_metrics],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::join::query::Query;

    fn setup() -> (SharesSchema, Database) {
        let query = Query::chain(3);
        let db = Database::random(&query, 16, 200, 5);
        let schema = SharesSchema::new(query, vec![1, 2, 2, 1]);
        (schema, db)
    }

    /// Ground truth from the serial join.
    fn serial_counts(schema: &SharesSchema, db: &Database) -> Vec<(u32, u64)> {
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for row in db.join(&schema.query) {
            *counts.entry(row[0]).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    #[test]
    fn both_plans_compute_the_same_counts() {
        let (schema, db) = setup();
        let expected = serial_counts(&schema, &db);
        let cfg = EngineConfig::sequential();
        let (naive, _) = count_by_first_var_naive(&schema, &db, &cfg).unwrap();
        let (pushed, _) = count_by_first_var_pushed(&schema, &db, &cfg).unwrap();
        assert_eq!(naive, expected);
        assert_eq!(pushed, expected);
    }

    #[test]
    fn push_down_never_communicates_more() {
        let (schema, db) = setup();
        let cfg = EngineConfig::sequential();
        let (_, naive) = count_by_first_var_naive(&schema, &db, &cfg).unwrap();
        let (_, pushed) = count_by_first_var_pushed(&schema, &db, &cfg).unwrap();
        // Round 1 (join shuffle) is identical; round 2 differs.
        assert_eq!(naive.rounds[0].kv_pairs, pushed.rounds[0].kv_pairs);
        assert!(
            pushed.rounds[1].kv_pairs <= naive.rounds[1].kv_pairs,
            "pushed {} > naive {}",
            pushed.rounds[1].kv_pairs,
            naive.rounds[1].kv_pairs
        );
        assert!(pushed.total_communication() <= naive.total_communication());
    }

    #[test]
    fn push_down_wins_by_the_output_blowup() {
        // On the complete instance the join output is n^m — far larger
        // than the domain — so push-down should save orders of magnitude.
        let query = Query::chain(2);
        let db = Database::complete(&query, 8); // join = 8³ = 512 rows
        let schema = SharesSchema::new(query, vec![1, 4, 1]);
        let cfg = EngineConfig::sequential();
        let (_, naive) = count_by_first_var_naive(&schema, &db, &cfg).unwrap();
        let (_, pushed) = count_by_first_var_pushed(&schema, &db, &cfg).unwrap();
        assert_eq!(naive.rounds[1].kv_pairs, 512);
        // Pushed round 2: at most reducers × distinct A0 = 4 × 8.
        assert!(pushed.rounds[1].kv_pairs <= 32);
        assert!(pushed.total_communication() < naive.total_communication());
    }

    #[test]
    fn parallel_matches_sequential() {
        let (schema, db) = setup();
        let (a, ma) = count_by_first_var_pushed(&schema, &db, &EngineConfig::sequential()).unwrap();
        let (b, mb) = count_by_first_var_pushed(&schema, &db, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(a, b);
        assert_eq!(ma, mb);
    }
}
