//! Triangle finding (§4, Example 2.2).
//!
//! Inputs are the `(n 2)` possible edges of an `n`-node graph; outputs are
//! the `(n 3)` node triples, each depending on its three edges. §4.1 shows
//! `g(q) = (√2/3)·q^{3/2}` (a reducer's edges are densest as a clique on
//! `√(2q)` nodes) giving the lower bound `r ≥ n/√(2q)`; §4.2 rescales the
//! budget for sparse data graphs of `m` random edges to
//! `r = Ω(√(m/q))`.
//!
//! The matching algorithm (after Suri–Vassilvitskii \[21\] and Afrati–
//! Fotakis–Ullman \[2\]) partitions nodes into `k` groups and creates one
//! reducer per unordered group triple (with repetition); an edge is sent
//! to every triple containing both endpoint groups. Replication is
//! ~`k` against a lower bound of `k/3` — matching within a constant
//! factor.

use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_graph::graph::Edge;
use mr_sim::schema::SchemaJob;
use std::collections::HashMap;

/// The triangle-finding problem on `n` nodes, all edges potential.
#[derive(Debug, Clone, Copy)]
pub struct TriangleProblem {
    /// Number of nodes in the (complete) input domain.
    pub n: u32,
}

impl TriangleProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 3, "triangles need at least 3 nodes");
        TriangleProblem { n }
    }

    /// `|I| = (n 2)`.
    pub fn closed_form_inputs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) / 2
    }

    /// `|O| = (n 3)`.
    pub fn closed_form_outputs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) * (n - 2) / 6
    }

    /// The §4.1 recipe: `g(q) = (√2/3)·q^{3/2}`.
    pub fn recipe(&self) -> LowerBoundRecipe {
        LowerBoundRecipe::new(
            g_triangles,
            self.closed_form_inputs() as f64,
            self.closed_form_outputs() as f64,
        )
    }
}

impl Problem for TriangleProblem {
    type Input = (u32, u32);
    type Output = (u32, u32, u32);

    fn inputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.closed_form_inputs() as usize);
        for u in 0..self.n {
            for w in (u + 1)..self.n {
                v.push((u, w));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::with_capacity(self.closed_form_outputs() as usize);
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                for c in (b + 1)..self.n {
                    v.push((a, b, c));
                }
            }
        }
        v
    }

    fn inputs_of(&self, o: &(u32, u32, u32)) -> Vec<(u32, u32)> {
        vec![(o.0, o.1), (o.0, o.2), (o.1, o.2)]
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// §4.1: `g(q) = (√2/3)·q^{3/2}` — the most triangles `q` edges can form.
pub fn g_triangles(q: f64) -> f64 {
    std::f64::consts::SQRT_2 / 3.0 * q.powf(1.5)
}

/// §4.1: the lower bound `r ≥ n/√(2q)`.
pub fn lower_bound_r(n: u32, q: f64) -> f64 {
    n as f64 / (2.0 * q).sqrt()
}

/// §4.2: the *target* budget for sparse graphs — to expect `q` real edges
/// per reducer when only `m` of the `(n 2)` edges are present, a schema may
/// assign up to `q_t = q·n(n−1)/(2m)` potential edges per reducer.
pub fn sparse_target_q(q: f64, n: u32, m: u64) -> f64 {
    let n = n as f64;
    q * n * (n - 1.0) / (2.0 * m as f64)
}

/// §4.2: the sparse-graph lower bound `r = Ω(√(m/q))`.
pub fn sparse_lower_bound_r(m: u64, q: f64) -> f64 {
    (m as f64 / q).sqrt()
}

/// The node-partition triangle schema: nodes hashed into `k` groups,
/// reducers indexed by unordered group triples with repetition.
#[derive(Debug, Clone, Copy)]
pub struct NodePartitionSchema {
    /// Number of nodes.
    pub n: u32,
    /// Number of node groups.
    pub k: u32,
}

impl NodePartitionSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds `n`.
    pub fn new(n: u32, k: u32) -> Self {
        assert!(k >= 1 && k <= n, "k={k} must be in 1..={n}");
        NodePartitionSchema { n, k }
    }

    /// Picks `k` to respect a reducer budget of `q` *potential* edges:
    /// the largest `k` whose per-reducer load `~(3n/k choose 2)` stays
    /// under `q` (coarse inversion of §4.1's `k = √(2q)` node count).
    pub fn for_budget(n: u32, q: u64) -> Self {
        let mut k = 1;
        while k < n {
            let candidate = NodePartitionSchema::new(n, k + 1);
            if candidate.exact_max_load() < q {
                k += 1;
            } else {
                break;
            }
        }
        NodePartitionSchema::new(n, k)
    }

    /// Group of a node (simple modular partition — balanced for the
    /// complete instance the model analyses).
    pub fn group(&self, u: u32) -> u32 {
        u % self.k
    }

    /// Encodes a sorted group triple `a ≤ b ≤ c` as a reducer id.
    fn reducer_id(&self, a: u32, b: u32, c: u32) -> ReducerId {
        debug_assert!(a <= b && b <= c);
        let k = self.k as u64;
        (a as u64) * k * k + (b as u64) * k + c as u64
    }

    /// Decodes a reducer id back to its group triple.
    pub fn decode(&self, id: ReducerId) -> (u32, u32, u32) {
        let k = self.k as u64;
        (
            (id / (k * k)) as u32,
            ((id / k) % k) as u32,
            (id % k) as u32,
        )
    }

    /// The reducer triples an edge is assigned to.
    fn edge_reducers(&self, u: u32, v: u32) -> Vec<ReducerId> {
        let (gu, gv) = (self.group(u), self.group(v));
        let (a, b) = if gu <= gv { (gu, gv) } else { (gv, gu) };
        let mut ids: Vec<ReducerId> = (0..self.k)
            .map(|x| {
                let mut t = [a, b, x];
                t.sort_unstable();
                self.reducer_id(t[0], t[1], t[2])
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Exact maximum reducer load on the complete instance, computed from
    /// group sizes.
    pub fn exact_max_load(&self) -> u64 {
        // Group sizes under u % k.
        let sizes: Vec<u64> = (0..self.k)
            .map(|g| ((self.n - g - 1) / self.k + 1) as u64)
            .collect();
        let within = |g: usize| sizes[g] * (sizes[g] - 1) / 2;
        let cross = |g: usize, h: usize| sizes[g] * sizes[h];
        let k = self.k as usize;
        let mut max = 0u64;
        for a in 0..k {
            for b in a..k {
                for c in b..k {
                    let load = if a == b && b == c {
                        within(a)
                    } else if a == b {
                        within(a) + cross(a, c)
                    } else if b == c {
                        within(b) + cross(a, b)
                    } else {
                        cross(a, b) + cross(a, c) + cross(b, c)
                    };
                    max = max.max(load);
                }
            }
        }
        max
    }

    /// The idealised replication rate ~`k` (each cross-group edge goes to
    /// `k` triples).
    pub fn approx_replication(&self) -> f64 {
        self.k as f64
    }
}

impl MappingSchema<TriangleProblem> for NodePartitionSchema {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        self.edge_reducers(input.0, input.1)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.exact_max_load()
    }

    fn name(&self) -> String {
        format!("node-partition(n={}, k={})", self.n, self.k)
    }
}

/// Running the node-partition schema on a *real* (sparse) data graph via
/// the simulator: reducers enumerate local triangles and the owning
/// reducer (the one matching the triangle's sorted group triple) emits it.
impl SchemaJob<Edge, [u32; 3]> for NodePartitionSchema {
    fn assign(&self, input: &Edge) -> Vec<ReducerId> {
        self.edge_reducers(input.u, input.v)
    }

    fn reduce(&self, reducer: ReducerId, inputs: &[Edge], emit: &mut dyn FnMut([u32; 3])) {
        // Local adjacency over the assigned edges.
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for e in inputs {
            adj.entry(e.u).or_default().push(e.v);
            adj.entry(e.v).or_default().push(e.u);
        }
        for l in adj.values_mut() {
            l.sort_unstable();
        }
        for e in inputs {
            let (u, v) = (e.u, e.v);
            let (nu, nv) = (&adj[&u], &adj[&v]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if w > v {
                            // Canonical triangle u < v < w; emit only at
                            // the owning reducer.
                            let mut gs = [self.group(u), self.group(v), self.group(w)];
                            gs.sort_unstable();
                            if self.reducer_id(gs[0], gs[1], gs[2]) == reducer {
                                emit([u, v, w]);
                            }
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use crate::recipe::max_outputs_covered;
    use mr_graph::{gen, subgraph};
    use mr_sim::{run_schema, EngineConfig};

    #[test]
    fn counts_match_closed_forms() {
        let p = TriangleProblem::new(7);
        assert_eq!(p.inputs().len() as u64, 21);
        assert_eq!(p.outputs().len() as u64, 35);
        assert_eq!(p.num_inputs(), 21);
        assert_eq!(p.num_outputs(), 35);
    }

    #[test]
    fn g_dominates_empirical_coverage() {
        // §4.1's claim, probed exhaustively on K_5 (10 edges).
        let p = TriangleProblem::new(5);
        for q in 3..=10usize {
            let actual = max_outputs_covered(&p, q) as f64;
            // Use the exact clique count C(k,3) at k=√(2q) rounded up as a
            // discretisation-tolerant ceiling of (√2/3)q^{3/2}.
            let k = (2.0 * q as f64).sqrt().ceil();
            let ceiling = k * (k - 1.0) * (k - 2.0) / 6.0 + 1.0;
            assert!(
                actual <= ceiling,
                "q={q}: covered {actual} > ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn clique_meets_g_bound() {
        // All C(k,2) edges among k nodes cover C(k,3) triangles; for
        // k = 4, q = 6 and g(6) = √2/3·6^{1.5} ≈ 6.9 ≥ 4 actual.
        let p = TriangleProblem::new(6);
        let covered = max_outputs_covered(&p, 6) as f64;
        assert_eq!(covered, 4.0);
        assert!(covered <= g_triangles(6.0));
    }

    #[test]
    fn schema_is_valid_across_k() {
        let n = 12;
        let p = TriangleProblem::new(n);
        for k in [1u32, 2, 3, 4, 6] {
            let s = NodePartitionSchema::new(n, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "k={k}: {report:?}");
            // Replication is at most k (cross edges hit exactly k triples,
            // within-group edges can hit more but there are few).
            assert!(
                report.replication_rate <= k as f64 + 1.0,
                "k={k}: r={}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn schema_replication_within_constant_of_lower_bound() {
        let n = 30;
        let p = TriangleProblem::new(n);
        for k in [2u32, 3, 5] {
            let s = NodePartitionSchema::new(n, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid());
            let bound = lower_bound_r(n, report.max_load as f64);
            let ratio = report.replication_rate / bound;
            assert!(
                (0.9..=4.0).contains(&ratio),
                "k={k}: r={} bound={bound} ratio={ratio}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn exact_max_load_matches_validation() {
        let n = 13;
        let p = TriangleProblem::new(n);
        for k in [2u32, 3, 4] {
            let s = NodePartitionSchema::new(n, k);
            let report = validate_schema(&p, &s);
            assert_eq!(report.max_load, s.exact_max_load(), "k={k}");
        }
    }

    #[test]
    fn for_budget_respects_q() {
        let n = 40;
        for q in [100u64, 300, 800] {
            let s = NodePartitionSchema::for_budget(n, q);
            assert!(
                s.k == 1 || s.exact_max_load() < q,
                "q={q}: k={} load={}",
                s.k,
                s.exact_max_load()
            );
        }
    }

    #[test]
    fn simulator_run_finds_exactly_the_triangles() {
        let g = gen::gnm(60, 400, 42);
        let expected = subgraph::triangles(&g);
        let s = NodePartitionSchema::new(60, 4);
        let (mut found, metrics) = run_schema(g.edges(), &s, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        let mut exp: Vec<[u32; 3]> = expected;
        exp.sort_unstable();
        assert_eq!(found, exp);
        // Each edge was replicated to ≤ k reducers.
        assert!(metrics.replication_rate() <= 4.0 + 1e-9);
    }

    #[test]
    fn simulator_run_parallel_matches_sequential() {
        let g = gen::gnm(50, 300, 7);
        let s = NodePartitionSchema::new(50, 3);
        let (seq, m1) = run_schema(g.edges(), &s, &EngineConfig::sequential()).unwrap();
        let (par, m2) = run_schema(g.edges(), &s, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(seq, par);
        assert_eq!(m1, m2);
    }

    #[test]
    fn sparse_rescaling_formulas() {
        let n = 100u32;
        let m = 1000u64;
        let q = 50.0;
        let qt = sparse_target_q(q, n, m);
        assert!((qt - 50.0 * 100.0 * 99.0 / 2000.0).abs() < 1e-9);
        assert!((sparse_lower_bound_r(m, q) - (1000.0f64 / 50.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn k1_sends_everything_to_one_reducer() {
        let s = NodePartitionSchema::new(10, 1);
        let p = TriangleProblem::new(10);
        let report = validate_schema(&p, &s);
        assert!(report.is_valid());
        assert_eq!(report.num_reducers, 1);
        assert!((report.replication_rate - 1.0).abs() < 1e-9);
    }
}
