//! One module per problem family analysed in the paper.
//!
//! | Module | Paper section | Problem |
//! |---|---|---|
//! | [`hamming`] | §3 | bit strings at Hamming distance `d` |
//! | [`triangle`] | §4 | triangles in a data graph |
//! | [`sample_graph`] | §5.1–5.3 | Alon-class sample graphs |
//! | [`two_path`] | §5.4 | paths of length two (non-Alon) |
//! | [`join`] | §5.5 | multiway joins (chains, stars, Shares) |
//! | [`matmul`] | §6 | one- and two-phase matrix multiplication |
//! | [`examples`] | §2.1 | model warm-ups: natural join, word count, grouping |

pub mod examples;
pub mod hamming;
pub mod join;
pub mod matmul;
pub mod sample_graph;
pub mod triangle;
pub mod two_path;

/// A schema usable with any problem: send every input to one reducer
/// (§2.2's trivial extreme, `q = |I|`, `r = 1`).
pub struct SingleReducer {
    q: u64,
}

impl SingleReducer {
    /// Builds the single-reducer schema for a problem with `num_inputs`
    /// potential inputs.
    pub fn new(num_inputs: u64) -> Self {
        SingleReducer { q: num_inputs }
    }
}

impl<P: crate::model::Problem> crate::model::MappingSchema<P> for SingleReducer {
    fn assign(&self, _input: &P::Input) -> Vec<crate::model::ReducerId> {
        vec![0]
    }
    fn max_inputs_per_reducer(&self) -> u64 {
        self.q
    }
    fn name(&self) -> String {
        "single-reducer".into()
    }
}
