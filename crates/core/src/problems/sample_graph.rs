//! Finding instances of a fixed sample graph (§5.1–§5.3).
//!
//! The sample graph `S` (with `s` nodes) is fixed; the data graph is the
//! input. For sample graphs in the **Alon class** (§5.1 — decomposable
//! into single edges and odd Hamiltonian cycles), Alon's theorem bounds the
//! instances in an `m`-edge graph by `O(m^{s/2})`, so `g(q) = q^{s/2}` and
//! the recipe gives `r = Ω((n/√q)^{s−2})` (§5.2), or
//! `Ω((√(m/q))^{s−2})` in terms of edges (§5.3).
//!
//! The matching algorithm generalises the triangle node-partition schema:
//! nodes hashed into `k` groups, one reducer per unordered group multiset
//! of size `s`, each edge sent to every multiset containing both endpoint
//! groups.

use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_graph::alon::is_alon_class;
use mr_graph::graph::{Edge, Graph};
use mr_graph::subgraph;
use mr_sim::schema::SchemaJob;

/// The problem of finding all instances of `pattern` in a data graph on
/// `n` nodes (all `(n 2)` edges potential).
///
/// An output is an instance: a set of data edges forming the pattern,
/// canonically represented by the sorted list of those edges.
#[derive(Debug, Clone)]
pub struct SampleGraphProblem {
    /// The sample graph being searched for.
    pub pattern: Graph,
    /// Number of data-graph nodes.
    pub n: u32,
}

impl SampleGraphProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if the pattern is trivial (fewer than 2 nodes) or larger than
    /// the data graph.
    pub fn new(pattern: Graph, n: u32) -> Self {
        assert!(
            pattern.num_nodes() >= 2,
            "pattern must have at least 2 nodes"
        );
        assert!(
            pattern.num_nodes() <= n as usize,
            "pattern larger than the data graph"
        );
        SampleGraphProblem { pattern, n }
    }

    /// Number of pattern nodes (`s`).
    pub fn s(&self) -> usize {
        self.pattern.num_nodes()
    }

    /// True if the pattern is in the Alon class, making the §5.2 bound
    /// applicable.
    pub fn pattern_is_alon(&self) -> bool {
        is_alon_class(&self.pattern)
    }

    /// `|I| = (n 2)`.
    pub fn closed_form_inputs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) / 2
    }

    /// The §5.2 recipe: `g(q) = q^{s/2}`, `|O| = Θ(n^s)` (we use the exact
    /// instance count on the complete graph).
    pub fn recipe(&self) -> LowerBoundRecipe {
        let s = self.s() as f64;
        let outputs = subgraph::instances(&self.pattern, &Graph::complete(self.n as usize));
        LowerBoundRecipe::new(
            move |q| q.powf(s / 2.0),
            self.closed_form_inputs() as f64,
            outputs as f64,
        )
    }
}

/// §5.2: lower bound in nodes, `r = Ω((n/√q)^{s−2})`.
pub fn lower_bound_nodes(n: u32, s: usize, q: f64) -> f64 {
    (n as f64 / q.sqrt()).powi(s as i32 - 2)
}

/// §5.3: lower bound in edges, `r = Ω((√(m/q))^{s−2})`.
pub fn lower_bound_edges(m: u64, s: usize, q: f64) -> f64 {
    (m as f64 / q).sqrt().powi(s as i32 - 2)
}

impl Problem for SampleGraphProblem {
    type Input = (u32, u32);
    type Output = Vec<(u32, u32)>;

    fn inputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for u in 0..self.n {
            for w in (u + 1)..self.n {
                v.push((u, w));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<Vec<(u32, u32)>> {
        // Enumerate instances of the pattern in the complete graph via the
        // serial baseline, emitting each instance's edge set.
        enumerate_instances(&self.pattern, &Graph::complete(self.n as usize))
    }

    fn inputs_of(&self, output: &Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        output.clone()
    }
}

/// Enumerates instances of `pattern` in `g` as canonical (sorted,
/// deduplicated) edge lists.
pub fn enumerate_instances(pattern: &Graph, g: &Graph) -> Vec<Vec<(u32, u32)>> {
    let s = pattern.num_nodes();
    let mut out: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut assignment: Vec<Option<u32>> = vec![None; s];
    let mut used = vec![false; g.num_nodes()];
    fn recurse(
        pattern: &Graph,
        g: &Graph,
        pos: usize,
        assignment: &mut Vec<Option<u32>>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<(u32, u32)>>,
    ) {
        if pos == pattern.num_nodes() {
            let mut edges: Vec<(u32, u32)> = pattern
                .edges()
                .iter()
                .map(|e| {
                    let a = assignment[e.u as usize].expect("assigned");
                    let b = assignment[e.v as usize].expect("assigned");
                    (a.min(b), a.max(b))
                })
                .collect();
            edges.sort_unstable();
            out.push(edges);
            return;
        }
        'cand: for c in 0..g.num_nodes() as u32 {
            if used[c as usize] {
                continue;
            }
            for &p in pattern.neighbors(pos as u32) {
                if (p as usize) < pos {
                    let img = assignment[p as usize].expect("assigned earlier");
                    if !g.has_edge(img, c) {
                        continue 'cand;
                    }
                }
            }
            assignment[pos] = Some(c);
            used[c as usize] = true;
            recurse(pattern, g, pos + 1, assignment, used, out);
            used[c as usize] = false;
            assignment[pos] = None;
        }
    }
    recurse(pattern, g, 0, &mut assignment, &mut used, &mut out);
    // The backtracking enumerates injective homomorphisms; collapse the
    // |Aut(pattern)| copies of each instance.
    out.sort_unstable();
    out.dedup();
    out
}

/// The generalised node-partition schema: reducers are unordered multisets
/// of `s` groups out of `k`; an edge goes to every multiset containing
/// both endpoint groups.
#[derive(Debug, Clone)]
pub struct MultisetPartitionSchema {
    /// Number of data nodes.
    pub n: u32,
    /// Number of node groups.
    pub k: u32,
    /// Pattern size `s` (multiset arity).
    pub s: usize,
    pattern: Graph,
}

impl MultisetPartitionSchema {
    /// Creates the schema for a given pattern.
    ///
    /// # Panics
    /// Panics if `k == 0` or the pattern has fewer than 2 nodes.
    pub fn new(pattern: Graph, n: u32, k: u32) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(pattern.num_nodes() >= 2, "pattern too small");
        MultisetPartitionSchema {
            n,
            k,
            s: pattern.num_nodes(),
            pattern,
        }
    }

    /// Group of a node.
    pub fn group(&self, u: u32) -> u32 {
        u % self.k
    }

    /// Encodes a sorted multiset of groups as a reducer id (base-`k`
    /// digits).
    fn encode(&self, sorted: &[u32]) -> ReducerId {
        sorted
            .iter()
            .fold(0u64, |acc, &g| acc * self.k as u64 + g as u64)
    }

    /// Decodes a reducer id to its sorted group multiset.
    pub fn decode(&self, id: ReducerId) -> Vec<u32> {
        let k = self.k as u64;
        let mut digits = vec![0u32; self.s];
        let mut rest = id;
        for slot in digits.iter_mut().rev() {
            *slot = (rest % k) as u32;
            rest /= k;
        }
        digits
    }

    /// All sorted multisets of size `s-2` over `0..k` (the "other groups"
    /// an edge is combined with).
    fn fill_multisets(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        fn rec(k: u32, remaining: usize, start: u32, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if remaining == 0 {
                out.push(cur.clone());
                return;
            }
            for g in start..k {
                cur.push(g);
                rec(k, remaining - 1, g, cur, out);
                cur.pop();
            }
        }
        rec(self.k, self.s - 2, 0, &mut cur, &mut out);
        out
    }

    fn edge_reducers(&self, u: u32, v: u32) -> Vec<ReducerId> {
        let (gu, gv) = (self.group(u), self.group(v));
        let mut ids: Vec<ReducerId> = self
            .fill_multisets()
            .iter()
            .map(|fill| {
                let mut ms = fill.clone();
                ms.push(gu);
                ms.push(gv);
                ms.sort_unstable();
                self.encode(&ms)
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The idealised replication rate: an edge with distinct endpoint
    /// groups joins `C(k+s-3, s-2)` multisets — `Θ(k^{s−2}/(s−2)!)`.
    pub fn approx_replication(&self) -> f64 {
        // Multisets of size s-2 over k symbols.
        let (k, s) = (self.k as u64, self.s as u64);
        crate::recipe::binomial(k + s - 3, s - 2) as f64
    }
}

impl MappingSchema<SampleGraphProblem> for MultisetPartitionSchema {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        self.edge_reducers(input.0, input.1)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        // A reducer holds all edges whose endpoint groups fall inside its
        // multiset: at most C(s·⌈n/k⌉, 2).
        let span = self.s as u64 * self.n.div_ceil(self.k) as u64;
        span * (span - 1) / 2
    }

    fn name(&self) -> String {
        format!(
            "multiset-partition(n={}, k={}, s={})",
            self.n, self.k, self.s
        )
    }
}

/// Running the schema on a real data graph: each reducer enumerates the
/// pattern instances among its local edges and emits those it owns (the
/// instance's sorted group multiset equals the reducer's).
impl SchemaJob<Edge, Vec<(u32, u32)>> for MultisetPartitionSchema {
    fn assign(&self, input: &Edge) -> Vec<ReducerId> {
        self.edge_reducers(input.u, input.v)
    }

    fn reduce(&self, reducer: ReducerId, inputs: &[Edge], emit: &mut dyn FnMut(Vec<(u32, u32)>)) {
        // Build a local graph on the original node ids.
        let mut local = Graph::new(self.n as usize);
        for e in inputs {
            local.add_edge(e.u, e.v);
        }
        local.finish();
        for inst in enumerate_instances(&self.pattern, &local) {
            // Owning reducer: the sorted multiset of the instance's node
            // groups.
            let mut nodes: Vec<u32> = inst.iter().flat_map(|&(a, b)| [a, b]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            let mut gs: Vec<u32> = nodes.iter().map(|&u| self.group(u)).collect();
            gs.sort_unstable();
            if self.encode(&gs) == reducer {
                emit(inst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use mr_graph::{gen, patterns};
    use mr_sim::{run_schema, EngineConfig};

    #[test]
    fn problem_counts_for_triangle_pattern() {
        let p = SampleGraphProblem::new(patterns::triangle(), 6);
        assert_eq!(p.num_inputs(), 15);
        assert_eq!(p.num_outputs(), 20); // C(6,3)
        assert!(p.pattern_is_alon());
    }

    #[test]
    fn instances_have_correct_edge_counts() {
        let p = SampleGraphProblem::new(patterns::cycle(4), 6);
        for inst in p.outputs() {
            assert_eq!(inst.len(), 4, "C4 instance must have 4 edges");
        }
        // 3·C(6,4) distinct 4-cycles.
        assert_eq!(p.num_outputs(), 45);
    }

    #[test]
    fn two_path_pattern_is_not_alon() {
        let p = SampleGraphProblem::new(patterns::two_path(), 5);
        assert!(!p.pattern_is_alon());
    }

    #[test]
    fn schema_valid_for_c4_and_k4() {
        for pattern in [patterns::cycle(4), patterns::clique(4)] {
            let n = 8;
            let problem = SampleGraphProblem::new(pattern.clone(), n);
            for k in [1u32, 2, 3] {
                let s = MultisetPartitionSchema::new(pattern.clone(), n, k);
                let report = validate_schema(&problem, &s);
                assert!(report.is_valid(), "k={k}: {report:?}");
            }
        }
    }

    #[test]
    fn schema_reduces_to_triangle_schema_for_k3_pattern() {
        let n = 10;
        let problem = SampleGraphProblem::new(patterns::triangle(), n);
        let s = MultisetPartitionSchema::new(patterns::triangle(), n, 3);
        let report = validate_schema(&problem, &s);
        assert!(report.is_valid());
        // Triangle: s=2+1, fill multisets of size 1 → ≤ k reducers/edge.
        assert!(report.replication_rate <= 3.0 + 1e-9);
    }

    #[test]
    fn replication_grows_like_k_to_s_minus_2() {
        let n = 24;
        let pattern = patterns::cycle(4); // s = 4
        let problem = SampleGraphProblem::new(pattern.clone(), n);
        let mut prev = 0.0;
        for k in [2u32, 3, 4] {
            let s = MultisetPartitionSchema::new(pattern.clone(), n, k);
            let report = validate_schema(&problem, &s);
            assert!(report.is_valid(), "k={k}");
            assert!(report.replication_rate > prev, "k={k} should increase r");
            prev = report.replication_rate;
            // Within a constant of C(k+1, 2) (multisets of size 2 over k).
            let ideal = s.approx_replication();
            assert!(
                report.replication_rate <= ideal + 1e-9,
                "k={k}: r={} ideal={ideal}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn simulator_finds_all_c4_instances() {
        let g = gen::gnm(20, 60, 5);
        let pattern = patterns::cycle(4);
        let schema = MultisetPartitionSchema::new(pattern.clone(), 20, 3);
        let (mut found, _) = run_schema(g.edges(), &schema, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        found.dedup();
        let expected = enumerate_instances(&pattern, &g);
        assert_eq!(found, expected);
    }

    #[test]
    fn no_duplicate_emissions() {
        let g = gen::gnm(16, 50, 9);
        let pattern = patterns::triangle();
        let schema = MultisetPartitionSchema::new(pattern.clone(), 16, 4);
        let (found, _) = run_schema(g.edges(), &schema, &EngineConfig::sequential()).unwrap();
        let mut sorted = found.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(found.len(), sorted.len(), "duplicate instances emitted");
    }

    #[test]
    fn lower_bound_formulas() {
        // s = 3 reduces to the triangle bound shape n/√q.
        assert!((lower_bound_nodes(100, 3, 25.0) - 20.0).abs() < 1e-9);
        // s = 4, edges form: (√(m/q))².
        assert!((lower_bound_edges(1000, 4, 10.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn recipe_bound_matches_formula_shape() {
        let n = 12;
        let p = SampleGraphProblem::new(patterns::triangle(), n);
        let recipe = p.recipe();
        // For triangles the generic q^{s/2} recipe must be within a
        // constant of the §4.1 bound n/√(2q).
        for q in [6.0, 15.0, 30.0] {
            let generic = recipe.replication_lower_bound(q);
            let specific = crate::problems::triangle::lower_bound_r(n, q);
            let ratio = generic / specific;
            assert!(
                (0.1..=2.0).contains(&ratio),
                "q={q}: generic {generic} vs specific {specific}"
            );
        }
    }
}
