//! Two-phase matrix multiplication (§6.3).
//!
//! Phase 1 tiles the `(i, j, k)` cube into blocks of `s` rows × `s`
//! columns × `t` j-values; each block reducer computes partial sums
//! `Σ_{j∈block} r_ij·s_jk` for its `s²` output cells. Phase 2 groups the
//! partials by `(i, k)` and adds them. Total communication is
//! `2n³/s + n³/t`; under the reducer budget `q = 2st` the Lagrangean
//! optimum is `s = 2t` (aspect ratio 2:1), i.e. `s = √q`, `t = √q/2`,
//! giving `4n³/√q` — less than the one-phase `4n⁴/q` whenever `q < n²`.

use super::matrix::Matrix;
use super::problem::{numeric_inputs, MatEntry, NumericEntry};
use mr_sim::{EngineConfig, EngineError, FnMapper, FnReducer, Job, JobMetrics};

/// A partial or final output cell `(i, k, f64 bits)`.
pub type Cell = (u32, u32, [u8; 8]);

/// The two-phase algorithm with first-phase blocks of `s × s × t`.
#[derive(Debug, Clone, Copy)]
pub struct TwoPhaseMatMul {
    /// Matrix side length.
    pub n: u32,
    /// Row/column block side (must divide `n`).
    pub s: u32,
    /// j-dimension block depth (must divide `n`).
    pub t: u32,
}

impl TwoPhaseMatMul {
    /// Creates the job description.
    ///
    /// # Panics
    /// Panics unless `s` and `t` both divide `n`.
    pub fn new(n: u32, s: u32, t: u32) -> Self {
        assert!(
            s >= 1 && s <= n && n.is_multiple_of(s),
            "s={s} must divide n={n}"
        );
        assert!(
            t >= 1 && t <= n && n.is_multiple_of(t),
            "t={t} must divide n={n}"
        );
        TwoPhaseMatMul { n, s, t }
    }

    /// Picks the §6.3-optimal `(s, t)` for a budget `q = 2st`: the
    /// divisors of `n` closest to `s = √q`, `t = √q/2` subject to
    /// `2st ≤ q`.
    pub fn for_budget(n: u32, q: u64) -> Self {
        let divisors: Vec<u32> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
        let mut best: Option<(f64, u32, u32)> = None;
        for &s in &divisors {
            for &t in &divisors {
                if 2 * (s as u64) * (t as u64) > q {
                    continue;
                }
                let comm = self_comm(n, s, t);
                if best.is_none_or(|(c, _, _)| comm < c) {
                    best = Some((comm, s, t));
                }
            }
        }
        let (_, s, t) = best.expect("s = t = 1 is always feasible");
        TwoPhaseMatMul::new(n, s, t)
    }

    /// First-phase reducer size `q = 2st`.
    pub fn q(&self) -> u64 {
        2 * self.s as u64 * self.t as u64
    }

    /// Predicted total communication `2n³/s + n³/t`.
    pub fn predicted_communication(&self) -> f64 {
        self_comm(self.n, self.s, self.t)
    }

    /// Encodes a phase-1 cube id from block coordinates.
    fn cube(&self, bi: u64, bk: u64, bj: u64) -> u64 {
        let rb = (self.n / self.s) as u64; // row/col blocks
        let jb = (self.n / self.t) as u64;
        (bi * rb + bk) * jb + bj
    }

    /// Builds the two-round simulator job.
    pub fn job(&self) -> Job<NumericEntry, Cell> {
        let (n, s, t) = (self.n, self.s, self.t);
        let me = *self;
        let rb = (n / s) as u64;
        let jb = (n / t) as u64;

        let phase1_map = FnMapper(
            move |input: &NumericEntry, emit: &mut dyn FnMut(u64, NumericEntry)| {
                let (entry, _bits) = input;
                match entry {
                    MatEntry::R(i, j) => {
                        let bi = (*i / s) as u64;
                        let bj = (*j / t) as u64;
                        for bk in 0..rb {
                            emit(me.cube(bi, bk, bj), *input);
                        }
                    }
                    MatEntry::S(j, k) => {
                        let bj = (*j / t) as u64;
                        let bk = (*k / s) as u64;
                        for bi in 0..rb {
                            emit(me.cube(bi, bk, bj), *input);
                        }
                    }
                }
            },
        );

        let phase1_reduce = FnReducer(
            move |cube: &u64, inputs: &[NumericEntry], emit: &mut dyn FnMut(Cell)| {
                let bj = cube % jb;
                let bk = (cube / jb) % rb;
                let bi = cube / jb / rb;
                let (row0, col0, j0) = (
                    bi as usize * s as usize,
                    bk as usize * s as usize,
                    bj as usize * t as usize,
                );
                let (su, tu) = (s as usize, t as usize);
                // Local s×t and t×s blocks.
                let mut rblock = vec![0.0f64; su * tu];
                let mut sblock = vec![0.0f64; tu * su];
                for (e, bits) in inputs {
                    let val = f64::from_bits(u64::from_be_bytes(*bits));
                    match e {
                        MatEntry::R(i, j) => {
                            rblock[(*i as usize - row0) * tu + (*j as usize - j0)] = val;
                        }
                        MatEntry::S(j, k) => {
                            sblock[(*j as usize - j0) * su + (*k as usize - col0)] = val;
                        }
                    }
                }
                for di in 0..su {
                    for dk in 0..su {
                        let mut acc = 0.0;
                        for dj in 0..tu {
                            acc += rblock[di * tu + dj] * sblock[dj * su + dk];
                        }
                        emit((
                            (row0 + di) as u32,
                            (col0 + dk) as u32,
                            acc.to_bits().to_be_bytes(),
                        ));
                    }
                }
            },
        );

        let phase2_map = FnMapper(
            move |cell: &Cell, emit: &mut dyn FnMut((u32, u32), [u8; 8])| {
                emit((cell.0, cell.1), cell.2);
            },
        );

        let phase2_reduce = FnReducer(
            move |key: &(u32, u32), partials: &[[u8; 8]], emit: &mut dyn FnMut(Cell)| {
                let sum: f64 = partials
                    .iter()
                    .map(|bits| f64::from_bits(u64::from_be_bytes(*bits)))
                    .sum();
                emit((key.0, key.1, sum.to_bits().to_be_bytes()));
            },
        );

        Job::single(phase1_map, phase1_reduce).then(phase2_map, phase2_reduce)
    }

    /// Runs the two-phase multiplication end to end.
    pub fn run(
        &self,
        r: &Matrix,
        s_mat: &Matrix,
        config: &EngineConfig,
    ) -> Result<(Matrix, JobMetrics), EngineError> {
        let inputs = numeric_inputs(r, s_mat);
        let (cells, metrics) = self.job().run(inputs, config)?;
        let n = r.n();
        let mut out = Matrix::zeros(n);
        for (i, k, bits) in cells {
            out[(i as usize, k as usize)] = f64::from_bits(u64::from_be_bytes(bits));
        }
        Ok((out, metrics))
    }
}

fn self_comm(n: u32, s: u32, t: u32) -> f64 {
    let n = n as f64;
    2.0 * n.powi(3) / s as f64 + n.powi(3) / t as f64
}

/// §6.3: total communication of the optimal two-phase method, `4n³/√q`.
pub fn two_phase_communication(n: u32, q: f64) -> f64 {
    4.0 * (n as f64).powi(3) / q.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::matmul::problem::one_phase_communication;

    #[test]
    fn two_phase_computes_correct_product() {
        let n = 12;
        let a = Matrix::random(n, 7);
        let b = Matrix::random(n, 8);
        let expected = a.multiply(&b);
        for (s, t) in [(2u32, 1u32), (4, 2), (6, 3), (3, 4)] {
            let alg = TwoPhaseMatMul::new(n as u32, s, t);
            let (got, _) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
            assert!(
                got.max_abs_diff(&expected) < 1e-9,
                "(s={s}, t={t}): wrong product"
            );
        }
    }

    #[test]
    fn communication_matches_prediction_exactly() {
        let n = 12u32;
        let a = Matrix::random(n as usize, 1);
        let b = Matrix::random(n as usize, 2);
        for (s, t) in [(4u32, 2u32), (2, 2), (6, 3)] {
            let alg = TwoPhaseMatMul::new(n, s, t);
            let (_, metrics) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
            // Phase 1: 2n²·(n/s); phase 2: n³/t.
            let p1 = 2 * (n as u64).pow(2) * (n as u64 / s as u64);
            let p2 = (n as u64).pow(3) / t as u64;
            assert_eq!(metrics.rounds[0].kv_pairs, p1, "(s={s},t={t}) phase 1");
            assert_eq!(metrics.rounds[1].kv_pairs, p2, "(s={s},t={t}) phase 2");
            assert_eq!(metrics.total_communication(), p1 + p2);
            assert!((alg.predicted_communication() - (p1 + p2) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn first_phase_reducer_size_is_2st() {
        let n = 8u32;
        let a = Matrix::random(n as usize, 3);
        let b = Matrix::random(n as usize, 4);
        let alg = TwoPhaseMatMul::new(n, 4, 2);
        let (_, metrics) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
        assert_eq!(metrics.rounds[0].load.max, alg.q());
        // Every phase-1 reducer is exactly full: s·t R-entries + t·s S.
        assert_eq!(metrics.rounds[0].load.min, alg.q());
    }

    #[test]
    fn aspect_ratio_2_to_1_is_optimal() {
        // Among (s, t) with equal budget 2st, s = 2t minimises
        // communication (§6.3's Lagrangean result).
        let n = 32u32;
        // Budget q = 2·8·4 = 64: candidates (s,t) with st = 32.
        let candidates = [(8u32, 4u32), (4, 8), (2, 16), (16, 2)];
        let comms: Vec<f64> = candidates
            .iter()
            .map(|&(s, t)| TwoPhaseMatMul::new(n, s, t).predicted_communication())
            .collect();
        let best = comms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(comms[0], best, "s=2t should win: {comms:?}");
    }

    #[test]
    fn two_phase_beats_one_phase_below_n_squared() {
        let n = 64u32;
        for q in [128.0, 512.0, 2048.0] {
            assert!(q < (n * n) as f64);
            assert!(
                two_phase_communication(n, q) < one_phase_communication(n, q),
                "q={q}"
            );
        }
        // At q = n² they tie.
        let q = (n * n) as f64;
        let one = one_phase_communication(n, q);
        let two = two_phase_communication(n, q);
        assert!((one - two).abs() / one < 1e-9);
    }

    #[test]
    fn for_budget_respects_q_and_picks_good_shape() {
        let n = 24u32;
        for q in [16u64, 64, 256] {
            let alg = TwoPhaseMatMul::for_budget(n, q);
            assert!(alg.q() <= q, "q={q}: got 2st = {}", alg.q());
            // Within a factor 2 of the analytic optimum 4n³/√q (divisor
            // rounding costs a constant).
            let ideal = two_phase_communication(n, q as f64);
            assert!(
                alg.predicted_communication() <= 2.5 * ideal,
                "q={q}: {} vs ideal {ideal}",
                alg.predicted_communication()
            );
        }
    }

    #[test]
    fn parallel_two_phase_is_deterministic() {
        let n = 8;
        let a = Matrix::random(n, 11);
        let b = Matrix::random(n, 12);
        let alg = TwoPhaseMatMul::new(n as u32, 2, 2);
        let (seq, m1) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
        let (par, m2) = alg.run(&a, &b, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(seq, par);
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_divisor_s() {
        TwoPhaseMatMul::new(10, 3, 2);
    }
}
