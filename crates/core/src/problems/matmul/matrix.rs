//! Dense square matrices and the serial multiplication baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense `n×n` matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A seeded random matrix with entries uniform in `[-1, 1)`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix {
            n,
            data: (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect(),
        }
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != n²`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "need n² entries");
        Matrix { n, data }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Serial product baseline (ikj loop order).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn multiply(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let r = self[(i, k)];
                if r == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += r * other[(k, j)];
                }
            }
        }
        out
    }

    /// Max absolute entry difference against another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(8, 1);
        let i = Matrix::identity(8);
        assert_eq!(a.multiply(&i), a);
        assert_eq!(i.multiply(&a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.multiply(&b);
        assert_eq!(c, Matrix::from_rows(2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn zeros_product_is_zero() {
        let a = Matrix::random(5, 2);
        let z = Matrix::zeros(5);
        assert_eq!(a.multiply(&z), z);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(6, 9), Matrix::random(6, 9));
        assert_ne!(Matrix::random(6, 9), Matrix::random(6, 10));
    }

    #[test]
    fn max_abs_diff_metric() {
        let a = Matrix::from_rows(2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Matrix::from_rows(2, vec![1.0, 0.5, 0.0, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
