//! Rectangular matrix multiplication — the natural generalisation of §6.
//!
//! `R` is `m×n`, `S` is `n×p`, `T = R·S` is `m×p`. The §6.1 rectangle
//! argument survives unchanged: a reducer covering outputs in `w` rows and
//! `h` columns needs `n(w+h) ≤ q` inputs and covers `w·h` outputs, so
//! `g(q) = q²/(4n²)` and
//!
//! ```text
//! r ≥ q·|O| / (g(q)·|I|) = 4·n·m·p / (q·(m + p))
//! ```
//!
//! which reduces to the paper's `2n²/q` at `m = n = p`. The matching
//! one-phase schema tiles rows into groups of `s_r` and columns into
//! groups of `s_c`; balancing the two replication terms gives
//! `s_r/s_c = m/p`-independent optimal shapes via `w = h` in the bound —
//! i.e. square output tiles remain optimal.

use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_sim::schema::SchemaJob;
use mr_sim::{run_schema, EngineConfig, EngineError, RoundMetrics};

/// One potential input of the rectangular problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RectEntry {
    /// `R[i][j]`, `i < m`, `j < n`.
    R(u32, u32),
    /// `S[j][k]`, `j < n`, `k < p`.
    S(u32, u32),
}

/// The `m×n · n×p` multiplication problem.
#[derive(Debug, Clone, Copy)]
pub struct RectMatMulProblem {
    /// Rows of `R` (and of the output).
    pub m: u32,
    /// Inner dimension.
    pub n: u32,
    /// Columns of `S` (and of the output).
    pub p: u32,
}

impl RectMatMulProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(m: u32, n: u32, p: u32) -> Self {
        assert!(m > 0 && n > 0 && p > 0, "dimensions must be positive");
        RectMatMulProblem { m, n, p }
    }

    /// `|I| = mn + np`.
    pub fn closed_form_inputs(&self) -> u64 {
        (self.m as u64 + self.p as u64) * self.n as u64
    }

    /// `|O| = mp`.
    pub fn closed_form_outputs(&self) -> u64 {
        self.m as u64 * self.p as u64
    }

    /// The generalised recipe: `g(q) = q²/(4n²)`.
    pub fn recipe(&self) -> LowerBoundRecipe {
        let n = self.n as f64;
        LowerBoundRecipe::new(
            move |q| q * q / (4.0 * n * n),
            self.closed_form_inputs() as f64,
            self.closed_form_outputs() as f64,
        )
    }
}

/// The generalised lower bound `r ≥ 4·n·m·p / (q·(m+p))`.
pub fn rect_lower_bound(m: u32, n: u32, p: u32, q: f64) -> f64 {
    4.0 * n as f64 * m as f64 * p as f64 / (q * (m as f64 + p as f64))
}

impl Problem for RectMatMulProblem {
    type Input = RectEntry;
    type Output = (u32, u32);

    fn inputs(&self) -> Vec<RectEntry> {
        let mut v = Vec::with_capacity(self.closed_form_inputs() as usize);
        for i in 0..self.m {
            for j in 0..self.n {
                v.push(RectEntry::R(i, j));
            }
        }
        for j in 0..self.n {
            for k in 0..self.p {
                v.push(RectEntry::S(j, k));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.closed_form_outputs() as usize);
        for i in 0..self.m {
            for k in 0..self.p {
                v.push((i, k));
            }
        }
        v
    }

    fn inputs_of(&self, o: &(u32, u32)) -> Vec<RectEntry> {
        let (i, k) = *o;
        let mut v = Vec::with_capacity(2 * self.n as usize);
        for j in 0..self.n {
            v.push(RectEntry::R(i, j));
        }
        for j in 0..self.n {
            v.push(RectEntry::S(j, k));
        }
        v
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// One-phase tiling for the rectangular problem: row groups of `sr`
/// (dividing `m`) and column groups of `sc` (dividing `p`). Reducer size
/// is `n(sr + sc)`; replication is `p/sc` for `R` entries and `m/sr` for
/// `S` entries.
#[derive(Debug, Clone, Copy)]
pub struct RectOnePhaseSchema {
    /// Problem dimensions.
    pub dims: RectMatMulProblem,
    /// Row-group size (divides `m`).
    pub sr: u32,
    /// Column-group size (divides `p`).
    pub sc: u32,
}

impl RectOnePhaseSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `sr | m` and `sc | p`.
    pub fn new(dims: RectMatMulProblem, sr: u32, sc: u32) -> Self {
        assert!(
            sr >= 1 && sr <= dims.m && dims.m.is_multiple_of(sr),
            "sr={sr} must divide m={}",
            dims.m
        );
        assert!(
            sc >= 1 && sc <= dims.p && dims.p.is_multiple_of(sc),
            "sc={sc} must divide p={}",
            dims.p
        );
        RectOnePhaseSchema { dims, sr, sc }
    }

    /// Reducer size `q = n(sr + sc)`.
    pub fn q(&self) -> u64 {
        self.dims.n as u64 * (self.sr as u64 + self.sc as u64)
    }

    /// Exact replication rate:
    /// `(mn·(p/sc) + np·(m/sr)) / (mn + np)`.
    pub fn replication(&self) -> f64 {
        let (m, n, p) = (self.dims.m as f64, self.dims.n as f64, self.dims.p as f64);
        let r_rep = p / self.sc as f64;
        let s_rep = m / self.sr as f64;
        (m * n * r_rep + n * p * s_rep) / (m * n + n * p)
    }

    fn col_groups(&self) -> u64 {
        (self.dims.p / self.sc) as u64
    }

    fn reducer(&self, gi: u64, gk: u64) -> ReducerId {
        gi * self.col_groups() + gk
    }

    fn assign_entry(&self, e: &RectEntry) -> Vec<ReducerId> {
        match e {
            RectEntry::R(i, _) => {
                let gi = (*i / self.sr) as u64;
                (0..self.col_groups())
                    .map(|gk| self.reducer(gi, gk))
                    .collect()
            }
            RectEntry::S(_, k) => {
                let gk = (*k / self.sc) as u64;
                (0..(self.dims.m / self.sr) as u64)
                    .map(|gi| self.reducer(gi, gk))
                    .collect()
            }
        }
    }
}

impl MappingSchema<RectMatMulProblem> for RectOnePhaseSchema {
    fn assign(&self, input: &RectEntry) -> Vec<ReducerId> {
        self.assign_entry(input)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.q()
    }

    fn name(&self) -> String {
        format!(
            "rect-one-phase(m={}, n={}, p={}, sr={}, sc={})",
            self.dims.m, self.dims.n, self.dims.p, self.sr, self.sc
        )
    }
}

/// A numeric rectangular entry for simulator runs.
pub type RectNumericEntry = (RectEntry, [u8; 8]);

/// Packs row-major `m×n` and `n×p` slices into simulator inputs.
pub fn rect_numeric_inputs(
    m: usize,
    n: usize,
    p: usize,
    r: &[f64],
    s: &[f64],
) -> Vec<RectNumericEntry> {
    assert_eq!(r.len(), m * n, "R must be m×n");
    assert_eq!(s.len(), n * p, "S must be n×p");
    let mut v = Vec::with_capacity(m * n + n * p);
    for i in 0..m {
        for j in 0..n {
            v.push((
                RectEntry::R(i as u32, j as u32),
                r[i * n + j].to_bits().to_be_bytes(),
            ));
        }
    }
    for j in 0..n {
        for k in 0..p {
            v.push((
                RectEntry::S(j as u32, k as u32),
                s[j * p + k].to_bits().to_be_bytes(),
            ));
        }
    }
    v
}

impl SchemaJob<RectNumericEntry, (u32, u32, [u8; 8])> for RectOnePhaseSchema {
    fn assign(&self, input: &RectNumericEntry) -> Vec<ReducerId> {
        self.assign_entry(&input.0)
    }

    fn reduce(
        &self,
        reducer: ReducerId,
        inputs: &[RectNumericEntry],
        emit: &mut dyn FnMut((u32, u32, [u8; 8])),
    ) {
        let cg = self.col_groups();
        let (gi, gk) = (reducer / cg, reducer % cg);
        let (srn, scn, n) = (self.sr as usize, self.sc as usize, self.dims.n as usize);
        let row0 = gi as usize * srn;
        let col0 = gk as usize * scn;
        let mut rblock = vec![0.0f64; srn * n];
        let mut sblock = vec![0.0f64; n * scn];
        for (e, bits) in inputs {
            let val = f64::from_bits(u64::from_be_bytes(*bits));
            match e {
                RectEntry::R(i, j) => rblock[(*i as usize - row0) * n + *j as usize] = val,
                RectEntry::S(j, k) => sblock[*j as usize * scn + (*k as usize - col0)] = val,
            }
        }
        for di in 0..srn {
            for dk in 0..scn {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += rblock[di * n + j] * sblock[j * scn + dk];
                }
                emit((
                    (row0 + di) as u32,
                    (col0 + dk) as u32,
                    acc.to_bits().to_be_bytes(),
                ));
            }
        }
    }
}

/// Runs the rectangular one-phase algorithm end to end. `r` and `s` are
/// row-major `m×n` and `n×p` slices; the result is row-major `m×p`.
pub fn run_rect_one_phase(
    schema: &RectOnePhaseSchema,
    r: &[f64],
    s: &[f64],
    config: &EngineConfig,
) -> Result<(Vec<f64>, RoundMetrics), EngineError> {
    let (m, n, p) = (
        schema.dims.m as usize,
        schema.dims.n as usize,
        schema.dims.p as usize,
    );
    let inputs = rect_numeric_inputs(m, n, p, r, s);
    let (cells, metrics) = run_schema(&inputs, schema, config)?;
    let mut out = vec![0.0f64; m * p];
    for (i, k, bits) in cells {
        out[i as usize * p + k as usize] = f64::from_bits(u64::from_be_bytes(bits));
    }
    Ok((out, metrics))
}

/// Serial rectangular product baseline (row-major slices).
pub fn rect_multiply(m: usize, n: usize, p: usize, r: &[f64], s: &[f64]) -> Vec<f64> {
    assert_eq!(r.len(), m * n);
    assert_eq!(s.len(), n * p);
    let mut out = vec![0.0f64; m * p];
    for i in 0..m {
        for j in 0..n {
            let rv = r[i * n + j];
            if rv == 0.0 {
                continue;
            }
            for k in 0..p {
                out[i * p + k] += rv * s[j * p + k];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use crate::problems::matmul::problem::lower_bound_r as square_bound;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_slice(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    #[test]
    fn counts_match_closed_forms() {
        let p = RectMatMulProblem::new(4, 6, 8);
        assert_eq!(p.inputs().len() as u64, p.num_inputs());
        assert_eq!(p.outputs().len() as u64, p.num_outputs());
        assert_eq!(p.num_inputs(), (4 + 8) * 6);
        assert_eq!(p.num_outputs(), 32);
        assert_eq!(p.inputs_of(&(0, 0)).len(), 12);
    }

    #[test]
    fn lower_bound_reduces_to_square_case() {
        for n in [8u32, 16] {
            for q in [32.0, 64.0] {
                let rect = rect_lower_bound(n, n, n, q);
                let square = square_bound(n, q);
                assert!(
                    (rect - square).abs() < 1e-9,
                    "n={n} q={q}: {rect} vs {square}"
                );
            }
        }
    }

    #[test]
    fn schema_valid_and_replication_matches_formula() {
        let dims = RectMatMulProblem::new(6, 4, 10);
        for (sr, sc) in [(1u32, 1u32), (2, 5), (3, 2), (6, 10)] {
            let schema = RectOnePhaseSchema::new(dims, sr, sc);
            let report = validate_schema(&dims, &schema);
            assert!(report.is_valid(), "(sr={sr},sc={sc}): {report:?}");
            assert!(
                (report.replication_rate - schema.replication()).abs() < 1e-9,
                "(sr={sr},sc={sc}): measured {} vs formula {}",
                report.replication_rate,
                schema.replication()
            );
            assert_eq!(report.max_load, schema.q());
        }
    }

    #[test]
    fn replication_respects_generalised_lower_bound() {
        let dims = RectMatMulProblem::new(8, 4, 12);
        let recipe = dims.recipe();
        for (sr, sc) in [(2u32, 3u32), (4, 6), (8, 12)] {
            let schema = RectOnePhaseSchema::new(dims, sr, sc);
            let report = validate_schema(&dims, &schema);
            let bound = recipe.clamped_lower_bound(report.max_load as f64);
            assert!(
                report.replication_rate >= bound - 1e-9,
                "(sr={sr},sc={sc}): r={} < bound {bound}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn balanced_tiles_are_cheapest_at_equal_budget() {
        // For m = p, sr = sc dominates skewed tiles with the same q.
        let dims = RectMatMulProblem::new(12, 4, 12);
        let balanced = RectOnePhaseSchema::new(dims, 4, 4); // q = 32
        let skewed = RectOnePhaseSchema::new(dims, 2, 6); // q = 32
        assert_eq!(balanced.q(), skewed.q());
        assert!(balanced.replication() < skewed.replication());
    }

    #[test]
    fn numeric_product_is_exact() {
        let (m, n, p) = (6usize, 5usize, 8usize);
        let r = random_slice(m * n, 1);
        let s = random_slice(n * p, 2);
        let expected = rect_multiply(m, n, p, &r, &s);
        let dims = RectMatMulProblem::new(m as u32, n as u32, p as u32);
        for (sr, sc) in [(2u32, 4u32), (3, 2), (6, 8)] {
            let schema = RectOnePhaseSchema::new(dims, sr, sc);
            for cfg in [EngineConfig::sequential(), EngineConfig::parallel(3)] {
                let (got, _) = run_rect_one_phase(&schema, &r, &s, &cfg).unwrap();
                let max_diff = got
                    .iter()
                    .zip(&expected)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                assert!(max_diff < 1e-9, "(sr={sr},sc={sc}): diff {max_diff}");
            }
        }
    }

    #[test]
    fn tall_skinny_case() {
        // m >> p: the bound 4nmp/(q(m+p)) ≈ 4np/q — dominated by the
        // smaller dimension, and the schema still matches.
        let dims = RectMatMulProblem::new(32, 4, 2);
        let schema = RectOnePhaseSchema::new(dims, 8, 2);
        let report = validate_schema(&dims, &schema);
        assert!(report.is_valid());
        let bound = rect_lower_bound(32, 4, 2, report.max_load as f64);
        assert!(report.replication_rate >= bound - 1e-9);
        // Within a small constant (tile shape can't be perfectly square
        // when p is tiny).
        assert!(report.replication_rate <= 4.0 * bound);
    }
}
