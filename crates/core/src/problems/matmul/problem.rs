//! The matrix-multiplication model instance and the one-phase algorithm
//! (§6.1, §6.2).

use super::matrix::Matrix;
use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_sim::schema::SchemaJob;
use mr_sim::{run_schema, EngineConfig, EngineError, RoundMetrics};

/// One potential input: an entry of `R` or of `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatEntry {
    /// `R[i][j]`.
    R(u32, u32),
    /// `S[j][k]`.
    S(u32, u32),
}

/// The `n×n` matrix multiplication problem: `|I| = 2n²`, `|O| = n²`, and
/// output `(i,k)` depends on row `i` of `R` and column `k` of `S`.
#[derive(Debug, Clone, Copy)]
pub struct MatMulProblem {
    /// Matrix side length.
    pub n: u32,
}

impl MatMulProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "matrices must be non-empty");
        MatMulProblem { n }
    }

    /// `|I| = 2n²`.
    pub fn closed_form_inputs(&self) -> u64 {
        2 * (self.n as u64) * (self.n as u64)
    }

    /// `|O| = n²`.
    pub fn closed_form_outputs(&self) -> u64 {
        (self.n as u64) * (self.n as u64)
    }

    /// The §6.1 recipe: `g(q) = q²/(4n²)`.
    pub fn recipe(&self) -> LowerBoundRecipe {
        let n = self.n as f64;
        LowerBoundRecipe::new(
            move |q| q * q / (4.0 * n * n),
            self.closed_form_inputs() as f64,
            self.closed_form_outputs() as f64,
        )
    }
}

impl Problem for MatMulProblem {
    type Input = MatEntry;
    type Output = (u32, u32);

    fn inputs(&self) -> Vec<MatEntry> {
        let mut v = Vec::with_capacity(self.closed_form_inputs() as usize);
        for i in 0..self.n {
            for j in 0..self.n {
                v.push(MatEntry::R(i, j));
            }
        }
        for j in 0..self.n {
            for k in 0..self.n {
                v.push(MatEntry::S(j, k));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.closed_form_outputs() as usize);
        for i in 0..self.n {
            for k in 0..self.n {
                v.push((i, k));
            }
        }
        v
    }

    fn inputs_of(&self, o: &(u32, u32)) -> Vec<MatEntry> {
        let (i, k) = *o;
        let mut v = Vec::with_capacity(2 * self.n as usize);
        for j in 0..self.n {
            v.push(MatEntry::R(i, j));
        }
        for j in 0..self.n {
            v.push(MatEntry::S(j, k));
        }
        v
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// §6.1: the lower bound `r ≥ 2n²/q`.
pub fn lower_bound_r(n: u32, q: f64) -> f64 {
    2.0 * (n as f64) * (n as f64) / q
}

/// §6.3: total communication of the optimal one-phase method,
/// `r · |I| = (2n²/q) · 2n² = 4n⁴/q`.
pub fn one_phase_communication(n: u32, q: f64) -> f64 {
    let n = n as f64;
    4.0 * n.powi(4) / q
}

/// The one-phase square-tiling schema (§6.2): rows of `R` in groups of
/// `s`, columns of `S` in groups of `s`; one reducer per group pair.
/// `q = 2sn`, `r = n/s = 2n²/q` — exactly the lower bound.
#[derive(Debug, Clone, Copy)]
pub struct OnePhaseSchema {
    /// Matrix side length.
    pub n: u32,
    /// Group size (must divide `n`).
    pub s: u32,
}

impl OnePhaseSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `s` divides `n`.
    pub fn new(n: u32, s: u32) -> Self {
        assert!(s >= 1 && s <= n, "s={s} must be in 1..={n}");
        assert_eq!(n % s, 0, "s={s} must divide n={n}");
        OnePhaseSchema { n, s }
    }

    /// Reducer size `q = 2sn`.
    pub fn q(&self) -> u64 {
        2 * self.s as u64 * self.n as u64
    }

    /// Replication rate `n/s` (exactly `2n²/q`).
    pub fn replication(&self) -> f64 {
        self.n as f64 / self.s as f64
    }

    fn groups(&self) -> u64 {
        (self.n / self.s) as u64
    }

    fn reducer(&self, gi: u64, gk: u64) -> ReducerId {
        gi * self.groups() + gk
    }

    fn assign_entry(&self, e: &MatEntry) -> Vec<ReducerId> {
        let g = self.groups();
        match e {
            // R[i][j] is needed by every reducer handling row-group of i.
            MatEntry::R(i, _) => {
                let gi = (*i / self.s) as u64;
                (0..g).map(|gk| self.reducer(gi, gk)).collect()
            }
            // S[j][k] by every reducer handling column-group of k.
            MatEntry::S(_, k) => {
                let gk = (*k / self.s) as u64;
                (0..g).map(|gi| self.reducer(gi, gk)).collect()
            }
        }
    }
}

impl MappingSchema<MatMulProblem> for OnePhaseSchema {
    fn assign(&self, input: &MatEntry) -> Vec<ReducerId> {
        self.assign_entry(input)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.q()
    }

    fn name(&self) -> String {
        format!("one-phase(n={}, s={})", self.n, self.s)
    }
}

/// A concrete numeric input for simulator runs: an entry with its value.
pub type NumericEntry = (MatEntry, [u8; 8]);

/// Packs a matrix pair into simulator inputs (values carried as `f64`
/// bits so the input type stays `Ord` for the engine's deterministic
/// shuffle).
pub fn numeric_inputs(r: &Matrix, s: &Matrix) -> Vec<NumericEntry> {
    let n = r.n();
    let mut v = Vec::with_capacity(2 * n * n);
    for i in 0..n {
        for j in 0..n {
            v.push((
                MatEntry::R(i as u32, j as u32),
                r[(i, j)].to_bits().to_be_bytes(),
            ));
        }
    }
    for j in 0..n {
        for k in 0..n {
            v.push((
                MatEntry::S(j as u32, k as u32),
                s[(j, k)].to_bits().to_be_bytes(),
            ));
        }
    }
    v
}

impl SchemaJob<NumericEntry, (u32, u32, [u8; 8])> for OnePhaseSchema {
    fn assign(&self, input: &NumericEntry) -> Vec<ReducerId> {
        self.assign_entry(&input.0)
    }

    fn reduce(
        &self,
        reducer: ReducerId,
        inputs: &[NumericEntry],
        emit: &mut dyn FnMut((u32, u32, [u8; 8])),
    ) {
        let g = self.groups();
        let (gi, gk) = (reducer / g, reducer % g);
        let s = self.s as usize;
        let n = self.n as usize;
        // Local blocks: rows gi·s .. gi·s+s of R, cols gk·s .. of S.
        let row0 = gi as usize * s;
        let col0 = gk as usize * s;
        let mut rblock = vec![0.0f64; s * n]; // s rows × n cols
        let mut sblock = vec![0.0f64; n * s]; // n rows × s cols
        for (e, bits) in inputs {
            let val = f64::from_bits(u64::from_be_bytes(*bits));
            match e {
                MatEntry::R(i, j) => {
                    rblock[(*i as usize - row0) * n + *j as usize] = val;
                }
                MatEntry::S(j, k) => {
                    sblock[*j as usize * s + (*k as usize - col0)] = val;
                }
            }
        }
        for di in 0..s {
            for dk in 0..s {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += rblock[di * n + j] * sblock[j * s + dk];
                }
                emit((
                    (row0 + di) as u32,
                    (col0 + dk) as u32,
                    acc.to_bits().to_be_bytes(),
                ));
            }
        }
    }
}

/// Runs the one-phase algorithm end to end, returning the product matrix
/// and round metrics.
pub fn run_one_phase(
    r: &Matrix,
    s: &Matrix,
    schema: &OnePhaseSchema,
    config: &EngineConfig,
) -> Result<(Matrix, RoundMetrics), EngineError> {
    let inputs = numeric_inputs(r, s);
    let (cells, metrics) = run_schema(&inputs, schema, config)?;
    let n = r.n();
    let mut out = Matrix::zeros(n);
    for (i, k, bits) in cells {
        out[(i as usize, k as usize)] = f64::from_bits(u64::from_be_bytes(bits));
    }
    Ok((out, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use crate::recipe::max_outputs_covered;

    #[test]
    fn counts_match_closed_forms() {
        let p = MatMulProblem::new(5);
        assert_eq!(p.inputs().len() as u64, 50);
        assert_eq!(p.outputs().len() as u64, 25);
        assert_eq!(p.inputs_of(&(0, 0)).len(), 10);
    }

    #[test]
    fn g_bound_holds_empirically() {
        // §6.1 rectangle argument probed exhaustively at n = 2: 8 inputs.
        let p = MatMulProblem::new(2);
        for q in 1..=8usize {
            let actual = max_outputs_covered(&p, q) as f64;
            // Exact discrete version of the square bound: with q inputs
            // you get at most ⌊q/(2n)⌋² + slack outputs; g(q) = q²/(4n²)
            // only binds at multiples of 2n, so compare there.
            if q % 4 == 0 {
                let bound = (q * q) as f64 / 16.0;
                assert!(actual <= bound + 1e-9, "q={q}: {actual} > {bound}");
            }
        }
        // The square reducer achieves it: q=4 (one row + one col) → 1.
        assert_eq!(max_outputs_covered(&p, 4), 1);
        assert_eq!(max_outputs_covered(&p, 8), 4);
    }

    #[test]
    fn one_phase_schema_valid_and_tight() {
        let n = 8;
        let p = MatMulProblem::new(n);
        for s in [1u32, 2, 4, 8] {
            let schema = OnePhaseSchema::new(n, s);
            let report = validate_schema(&p, &schema);
            assert!(report.is_valid(), "s={s}: {report:?}");
            // Exactly on the lower bound: r = 2n²/q.
            let expected = lower_bound_r(n, schema.q() as f64);
            assert!(
                (report.replication_rate - expected).abs() < 1e-9,
                "s={s}: r={} vs bound {expected}",
                report.replication_rate
            );
            // Load is exactly 2sn per reducer.
            assert_eq!(report.max_load, schema.q());
        }
    }

    #[test]
    fn one_phase_computes_correct_product() {
        let n = 12;
        let a = Matrix::random(n, 3);
        let b = Matrix::random(n, 4);
        let expected = a.multiply(&b);
        for s in [2u32, 3, 6] {
            let schema = OnePhaseSchema::new(n as u32, s);
            let (got, metrics) =
                run_one_phase(&a, &b, &schema, &EngineConfig::sequential()).unwrap();
            assert!(got.max_abs_diff(&expected) < 1e-9, "s={s}: wrong product");
            // Communication = r·|I| = (n/s)·2n².
            let expected_comm = (n as u64 / s as u64) * 2 * (n as u64).pow(2);
            assert_eq!(metrics.kv_pairs, expected_comm);
        }
    }

    #[test]
    fn one_phase_parallel_matches_sequential() {
        let n = 8;
        let a = Matrix::random(n, 5);
        let b = Matrix::random(n, 6);
        let schema = OnePhaseSchema::new(n as u32, 2);
        let (seq, m1) = run_one_phase(&a, &b, &schema, &EngineConfig::sequential()).unwrap();
        let (par, m2) = run_one_phase(&a, &b, &schema, &EngineConfig::parallel(4)).unwrap();
        assert_eq!(seq, par);
        assert_eq!(m1, m2);
    }

    #[test]
    fn extreme_q_values() {
        // §6.2: q = 2n² → one reducer, r = 1.
        let n = 6;
        let p = MatMulProblem::new(n);
        let schema = OnePhaseSchema::new(n, n);
        let report = validate_schema(&p, &schema);
        assert!(report.is_valid());
        assert_eq!(report.num_reducers, 1);
        assert!((report.replication_rate - 1.0).abs() < 1e-9);
        // And the bound agrees: 2n²/(2n²) = 1.
        assert!((lower_bound_r(n, (2 * n * n) as f64) - 1.0).abs() < 1e-9);
    }
}
