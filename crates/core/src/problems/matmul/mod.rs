//! Matrix multiplication (§6).
//!
//! Multiplying `n×n` matrices `R` and `S` has `|I| = 2n²` inputs and
//! `|O| = n²` outputs, each output depending on `2n` inputs (a row of `R`
//! and a column of `S`). §6.1 shows a reducer's covered outputs form a
//! *rectangle* maximised by a square, giving `g(q) = q²/(4n²)` and the
//! lower bound `r ≥ 2n²/q`; §6.2 matches it by square tiling; §6.3 shows
//! a **two-phase** method with total communication `4n³/√q` (optimal
//! first-phase blocks have aspect ratio 2:1 — `s = √q`, `t = √q/2`),
//! beating the one-phase `4n⁴/q` whenever `q < n²`.
//!
//! * [`matrix`] — dense matrices and the serial product baseline;
//! * [`problem`] — the model instance, bounds, and the one-phase schema;
//! * [`two_phase`] — the two-round job and its communication accounting;
//! * [`recursive`] — the multi-round aggregation-tree generalisation the
//!   planner's round-structure search enumerates (flat case ≡ two-phase,
//!   proven byte-for-byte);
//! * [`rectangular`] — the `m×n · n×p` generalisation (extension beyond
//!   the paper's square case).

pub mod matrix;
pub mod problem;
pub mod rectangular;
pub mod recursive;
pub mod two_phase;

pub use matrix::Matrix;
pub use problem::{
    lower_bound_r, one_phase_communication, MatEntry, MatMulProblem, OnePhaseSchema,
};
pub use rectangular::{rect_lower_bound, RectMatMulProblem, RectOnePhaseSchema};
pub use recursive::{MatToken, RecursiveMatMul};
pub use two_phase::{two_phase_communication, TwoPhaseMatMul};
