//! Recursive multi-round matrix multiplication — the §6.3 two-phase
//! method generalised to an aggregation *tree*.
//!
//! Phase 1 is exactly the two-phase method's first round: the `(i, j, k)`
//! cube is tiled into `s × s × t` blocks and each block reducer emits
//! partial sums for its `s²` cells, one partial per j-block. That leaves
//! `m = n/t` partials per output cell, tagged with their j-block *group*.
//! Instead of funnelling all `m` partials into one reducer (the two-phase
//! method's second round), the aggregation proceeds in rounds of fan-in
//! `f`: each round merges up to `f` adjacent groups per cell, so round
//! `j` has reducer size `min(f, m_{j-1})` and after
//! `d = ⌈log_f m⌉` rounds a single group — the final cell — remains.
//!
//! The flat case `f ≥ m` (one aggregation round) **is** the two-phase
//! method, byte-for-byte — `flat_recursive_is_two_phase_byte_for_byte`
//! below proves it against the independent
//! [`TwoPhaseMatMul`](super::TwoPhaseMatMul) implementation. Deeper trees
//! trade strictly more rounds (latency) and communication for smaller
//! per-round reducers, which is exactly the trade the plan layer's
//! round-structure search prices (§7's open multi-round question).

use super::matrix::Matrix;
use super::problem::{numeric_inputs, MatEntry, NumericEntry};
use super::two_phase::Cell;
use mr_sim::{DagJob, EngineConfig, EngineError, FnMapper, FnReducer, Job, JobMetrics};

/// The uniform token a recursive-matmul [`DagJob`] flows between rounds:
/// matrix entries in, tagged partial cells between and out of rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatToken {
    /// An input matrix entry.
    Entry(NumericEntry),
    /// A partial sum for cell `(i, k)`: the group tag identifies which
    /// contiguous run of j-blocks it covers, halving the aggregation
    /// frontier every `log₂ f` rounds.
    Partial {
        /// Output row.
        i: u32,
        /// Output column.
        k: u32,
        /// Aggregation group (j-block index divided by `fᵈ` after `d`
        /// aggregation rounds).
        group: u32,
        /// The partial sum's `f64` bits (big-endian, like [`Cell`]).
        bits: [u8; 8],
    },
}

/// Recursive matrix multiplication: one §6.3 phase-1 round followed by an
/// aggregation tree of fan-in `fanin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveMatMul {
    /// Matrix side length.
    pub n: u32,
    /// Row/column block side (must divide `n`).
    pub s: u32,
    /// j-dimension block depth (must divide `n`).
    pub t: u32,
    /// Aggregation fan-in `f ≥ 2` (or 1 when a single partial per cell
    /// makes the tree trivial).
    pub fanin: u32,
}

impl RecursiveMatMul {
    /// Creates the job description.
    ///
    /// # Panics
    /// Panics unless `s` and `t` divide `n`, and `fanin ≥ 2` (fan-in 1 is
    /// admitted only in the trivial `t = n` case of one partial per
    /// cell).
    pub fn new(n: u32, s: u32, t: u32, fanin: u32) -> Self {
        assert!(
            s >= 1 && s <= n && n.is_multiple_of(s),
            "s={s} must divide n={n}"
        );
        assert!(
            t >= 1 && t <= n && n.is_multiple_of(t),
            "t={t} must divide n={n}"
        );
        assert!(
            fanin >= 2 || n / t == 1,
            "fanin={fanin} must be at least 2 when m = n/t = {} partials need merging",
            n / t
        );
        RecursiveMatMul { n, s, t, fanin }
    }

    /// The flat (single aggregation round) shape: fan-in `m = n/t`, i.e.
    /// the classic §6.3 two-phase method.
    pub fn flat(n: u32, s: u32, t: u32) -> Self {
        RecursiveMatMul::new(n, s, t, (n / t).max(1))
    }

    /// Partials per output cell after phase 1, `m = n/t`.
    fn m(&self) -> u64 {
        (self.n / self.t) as u64
    }

    /// Number of aggregation rounds `d = ⌈log_fanin m⌉` (at least 1 —
    /// even a single partial is copied through one aggregation round,
    /// matching the two-phase method's round count).
    pub fn agg_rounds(&self) -> u32 {
        let mut groups = self.m();
        let mut d = 0;
        loop {
            groups = groups.div_ceil(self.fanin as u64);
            d += 1;
            if groups <= 1 {
                return d;
            }
        }
    }

    /// Total number of rounds, `1 + agg_rounds()`.
    pub fn num_rounds(&self) -> u32 {
        1 + self.agg_rounds()
    }

    /// Closed-form per-round `(q, kv_pairs)`, phase 1 first — the
    /// census the planner prices without executing. Phase 1:
    /// `q = 2st`, pairs `2n²·(n/s)`. Aggregation round `j` (with
    /// `m_0 = n/t` groups shrinking by `fanin` each round):
    /// `q = min(fanin, m_{j-1})`, pairs `n²·m_{j-1}`.
    pub fn round_specs(&self) -> Vec<(u64, u64)> {
        let n = self.n as u64;
        let mut specs = vec![(
            2 * self.s as u64 * self.t as u64,
            2 * n * n * (n / self.s as u64),
        )];
        let mut groups = self.m();
        loop {
            specs.push((groups.min(self.fanin as u64), n * n * groups));
            groups = groups.div_ceil(self.fanin as u64);
            if groups <= 1 {
                return specs;
            }
        }
    }

    /// Predicted total communication, `Σ` of the per-round pairs.
    pub fn predicted_communication(&self) -> f64 {
        self.round_specs().iter().map(|&(_, p)| p as f64).sum()
    }

    /// Encodes a phase-1 cube id from block coordinates (identical to the
    /// two-phase method's encoding).
    fn cube(&self, bi: u64, bk: u64, bj: u64) -> u64 {
        let rb = (self.n / self.s) as u64;
        let jb = (self.n / self.t) as u64;
        (bi * rb + bk) * jb + bj
    }

    /// Builds the round chain as a [`DagJob`] over [`MatToken`]s — the
    /// executable the plan layer stages, budgets, and measures per round.
    pub fn dag(&self) -> DagJob<MatToken> {
        let me = *self;
        let (n, s, t, f) = (self.n, self.s, self.t, self.fanin);
        let rb = (n / s) as u64;
        let jb = (n / t) as u64;
        let mut dag: DagJob<MatToken> = DagJob::new();

        let phase1_map = FnMapper(
            move |input: &MatToken, emit: &mut dyn FnMut(u64, MatToken)| {
                let MatToken::Entry((entry, _bits)) = input else {
                    unreachable!("phase 1 consumes matrix entries only");
                };
                match entry {
                    MatEntry::R(i, j) => {
                        let bi = (*i / s) as u64;
                        let bj = (*j / t) as u64;
                        for bk in 0..rb {
                            emit(me.cube(bi, bk, bj), *input);
                        }
                    }
                    MatEntry::S(j, k) => {
                        let bj = (*j / t) as u64;
                        let bk = (*k / s) as u64;
                        for bi in 0..rb {
                            emit(me.cube(bi, bk, bj), *input);
                        }
                    }
                }
            },
        );
        let phase1_reduce = FnReducer(
            move |cube: &u64, inputs: &[MatToken], emit: &mut dyn FnMut(MatToken)| {
                let bj = cube % jb;
                let bk = (cube / jb) % rb;
                let bi = cube / jb / rb;
                let (row0, col0, j0) = (
                    bi as usize * s as usize,
                    bk as usize * s as usize,
                    bj as usize * t as usize,
                );
                let (su, tu) = (s as usize, t as usize);
                let mut rblock = vec![0.0f64; su * tu];
                let mut sblock = vec![0.0f64; tu * su];
                for token in inputs {
                    let MatToken::Entry((e, bits)) = token else {
                        unreachable!("phase 1 consumes matrix entries only");
                    };
                    let val = f64::from_bits(u64::from_be_bytes(*bits));
                    match e {
                        MatEntry::R(i, j) => {
                            rblock[(*i as usize - row0) * tu + (*j as usize - j0)] = val;
                        }
                        MatEntry::S(j, k) => {
                            sblock[(*j as usize - j0) * su + (*k as usize - col0)] = val;
                        }
                    }
                }
                for di in 0..su {
                    for dk in 0..su {
                        let mut acc = 0.0;
                        for dj in 0..tu {
                            acc += rblock[di * tu + dj] * sblock[dj * su + dk];
                        }
                        emit(MatToken::Partial {
                            i: (row0 + di) as u32,
                            k: (col0 + dk) as u32,
                            group: bj as u32,
                            bits: acc.to_bits().to_be_bytes(),
                        });
                    }
                }
            },
        );
        let mut prev = dag.add_round("phase-1", vec![], phase1_map, phase1_reduce);

        for round in 0..self.agg_rounds() {
            let agg_map = FnMapper(
                move |token: &MatToken, emit: &mut dyn FnMut((u32, u32, u32), MatToken)| {
                    let MatToken::Partial { i, k, group, .. } = token else {
                        unreachable!("aggregation rounds consume partials only");
                    };
                    emit((*i, *k, group / f), *token);
                },
            );
            let agg_reduce = FnReducer(
                move |key: &(u32, u32, u32),
                      partials: &[MatToken],
                      emit: &mut dyn FnMut(MatToken)| {
                    let sum: f64 = partials
                        .iter()
                        .map(|token| {
                            let MatToken::Partial { bits, .. } = token else {
                                unreachable!("aggregation rounds consume partials only");
                            };
                            f64::from_bits(u64::from_be_bytes(*bits))
                        })
                        .sum();
                    emit(MatToken::Partial {
                        i: key.0,
                        k: key.1,
                        group: key.2,
                        bits: sum.to_bits().to_be_bytes(),
                    });
                },
            );
            prev = dag.add_round(
                format!("aggregate-{}", round + 1),
                vec![prev],
                agg_map,
                agg_reduce,
            );
        }
        dag
    }

    /// The [`Job`]-shaped view of the chain, matching
    /// [`TwoPhaseMatMul::job`](super::TwoPhaseMatMul::job)'s signature so
    /// both shapes plug into the same execution paths.
    pub fn job(&self) -> Job<NumericEntry, Cell> {
        let me = *self;
        Job::from_fn(me.num_rounds() as usize, move |inputs, cfg| {
            let tokens: Vec<MatToken> = inputs.into_iter().map(MatToken::Entry).collect();
            let (out, metrics) = me.dag().run(&tokens, cfg)?;
            let cells = out
                .into_iter()
                .map(|token| {
                    let MatToken::Partial { i, k, bits, .. } = token else {
                        unreachable!("the final aggregation round emits partials only");
                    };
                    (i, k, bits)
                })
                .collect();
            Ok((cells, metrics.rounds))
        })
    }

    /// Runs the multiplication end to end.
    pub fn run(
        &self,
        r: &Matrix,
        s_mat: &Matrix,
        config: &EngineConfig,
    ) -> Result<(Matrix, JobMetrics), EngineError> {
        let inputs = numeric_inputs(r, s_mat);
        let (cells, metrics) = self.job().run(inputs, config)?;
        let n = r.n();
        let mut out = Matrix::zeros(n);
        for (i, k, bits) in cells {
            out[(i as usize, k as usize)] = f64::from_bits(u64::from_be_bytes(bits));
        }
        Ok((out, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::matmul::TwoPhaseMatMul;

    #[test]
    fn flat_recursive_is_two_phase_byte_for_byte() {
        // The flat shape must reproduce the independent two-phase
        // implementation exactly: outputs and per-round metrics.
        let n = 8u32;
        let a = Matrix::random(n as usize, 21);
        let b = Matrix::random(n as usize, 22);
        let inputs = numeric_inputs(&a, &b);
        for (s, t) in [(2u32, 1u32), (4, 2), (2, 2), (8, 4)] {
            let two = TwoPhaseMatMul::new(n, s, t);
            let flat = RecursiveMatMul::flat(n, s, t);
            assert_eq!(flat.num_rounds(), 2, "(s={s},t={t})");
            let (cells2, m2) = two
                .job()
                .run(inputs.clone(), &EngineConfig::sequential())
                .unwrap();
            let (cellsr, mr) = flat
                .job()
                .run(inputs.clone(), &EngineConfig::sequential())
                .unwrap();
            assert_eq!(cells2, cellsr, "(s={s},t={t}) outputs");
            assert_eq!(m2, mr, "(s={s},t={t}) metrics");
        }
    }

    #[test]
    fn deep_trees_compute_the_correct_product() {
        let n = 12usize;
        let a = Matrix::random(n, 31);
        let b = Matrix::random(n, 32);
        let expected = a.multiply(&b);
        for (s, t, f) in [
            (2u32, 1u32, 2u32),
            (2, 1, 3),
            (4, 2, 2),
            (3, 1, 2),
            (12, 12, 1),
        ] {
            let alg = RecursiveMatMul::new(n as u32, s, t, f);
            let (got, metrics) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
            assert!(
                got.max_abs_diff(&expected) < 1e-9,
                "(s={s},t={t},f={f}): wrong product"
            );
            assert_eq!(
                metrics.rounds.len(),
                alg.num_rounds() as usize,
                "(s={s},t={t},f={f})"
            );
        }
    }

    #[test]
    fn round_specs_match_measured_census_exactly() {
        let n = 8usize;
        let a = Matrix::random(n, 41);
        let b = Matrix::random(n, 42);
        for (s, t, f) in [(2u32, 1u32, 2u32), (4, 2, 2), (2, 2, 4), (1, 1, 3)] {
            let alg = RecursiveMatMul::new(n as u32, s, t, f);
            let (_, metrics) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
            let specs = alg.round_specs();
            assert_eq!(specs.len(), metrics.rounds.len(), "(s={s},t={t},f={f})");
            for (round, (&(q, pairs), measured)) in specs.iter().zip(&metrics.rounds).enumerate() {
                assert_eq!(measured.load.max, q, "(s={s},t={t},f={f}) round {round} q");
                assert_eq!(
                    measured.kv_pairs, pairs,
                    "(s={s},t={t},f={f}) round {round} pairs"
                );
            }
        }
    }

    #[test]
    fn tree_depth_follows_the_fanin() {
        // m = 8 partials: fan-in 8 → 1 round, 3 → 2, 2 → 3.
        assert_eq!(RecursiveMatMul::new(8, 1, 1, 8).agg_rounds(), 1);
        assert_eq!(RecursiveMatMul::new(8, 1, 1, 3).agg_rounds(), 2);
        assert_eq!(RecursiveMatMul::new(8, 1, 1, 2).agg_rounds(), 3);
        // m = 1: the trivial copy-through round.
        assert_eq!(RecursiveMatMul::new(8, 2, 8, 1).agg_rounds(), 1);
    }

    #[test]
    fn parallel_tree_is_deterministic() {
        let n = 8usize;
        let a = Matrix::random(n, 51);
        let b = Matrix::random(n, 52);
        let alg = RecursiveMatMul::new(n as u32, 2, 1, 2);
        let (seq, m1) = alg.run(&a, &b, &EngineConfig::sequential()).unwrap();
        for workers in [1usize, 2, 4, 8, 16] {
            let (par, m2) = alg.run(&a, &b, &EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq, par, "workers={workers}");
            assert_eq!(m1, m2, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "must be at least 2")]
    fn rejects_fanin_one_with_work_to_merge() {
        RecursiveMatMul::new(8, 2, 2, 1);
    }
}
