//! Paths of length two (§5.4) — the simplest sample graph *outside* the
//! Alon class.
//!
//! §5.4.1 derives the lower bound from `g(q) = (q 2)` (any two edges form
//! at most one 2-path): `r ≥ 2n/q`, clamped to the trivial `r ≥ 1` when
//! `q > 2n`. §5.4.2 gives two algorithms:
//!
//! * one reducer per node (`q = n`, `r = 2` — each edge sent to both
//!   endpoint reducers), and
//! * the bucket-pair refinement for `q < n`: hash nodes into `k` buckets;
//!   reducers are `[u, {i, j}]` pairs; edge `(a, b)` goes to the
//!   `2(k−1)` reducers `[b, {h(a), *}]` and `[a, {*, h(b)}]`, with the
//!   §5.4.2 tie-breaking rule so each 2-path is produced exactly once.

use crate::model::{MappingSchema, Problem, ReducerId};
use crate::recipe::LowerBoundRecipe;
use mr_graph::graph::Edge;
use mr_sim::schema::SchemaJob;

/// The 2-path problem on `n` nodes: inputs are the `(n 2)` possible edges,
/// outputs are ordered-middle triples `(mid, a, b)` with `a < b`.
#[derive(Debug, Clone, Copy)]
pub struct TwoPathProblem {
    /// Number of nodes.
    pub n: u32,
}

impl TwoPathProblem {
    /// Creates the problem.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 3, "2-paths need at least 3 nodes");
        TwoPathProblem { n }
    }

    /// `|I| = (n 2)`.
    pub fn closed_form_inputs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) / 2
    }

    /// `|O| = 3·(n 3) = n(n−1)(n−2)/2` (§5.4.1: three 2-paths per node
    /// triple).
    pub fn closed_form_outputs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) * (n - 2) / 2
    }

    /// The §5.4.1 recipe: `g(q) = (q 2)`.
    pub fn recipe(&self) -> LowerBoundRecipe {
        LowerBoundRecipe::new(
            |q| q * (q - 1.0) / 2.0,
            self.closed_form_inputs() as f64,
            self.closed_form_outputs() as f64,
        )
    }
}

/// §5.4.1: the lower bound `r ≥ 2n/q` (use
/// [`LowerBoundRecipe::clamped_lower_bound`] for the `max(1, ·)` version).
pub fn lower_bound_r(n: u32, q: f64) -> f64 {
    2.0 * n as f64 / q
}

impl Problem for TwoPathProblem {
    type Input = (u32, u32);
    type Output = (u32, u32, u32);

    fn inputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for u in 0..self.n {
            for w in (u + 1)..self.n {
                v.push((u, w));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<(u32, u32, u32)> {
        // (middle, a, b) with a < b, middle distinct from both.
        let mut v = Vec::new();
        for mid in 0..self.n {
            for a in 0..self.n {
                if a == mid {
                    continue;
                }
                for b in (a + 1)..self.n {
                    if b == mid {
                        continue;
                    }
                    v.push((mid, a, b));
                }
            }
        }
        v
    }

    fn inputs_of(&self, o: &(u32, u32, u32)) -> Vec<(u32, u32)> {
        let (mid, a, b) = *o;
        vec![(mid.min(a), mid.max(a)), (mid.min(b), mid.max(b))]
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// The `q = n` algorithm: one reducer per node; each edge goes to its two
/// endpoint reducers, so `r = 2` — meeting the `2n/q` bound exactly.
#[derive(Debug, Clone, Copy)]
pub struct PerNodeSchema {
    /// Number of nodes.
    pub n: u32,
}

impl MappingSchema<TwoPathProblem> for PerNodeSchema {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        vec![input.0 as u64, input.1 as u64]
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.n as u64 - 1
    }

    fn name(&self) -> String {
        format!("per-node(n={})", self.n)
    }
}

impl SchemaJob<Edge, (u32, u32, u32)> for PerNodeSchema {
    fn assign(&self, input: &Edge) -> Vec<ReducerId> {
        vec![input.u as u64, input.v as u64]
    }

    fn reduce(&self, reducer: ReducerId, inputs: &[Edge], emit: &mut dyn FnMut((u32, u32, u32))) {
        let mid = reducer as u32;
        let mut others: Vec<u32> = inputs.iter().map(|e| e.other(mid)).collect();
        others.sort_unstable();
        for i in 0..others.len() {
            for j in (i + 1)..others.len() {
                emit((mid, others[i], others[j]));
            }
        }
    }
}

/// The bucket-pair algorithm (§5.4.2) for `q < n`: reducers `[u, {i, j}]`
/// with `i < j` buckets; `r = 2(k−1)`.
#[derive(Debug, Clone, Copy)]
pub struct BucketPairSchema {
    /// Number of nodes.
    pub n: u32,
    /// Number of hash buckets (`k ≥ 2`).
    pub k: u32,
}

impl BucketPairSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics if `k < 2` (use [`PerNodeSchema`] for the `q = n` point).
    pub fn new(n: u32, k: u32) -> Self {
        assert!(k >= 2, "bucket-pair needs k >= 2");
        BucketPairSchema { n, k }
    }

    /// The §5.4.2 hash: node → bucket.
    pub fn bucket(&self, u: u32) -> u32 {
        u % self.k
    }

    /// Encodes reducer `[u, {i, j}]` (`i < j`).
    fn encode(&self, u: u32, i: u32, j: u32) -> ReducerId {
        debug_assert!(i < j);
        let k = self.k as u64;
        (u as u64) * k * k + (i as u64) * k + j as u64
    }

    /// Decodes a reducer id into `(u, i, j)`.
    pub fn decode(&self, id: ReducerId) -> (u32, u32, u32) {
        let k = self.k as u64;
        (
            (id / (k * k)) as u32,
            ((id / k) % k) as u32,
            (id % k) as u32,
        )
    }

    /// Reducers for edge `(a, b)`: `[b, {h(a), *}]` and `[a, {*, h(b)}]`.
    fn edge_reducers(&self, a: u32, b: u32) -> Vec<ReducerId> {
        let mut ids = Vec::with_capacity(2 * (self.k as usize - 1));
        for (centre, other) in [(b, a), (a, b)] {
            let h = self.bucket(other);
            for star in 0..self.k {
                if star == h {
                    continue;
                }
                let (i, j) = if h < star { (h, star) } else { (star, h) };
                ids.push(self.encode(centre, i, j));
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Replication rate `2(k−1)` (before deduplication of coincident
    /// reducers).
    pub fn nominal_replication(&self) -> f64 {
        2.0 * (self.k as f64 - 1.0)
    }

    /// §5.4.2: each reducer receives about `q = 2n/k` edges.
    pub fn approx_q(&self) -> f64 {
        2.0 * self.n as f64 / self.k as f64
    }

    /// The §5.4.2 emission rule for a 2-path `v−u−w` at reducer
    /// `[u, {i, j}]`: produce it iff `{h(v), h(w)} = {i, j}` (rule 1) or
    /// `h(v) = h(w) = i` and `j = i+1 (mod k)` (rule 2).
    fn owns(&self, reducer_i: u32, reducer_j: u32, hv: u32, hw: u32) -> bool {
        if hv != hw {
            let (lo, hi) = if hv < hw { (hv, hw) } else { (hw, hv) };
            lo == reducer_i && hi == reducer_j
        } else {
            let c = hv;
            let succ = (c + 1) % self.k;
            let (lo, hi) = if c < succ { (c, succ) } else { (succ, c) };
            reducer_i == lo && reducer_j == hi
        }
    }
}

impl MappingSchema<TwoPathProblem> for BucketPairSchema {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        self.edge_reducers(input.0, input.1)
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        // Reducer [u, {i,j}] receives edges from u to buckets i ∪ j:
        // at most 2·⌈n/k⌉.
        2 * self.n.div_ceil(self.k) as u64
    }

    fn name(&self) -> String {
        format!("bucket-pair(n={}, k={})", self.n, self.k)
    }
}

impl SchemaJob<Edge, (u32, u32, u32)> for BucketPairSchema {
    fn assign(&self, input: &Edge) -> Vec<ReducerId> {
        self.edge_reducers(input.u, input.v)
    }

    fn reduce(&self, reducer: ReducerId, inputs: &[Edge], emit: &mut dyn FnMut((u32, u32, u32))) {
        let (u, i, j) = self.decode(reducer);
        // Edges at this reducer that are incident to the centre u.
        let mut others: Vec<u32> = inputs
            .iter()
            .filter(|e| e.contains(u))
            .map(|e| e.other(u))
            .collect();
        others.sort_unstable();
        others.dedup();
        for a in 0..others.len() {
            for b in (a + 1)..others.len() {
                let (v, w) = (others[a], others[b]);
                if self.owns(i, j, self.bucket(v), self.bucket(w)) {
                    emit((u, v, w));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use crate::recipe::max_outputs_covered;
    use mr_graph::{gen, subgraph};
    use mr_sim::{run_schema, EngineConfig};

    #[test]
    fn counts_match_closed_forms() {
        let p = TwoPathProblem::new(6);
        assert_eq!(p.inputs().len() as u64, p.num_inputs());
        assert_eq!(p.outputs().len() as u64, p.num_outputs());
        assert_eq!(p.num_outputs(), 6 * 5 * 4 / 2);
    }

    #[test]
    fn g_is_q_choose_2_exactly() {
        // §5.4.1: any two distinct edges form at most one 2-path — and a
        // star achieves exactly (q 2).
        let p = TwoPathProblem::new(6);
        for q in 2..=5usize {
            let actual = max_outputs_covered(&p, q);
            assert_eq!(
                actual,
                (q * (q - 1) / 2) as u64,
                "q={q}: star should achieve the bound exactly"
            );
        }
    }

    #[test]
    fn per_node_schema_meets_bound_exactly() {
        let n = 12;
        let p = TwoPathProblem::new(n);
        let s = PerNodeSchema { n };
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        assert!((report.replication_rate - 2.0).abs() < 1e-9);
        // q = n−1 per reducer, bound 2n/q ≈ 2.
        let bound = lower_bound_r(n, report.max_load as f64);
        assert!(report.replication_rate >= bound - 0.5);
    }

    #[test]
    fn bucket_pair_schema_is_valid() {
        let n = 12;
        let p = TwoPathProblem::new(n);
        for k in [2u32, 3, 4, 6] {
            let s = BucketPairSchema::new(n, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "k={k}: {report:?}");
            // r ≤ 2(k−1); equality when no dedup collapses reducers.
            assert!(
                report.replication_rate <= s.nominal_replication() + 1e-9,
                "k={k}: r={}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn bucket_pair_replication_factor_of_bound() {
        // §5.4.2: the algorithm achieves ~2k against bound 2n/q = k:
        // within a factor of ~2.
        let n = 60;
        let p = TwoPathProblem::new(n);
        for k in [3u32, 5, 6] {
            let s = BucketPairSchema::new(n, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid());
            let bound = lower_bound_r(n, report.max_load as f64);
            let ratio = report.replication_rate / bound;
            assert!(
                (0.8..=2.5).contains(&ratio),
                "k={k}: r={} bound={bound} ratio={ratio}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn simulator_emits_each_two_path_once() {
        let g = gen::gnm(30, 120, 11);
        let s = BucketPairSchema::new(30, 4);
        let (mut found, _) = run_schema(g.edges(), &s, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        // Check against the serial baseline.
        let mut expected = subgraph::two_paths(&g);
        expected.sort_unstable();
        assert_eq!(found, expected, "bucket-pair output mismatch");
        // No duplicates.
        let mut dedup = found.clone();
        dedup.dedup();
        assert_eq!(found.len(), dedup.len());
    }

    #[test]
    fn per_node_simulator_matches_baseline() {
        let g = gen::gnm(25, 80, 13);
        let s = PerNodeSchema { n: 25 };
        let (mut found, metrics) = run_schema(g.edges(), &s, &EngineConfig::sequential()).unwrap();
        found.sort_unstable();
        let mut expected = subgraph::two_paths(&g);
        expected.sort_unstable();
        assert_eq!(found, expected);
        assert!((metrics.replication_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wraparound_rule_covers_same_bucket_paths() {
        // All three nodes in the top bucket exercises rule 2 including the
        // i = k−1 wraparound.
        let n = 9;
        let k = 3;
        let p = TwoPathProblem::new(n);
        let s = BucketPairSchema::new(n, k);
        let report = validate_schema(&p, &s);
        assert_eq!(report.uncovered_outputs, 0);
        // Direct probe: 2-path 2-5-8 (all bucket 2) must be owned by
        // exactly one reducer among [5, {0,2}] (succ of 2 is 0).
        assert!(s.owns(0, 2, 2, 2));
        assert!(!s.owns(1, 2, 2, 2));
    }

    #[test]
    fn lower_bound_clamps_to_one() {
        let p = TwoPathProblem::new(10);
        let recipe = p.recipe();
        // q = n²/2 = all inputs → bound must clamp to 1 (§5.4.1).
        assert_eq!(recipe.clamped_lower_bound(45.0), 1.0);
        // Small q: 2n/q shape (within discretisation slack).
        let b = recipe.replication_lower_bound(10.0);
        assert!((b - lower_bound_r(10, 10.0)).abs() < 0.5, "bound {b}");
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn bucket_pair_rejects_k1() {
        BucketPairSchema::new(10, 1);
    }
}
