//! The illustrative problems of §2.1: natural join (Example 2.1),
//! grouping/aggregation (Example 2.4), and word count (Example 2.5).
//!
//! These calibrate the model: all three admit replication rate 1 for a
//! suitable reducer size — they are "embarrassingly parallel" in the
//! paper's sense, with no `q`-vs-`r` tradeoff. They also demonstrate the
//! modelling subtleties the paper calls out: the word-count inputs are
//! *occurrences*, not documents, and a grouping output exists as soon as
//! *any* of its inputs is present.

use crate::model::{MappingSchema, Problem, ReducerId};
use mr_sim::schema::SchemaJob;

// ---------------------------------------------------------------------
// Example 2.1: natural join R(A,B) ⋈ S(B,C)
// ---------------------------------------------------------------------

/// One tuple of the join input: either `R(a, b)` or `S(b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JoinTuple {
    /// A tuple of `R(A, B)`.
    R(u32, u32),
    /// A tuple of `S(B, C)`.
    S(u32, u32),
}

/// Example 2.1: the natural join `R(A,B) ⋈ S(B,C)` with finite domains of
/// sizes `na`, `nb`, `nc`.
#[derive(Debug, Clone, Copy)]
pub struct NaturalJoinProblem {
    /// `|A|` domain size.
    pub na: u32,
    /// `|B|` domain size.
    pub nb: u32,
    /// `|C|` domain size.
    pub nc: u32,
}

impl NaturalJoinProblem {
    /// `|I| = na·nb + nb·nc` (Example 2.1).
    pub fn closed_form_inputs(&self) -> u64 {
        (self.na as u64 * self.nb as u64) + (self.nb as u64 * self.nc as u64)
    }

    /// `|O| = na·nb·nc`.
    pub fn closed_form_outputs(&self) -> u64 {
        self.na as u64 * self.nb as u64 * self.nc as u64
    }
}

impl Problem for NaturalJoinProblem {
    type Input = JoinTuple;
    type Output = (u32, u32, u32);

    fn inputs(&self) -> Vec<JoinTuple> {
        let mut v = Vec::new();
        for a in 0..self.na {
            for b in 0..self.nb {
                v.push(JoinTuple::R(a, b));
            }
        }
        for b in 0..self.nb {
            for c in 0..self.nc {
                v.push(JoinTuple::S(b, c));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        for a in 0..self.na {
            for b in 0..self.nb {
                for c in 0..self.nc {
                    v.push((a, b, c));
                }
            }
        }
        v
    }

    fn inputs_of(&self, o: &(u32, u32, u32)) -> Vec<JoinTuple> {
        vec![JoinTuple::R(o.0, o.1), JoinTuple::S(o.1, o.2)]
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// The classic hash-join schema: one reducer per `B`-value; `r = 1`.
#[derive(Debug, Clone, Copy)]
pub struct HashOnB {
    /// `|A|` domain size (for the `q` accounting).
    pub na: u32,
    /// `|C|` domain size.
    pub nc: u32,
}

impl MappingSchema<NaturalJoinProblem> for HashOnB {
    fn assign(&self, input: &JoinTuple) -> Vec<ReducerId> {
        match input {
            JoinTuple::R(_, b) | JoinTuple::S(b, _) => vec![*b as u64],
        }
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        // Reducer b receives all R(·, b) and S(b, ·).
        self.na as u64 + self.nc as u64
    }

    fn name(&self) -> String {
        "hash-join-on-B".into()
    }
}

impl SchemaJob<JoinTuple, (u32, u32, u32)> for HashOnB {
    fn assign(&self, input: &JoinTuple) -> Vec<ReducerId> {
        match input {
            JoinTuple::R(_, b) | JoinTuple::S(b, _) => vec![*b as u64],
        }
    }

    fn reduce(&self, _r: ReducerId, inputs: &[JoinTuple], emit: &mut dyn FnMut((u32, u32, u32))) {
        let mut rs = Vec::new();
        let mut ss = Vec::new();
        for t in inputs {
            match t {
                JoinTuple::R(a, b) => rs.push((*a, *b)),
                JoinTuple::S(b, c) => ss.push((*b, *c)),
            }
        }
        for &(a, b) in &rs {
            for &(b2, c) in &ss {
                debug_assert_eq!(b, b2, "hash partition groups by B");
                emit((a, b, c));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Example 2.4: grouping and aggregation
// ---------------------------------------------------------------------

/// Example 2.4: `SELECT A, SUM(B) FROM R GROUP BY A` over finite domains
/// of sizes `na` and `nb`. An output (one per `A`-value) depends on *all*
/// `nb` tuples with that `A`-value.
#[derive(Debug, Clone, Copy)]
pub struct GroupingProblem {
    /// `|A|` domain size.
    pub na: u32,
    /// `|B|` domain size.
    pub nb: u32,
}

impl Problem for GroupingProblem {
    type Input = (u32, u32);
    type Output = u32;

    fn inputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for a in 0..self.na {
            for b in 0..self.nb {
                v.push((a, b));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<u32> {
        (0..self.na).collect()
    }

    fn inputs_of(&self, a: &u32) -> Vec<(u32, u32)> {
        (0..self.nb).map(|b| (*a, b)).collect()
    }
}

/// Hash-by-group schema for grouping: `r = 1`, `q = nb`.
#[derive(Debug, Clone, Copy)]
pub struct HashByGroup {
    /// `|B|` domain size (the per-group reducer load).
    pub nb: u32,
}

impl MappingSchema<GroupingProblem> for HashByGroup {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        vec![input.0 as u64]
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.nb as u64
    }

    fn name(&self) -> String {
        "hash-by-group".into()
    }
}

// ---------------------------------------------------------------------
// Example 2.5: word count
// ---------------------------------------------------------------------

/// Example 2.5: word count with inputs modelled as *word occurrences*
/// `(word, position)` — the view under which replication rate is
/// identically 1 and the problem is embarrassingly parallel.
#[derive(Debug, Clone, Copy)]
pub struct WordCountProblem {
    /// Vocabulary size.
    pub words: u32,
    /// Occurrence slots per word.
    pub occurrences: u32,
}

impl Problem for WordCountProblem {
    type Input = (u32, u32);
    type Output = u32;

    fn inputs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for w in 0..self.words {
            for o in 0..self.occurrences {
                v.push((w, o));
            }
        }
        v
    }

    fn outputs(&self) -> Vec<u32> {
        (0..self.words).collect()
    }

    fn inputs_of(&self, w: &u32) -> Vec<(u32, u32)> {
        (0..self.occurrences).map(|o| (*w, o)).collect()
    }
}

/// The standard word-count schema: occurrence → its word's reducer.
#[derive(Debug, Clone, Copy)]
pub struct WordCountSchema {
    /// Occurrence slots per word (the reducer load bound).
    pub occurrences: u32,
}

impl MappingSchema<WordCountProblem> for WordCountSchema {
    fn assign(&self, input: &(u32, u32)) -> Vec<ReducerId> {
        vec![input.0 as u64]
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.occurrences as u64
    }

    fn name(&self) -> String {
        "word-count".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use mr_sim::{run_schema, EngineConfig};

    #[test]
    fn natural_join_counts() {
        let p = NaturalJoinProblem {
            na: 3,
            nb: 4,
            nc: 5,
        };
        assert_eq!(p.num_inputs(), 12 + 20);
        assert_eq!(p.num_outputs(), 60);
        assert_eq!(p.inputs().len() as u64, p.num_inputs());
        assert_eq!(p.outputs().len() as u64, p.num_outputs());
    }

    #[test]
    fn hash_join_has_replication_one() {
        let p = NaturalJoinProblem {
            na: 3,
            nb: 4,
            nc: 5,
        };
        let s = HashOnB { na: 3, nc: 5 };
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        assert!((report.replication_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.num_reducers, 4);
        assert_eq!(report.max_load, 8); // na + nc
    }

    #[test]
    fn hash_join_computes_the_join() {
        // Instance: a sparse subset of tuples.
        let instance = vec![
            JoinTuple::R(0, 1),
            JoinTuple::R(2, 1),
            JoinTuple::R(1, 3),
            JoinTuple::S(1, 0),
            JoinTuple::S(1, 2),
            JoinTuple::S(2, 2),
        ];
        let s = HashOnB { na: 3, nc: 3 };
        let (mut out, m) = run_schema(&instance, &s, &EngineConfig::sequential()).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1, 0), (0, 1, 2), (2, 1, 0), (2, 1, 2)]);
        assert!((m.replication_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouping_is_embarrassingly_parallel() {
        let p = GroupingProblem { na: 6, nb: 9 };
        let s = HashByGroup { nb: 9 };
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        assert!((report.replication_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.num_reducers, 6);
    }

    #[test]
    fn word_count_replication_is_one_for_any_q() {
        // Example 2.5's moral: viewed as occurrences, r ≡ 1 independent of
        // the reducer-size limit.
        for occ in [2u32, 8, 32] {
            let p = WordCountProblem {
                words: 5,
                occurrences: occ,
            };
            let s = WordCountSchema { occurrences: occ };
            let report = validate_schema(&p, &s);
            assert!(report.is_valid());
            assert!((report.replication_rate - 1.0).abs() < 1e-12);
            assert_eq!(report.max_load, occ as u64);
        }
    }
}
