//! The Hamming-distance-`d` problem instance and its closed-form bounds.

use crate::model::Problem;
use crate::recipe::{binomial, LowerBoundRecipe};

/// Hamming distance between two bit strings.
pub fn hamming_distance(u: u64, v: u64) -> u32 {
    (u ^ v).count_ones()
}

/// The problem of finding all pairs of `b`-bit strings at Hamming distance
/// exactly `d` (Example 2.3 for `d = 1`), or — with
/// [`within_distance`](HammingProblem::within_distance) — at distance
/// *at most* `d`, the fuzzy-join formulation of \[3\].
#[derive(Debug, Clone, Copy)]
pub struct HammingProblem {
    /// Bit-string length.
    pub b: u32,
    /// Target distance.
    pub d: u32,
    /// When true, outputs are pairs at distance `1..=d` rather than
    /// exactly `d`.
    pub cumulative: bool,
}

impl HammingProblem {
    /// The distance-1 problem of §3.
    ///
    /// # Panics
    /// Panics if `b` is 0 or exceeds 26 (the input enumeration would not
    /// fit in memory).
    pub fn distance_one(b: u32) -> Self {
        Self::new(b, 1)
    }

    /// The exact-distance-`d` problem (§3.6).
    ///
    /// # Panics
    /// Panics if `b` is 0, exceeds 26, or `d` is 0 or exceeds `b`.
    pub fn new(b: u32, d: u32) -> Self {
        assert!(b > 0 && b <= 26, "b={b} out of the supported range 1..=26");
        assert!(d > 0 && d <= b, "d={d} must be in 1..={b}");
        HammingProblem {
            b,
            d,
            cumulative: false,
        }
    }

    /// The fuzzy-join variant of \[3\]: all pairs at distance **at most**
    /// `d`. The distance-`d` splitting schema (§3.6) covers exactly this
    /// output set.
    ///
    /// # Panics
    /// Same domain restrictions as [`new`](HammingProblem::new).
    pub fn within_distance(b: u32, d: u32) -> Self {
        let mut p = Self::new(b, d);
        p.cumulative = true;
        p
    }

    /// `|I| = 2^b`.
    pub fn closed_form_inputs(&self) -> u64 {
        1u64 << self.b
    }

    /// `|O| = 2^b · C(b,d) / 2` for the exact problem — for `d = 1` this
    /// is the paper's `(b/2)·2^b` (Example 2.3). For the cumulative
    /// problem, the sum of those terms over `1..=d`.
    pub fn closed_form_outputs(&self) -> u64 {
        let per_distance = |dd: u64| (1u64 << self.b) * binomial(self.b as u64, dd) / 2;
        if self.cumulative {
            (1..=self.d as u64).map(per_distance).sum()
        } else {
            per_distance(self.d as u64)
        }
    }

    /// The §2.4 recipe ingredients for distance 1: Lemma 3.1's `g`, `|I|`,
    /// and `|O|`.
    ///
    /// # Panics
    /// Panics if `d != 1` (no tight `g(q)` is known for larger distances —
    /// §3.6 explains why the distance-2 bound degrades to `Ω(q²)`).
    pub fn recipe(&self) -> LowerBoundRecipe {
        assert_eq!(self.d, 1, "the tight recipe is only known for d = 1");
        LowerBoundRecipe::new(
            lemma31_g,
            self.closed_form_inputs() as f64,
            self.closed_form_outputs() as f64,
        )
    }
}

impl Problem for HammingProblem {
    type Input = u64;
    type Output = (u64, u64);

    fn inputs(&self) -> Vec<u64> {
        (0..(1u64 << self.b)).collect()
    }

    fn outputs(&self) -> Vec<(u64, u64)> {
        // Enumerate masks of the relevant weights once, then apply to
        // every string, keeping the canonical orientation u < v.
        let mut masks = Vec::new();
        let lo = if self.cumulative { 1 } else { self.d };
        for dd in lo..=self.d {
            masks.extend(weight_d_masks(self.b, dd));
        }
        let mut out = Vec::new();
        for u in 0..(1u64 << self.b) {
            for &m in &masks {
                let v = u ^ m;
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    fn inputs_of(&self, output: &(u64, u64)) -> Vec<u64> {
        vec![output.0, output.1]
    }

    fn num_inputs(&self) -> u64 {
        self.closed_form_inputs()
    }

    fn num_outputs(&self) -> u64 {
        self.closed_form_outputs()
    }
}

/// All `C(b,d)` bit masks of length `b` and weight `d`.
fn weight_d_masks(b: u32, d: u32) -> Vec<u64> {
    let mut masks = Vec::new();
    // Gosper's hack: iterate all d-weight masks below 2^b.
    if d == 0 {
        return vec![0];
    }
    let mut m: u64 = (1u64 << d) - 1;
    let limit = 1u64 << b;
    while m < limit {
        masks.push(m);
        let c = m & m.wrapping_neg();
        let r = m + c;
        m = (((r ^ m) >> 2) / c) | r;
        if c == 0 {
            break;
        }
    }
    masks
}

/// Lemma 3.1: a reducer with `q` inputs covers at most `(q/2)·log₂q`
/// distance-1 outputs.
pub fn lemma31_g(q: f64) -> f64 {
    if q <= 1.0 {
        0.0
    } else {
        q / 2.0 * q.log2()
    }
}

/// Theorem 3.2: `r ≥ b / log₂q` for the distance-1 problem.
pub fn theorem32_lower_bound(b: u32, q: f64) -> f64 {
    b as f64 / q.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::max_outputs_covered;

    #[test]
    fn distance_function() {
        assert_eq!(hamming_distance(0b1010, 0b1010), 0);
        assert_eq!(hamming_distance(0b1010, 0b1011), 1);
        assert_eq!(hamming_distance(0, 0b1111), 4);
    }

    #[test]
    fn output_count_matches_closed_form_d1() {
        for b in 1..=8 {
            let p = HammingProblem::distance_one(b);
            let outs = p.outputs();
            // (b/2)·2^b, exactly b·2^b / 2.
            assert_eq!(outs.len() as u64, (b as u64) * (1 << b) / 2);
            assert_eq!(outs.len() as u64, p.num_outputs());
        }
    }

    #[test]
    fn output_count_matches_closed_form_d2() {
        for b in 2..=8 {
            let p = HammingProblem::new(b, 2);
            assert_eq!(
                p.outputs().len() as u64,
                (1u64 << b) * binomial(b as u64, 2) / 2
            );
        }
    }

    #[test]
    fn outputs_are_canonical_distance_d_pairs() {
        let p = HammingProblem::new(5, 2);
        for (u, v) in p.outputs() {
            assert!(u < v);
            assert_eq!(hamming_distance(u, v), 2);
        }
    }

    #[test]
    fn lemma31_boundary_values() {
        // Basis of the induction: q=1 covers 0 outputs, q=2 covers 1.
        assert_eq!(lemma31_g(1.0), 0.0);
        assert_eq!(lemma31_g(2.0), 1.0);
        // q = 2^b covers all (b/2)2^b outputs with equality.
        let b = 6u32;
        let q = (1u64 << b) as f64;
        assert!((lemma31_g(q) - (b as f64 / 2.0) * q).abs() < 1e-9);
    }

    /// The heart of the reproduction of Lemma 3.1: on small instances,
    /// the *true* maximum number of outputs covered by any q-subset never
    /// exceeds (q/2)·log₂q — and subcubes achieve it exactly when q is a
    /// power of two.
    #[test]
    fn lemma31_dominates_empirical_g() {
        let p = HammingProblem::distance_one(4); // 16 inputs
        for q in 1..=16usize {
            let actual = max_outputs_covered(&p, q) as f64;
            let bound = lemma31_g(q as f64);
            assert!(
                actual <= bound + 1e-9,
                "q={q}: covered {actual} > Lemma 3.1 bound {bound}"
            );
        }
    }

    #[test]
    fn lemma31_tight_at_powers_of_two() {
        // A subcube of dimension k has q=2^k inputs and covers exactly
        // (q/2)·k outputs, meeting the bound.
        let p = HammingProblem::distance_one(4);
        for k in 0..=4u32 {
            let q = 1usize << k;
            let actual = max_outputs_covered(&p, q) as f64;
            assert!(
                (actual - lemma31_g(q as f64)).abs() < 1e-9,
                "q=2^{k}: covered {actual}, bound {}",
                lemma31_g(q as f64)
            );
        }
    }

    #[test]
    fn theorem32_extremes() {
        // q=2 → r ≥ b; q = 2^b → r ≥ 1 (§3.3's two simple cases).
        let b = 10;
        assert!((theorem32_lower_bound(b, 2.0) - b as f64).abs() < 1e-9);
        assert!((theorem32_lower_bound(b, (1u64 << b) as f64) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recipe_matches_theorem32() {
        let p = HammingProblem::distance_one(8);
        let recipe = p.recipe();
        for log_q in [1u32, 2, 4, 8] {
            let q = (1u64 << log_q) as f64;
            assert!((recipe.replication_lower_bound(q) - theorem32_lower_bound(8, q)).abs() < 1e-9);
        }
        assert!(recipe.g_over_q_monotone(&[2.0, 4.0, 8.0, 256.0]));
    }

    #[test]
    fn within_distance_counts_and_contents() {
        let p = HammingProblem::within_distance(6, 2);
        let outs = p.outputs();
        assert_eq!(outs.len() as u64, p.closed_form_outputs());
        // |O| = 2^b(C(b,1)+C(b,2))/2 = 64·21/2 = 672.
        assert_eq!(outs.len(), 672);
        for (u, v) in outs {
            let d = hamming_distance(u, v);
            assert!(u < v && (1..=2).contains(&d));
        }
    }

    #[test]
    fn mask_enumeration_counts() {
        assert_eq!(weight_d_masks(6, 1).len(), 6);
        assert_eq!(weight_d_masks(6, 2).len(), 15);
        assert_eq!(weight_d_masks(6, 6).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of the supported range")]
    fn oversized_b_rejected() {
        HammingProblem::distance_one(40);
    }
}
