//! The Hamming-distance problem (§3).
//!
//! Inputs are the `2^b` bit strings of length `b`; outputs are the pairs of
//! strings at Hamming distance exactly `d` (the paper's headline results
//! are for `d = 1`). Submodules provide the constructive algorithms:
//!
//! * [`problem`] — the [`Problem`](crate::model::Problem) instance and the
//!   closed-form bounds (`|O| = (b/2)·2^b` for `d=1`, Lemma 3.1's
//!   `g(q) = (q/2)·log₂q`, Theorem 3.2's `r ≥ b/log₂q`);
//! * [`splitting`] — the q=2 pairs schema and the Splitting algorithm
//!   family (§3.3), plus the distance-`d` generalisation (§3.6);
//! * [`weight`] — the weight-partition algorithms for large `q` (§3.4
//!   two-dimensional, §3.5 `d`-dimensional);
//! * [`ball`] — the Ball-2 schema for distance 2 (§3.6);
//! * [`multi_round`] — splitting re-expressed as DAGs of rounds (parallel
//!   per-segment nodes, depth-2 consolidation) for the planner's
//!   round-structure search.

pub mod ball;
pub mod multi_round;
pub mod problem;
pub mod splitting;
pub mod weight;

pub use ball::Ball2Schema;
pub use multi_round::{
    all_strings, parallel_split_dag, split_consolidate_dag, split_dag, HamToken,
};
pub use problem::{hamming_distance, lemma31_g, theorem32_lower_bound, HammingProblem};
pub use splitting::{DistanceDSplittingSchema, PairsSchema, SplittingSchema};
pub use weight::{WeightSchema2D, WeightSchemaD};
