//! The Splitting algorithm family (§3.3) and its distance-`d`
//! generalisation (§3.6).
//!
//! For `c | b`, the Splitting algorithm cuts each `b`-bit string into `c`
//! segments of `b/c` bits. There are `c` groups of reducers; the Group-`i`
//! reducer for a string is obtained by deleting segment `i`. Strings at
//! distance 1 disagree in exactly one segment `i` and therefore meet at
//! their common Group-`i` reducer. Reducer size is `q = 2^{b/c}` and the
//! replication rate is exactly `c = b / log₂q` — *on* the Theorem 3.2
//! hyperbola (the dots of Figure 1).
//!
//! For distance `d ≤ k`, deleting every `d`-subset of `k` segments covers
//! all pairs at distance ≤ `d` with replication `C(k,d)` (§3.6).

use crate::model::{MappingSchema, ReducerId};
use crate::problems::hamming::problem::HammingProblem;
use crate::recipe::binomial;

/// The `q = 2` extreme (§3.3): one reducer per potential output pair; each
/// string goes to the `b` reducers of the pairs it belongs to, so `r = b`,
/// matching the lower bound `b / log₂2`.
#[derive(Debug, Clone, Copy)]
pub struct PairsSchema {
    /// Bit-string length.
    pub b: u32,
}

impl MappingSchema<HammingProblem> for PairsSchema {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        let w = *input;
        (0..self.b)
            .map(|i| {
                let partner = w ^ (1u64 << i);
                let low = w.min(partner);
                low * self.b as u64 + i as u64
            })
            .collect()
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        2
    }

    fn name(&self) -> String {
        format!("pairs(b={})", self.b)
    }
}

/// Deletes segment `seg` (of width `width` bits) from `w`.
pub(crate) fn remove_segment(w: u64, seg: u32, width: u32) -> u64 {
    let lo_bits = seg * width;
    let low = w & ((1u64 << lo_bits) - 1);
    let high = w >> (lo_bits + width);
    low | (high << lo_bits)
}

/// Deletes several segments (indices sorted ascending) of equal `width`.
fn remove_segments(w: u64, segs: &[u32], width: u32) -> u64 {
    // Delete from the highest segment down so lower indices stay valid.
    let mut out = w;
    for &s in segs.iter().rev() {
        out = remove_segment(out, s, width);
    }
    out
}

/// The Splitting algorithm (§3.3) with `c` segments: `q = 2^{b/c}`,
/// `r = c`, exactly matching Theorem 3.2.
#[derive(Debug, Clone, Copy)]
pub struct SplittingSchema {
    /// Bit-string length.
    pub b: u32,
    /// Number of segments (must divide `b`).
    pub c: u32,
}

impl SplittingSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `1 <= c <= b` and `c` divides `b`.
    pub fn new(b: u32, c: u32) -> Self {
        assert!(c >= 1 && c <= b, "c={c} must be in 1..={b}");
        assert_eq!(b % c, 0, "c={c} must divide b={b}");
        SplittingSchema { b, c }
    }

    /// Reducer size `q = 2^{b/c}`.
    pub fn q(&self) -> u64 {
        1u64 << (self.b / self.c)
    }

    /// Replication rate `r = c` (matches `b / log₂q` exactly).
    pub fn replication(&self) -> u64 {
        self.c as u64
    }
}

impl MappingSchema<HammingProblem> for SplittingSchema {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        let width = self.b / self.c;
        let residual_bits = self.b - width;
        (0..self.c)
            .map(|i| {
                let key = remove_segment(*input, i, width);
                (i as u64) << residual_bits | key
            })
            .collect()
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.q()
    }

    fn name(&self) -> String {
        format!("splitting(b={}, c={})", self.b, self.c)
    }
}

/// The distance-`d` generalisation (§3.6): split into `k` segments and
/// create one reducer group per `d`-subset of segments to delete. Two
/// strings at distance ≤ `d` disagree in at most `d` segments, so some
/// deletion subset hides all their differences. Replication is `C(k,d)`,
/// reducer size `2^{b·d/k}`.
#[derive(Debug, Clone)]
pub struct DistanceDSplittingSchema {
    /// Bit-string length.
    pub b: u32,
    /// Number of segments (must divide `b`).
    pub k: u32,
    /// Distance bound (number of segments deleted per reducer group).
    pub d: u32,
    combos: Vec<Vec<u32>>,
}

impl DistanceDSplittingSchema {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `k` divides `b` and `1 <= d <= k`.
    pub fn new(b: u32, k: u32, d: u32) -> Self {
        assert!(k >= 1 && k <= b, "k={k} must be in 1..={b}");
        assert_eq!(b % k, 0, "k={k} must divide b={b}");
        assert!(d >= 1 && d <= k, "d={d} must be in 1..={k}");
        DistanceDSplittingSchema {
            b,
            k,
            d,
            combos: combinations(k, d),
        }
    }

    /// Reducer size `q = 2^{b·d/k}` (the deleted bits are free).
    pub fn q(&self) -> u64 {
        1u64 << (self.b / self.k * self.d)
    }

    /// Replication rate `r = C(k,d)` (§3.6's `k^d/d!` approximation is the
    /// large-`k` asymptote of this).
    pub fn replication(&self) -> u64 {
        binomial(self.k as u64, self.d as u64)
    }
}

/// All `d`-subsets of `0..k` in lexicographic order.
fn combinations(k: u32, d: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut cur: Vec<u32> = (0..d).collect();
    loop {
        out.push(cur.clone());
        // Advance.
        let mut i = d as i64 - 1;
        while i >= 0 && cur[i as usize] == k - d + i as u32 {
            i -= 1;
        }
        if i < 0 {
            return out;
        }
        let i = i as usize;
        cur[i] += 1;
        for j in (i + 1)..d as usize {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

impl MappingSchema<HammingProblem> for DistanceDSplittingSchema {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        let width = self.b / self.k;
        let residual_bits = self.b - width * self.d;
        self.combos
            .iter()
            .enumerate()
            .map(|(ci, segs)| {
                let key = remove_segments(*input, segs, width);
                (ci as u64) << residual_bits | key
            })
            .collect()
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.q()
    }

    fn name(&self) -> String {
        format!("splitting-d(b={}, k={}, d={})", self.b, self.k, self.d)
    }
}

/// Running distance-`d` splitting on *instance* data (a fuzzy join, \[3\]):
/// each reducer compares its strings pairwise and emits pairs at Hamming
/// distance `1..=d`. A pair differing in segment set `D` (`|D| ≤ d`)
/// appears in every reducer group whose deletion set contains `D`; only
/// the lexicographically first such group emits it, so output is
/// duplicate-free.
impl mr_sim::schema::SchemaJob<u64, (u64, u64)> for DistanceDSplittingSchema {
    fn assign(&self, input: &u64) -> Vec<crate::model::ReducerId> {
        MappingSchema::assign(self, input)
    }

    fn reduce(
        &self,
        reducer: crate::model::ReducerId,
        inputs: &[u64],
        emit: &mut dyn FnMut((u64, u64)),
    ) {
        let width = self.b / self.k;
        let residual_bits = self.b - width * self.d;
        let combo_index = (reducer >> residual_bits) as usize;
        let combo = &self.combos[combo_index];
        let seg_mask = |seg: u32| ((1u64 << width) - 1) << (seg * width);
        for i in 0..inputs.len() {
            for j in (i + 1)..inputs.len() {
                let (u, v) = (inputs[i].min(inputs[j]), inputs[i].max(inputs[j]));
                if u == v {
                    continue;
                }
                let dist = (u ^ v).count_ones();
                if dist == 0 || dist > self.d {
                    continue;
                }
                // Differing segments.
                let differing: Vec<u32> = (0..self.k)
                    .filter(|&s| (u ^ v) & seg_mask(s) != 0)
                    .collect();
                // Owning combo: `differing` padded with the smallest
                // segments not already present, then sorted.
                let mut owner = differing.clone();
                for s in 0..self.k {
                    if owner.len() == self.d as usize {
                        break;
                    }
                    if !differing.contains(&s) {
                        owner.push(s);
                    }
                }
                owner.sort_unstable();
                if &owner == combo {
                    emit((u, v));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;
    use crate::problems::hamming::problem::{hamming_distance, theorem32_lower_bound};

    #[test]
    fn remove_segment_bit_surgery() {
        // w = 0b110_010_101, segments of width 3 (b=9).
        let w = 0b110_010_101u64;
        assert_eq!(remove_segment(w, 0, 3), 0b110_010);
        assert_eq!(remove_segment(w, 1, 3), 0b110_101);
        assert_eq!(remove_segment(w, 2, 3), 0b010_101);
    }

    #[test]
    fn remove_multiple_segments() {
        let w = 0b11_10_01_00u64; // b=8, width 2
        assert_eq!(remove_segments(w, &[0, 3], 2), 0b10_01);
        assert_eq!(remove_segments(w, &[1, 2], 2), 0b11_00);
    }

    #[test]
    fn pairs_schema_is_valid_and_matches_bound() {
        let b = 6;
        let p = HammingProblem::distance_one(b);
        let s = PairsSchema { b };
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        assert_eq!(report.max_load, 2);
        // r = b exactly = lower bound at q = 2.
        assert!((report.replication_rate - b as f64).abs() < 1e-9);
        assert!((report.replication_rate - theorem32_lower_bound(b, 2.0)).abs() < 1e-9);
    }

    #[test]
    fn splitting_schema_valid_for_all_divisors() {
        let b = 8;
        let p = HammingProblem::distance_one(b);
        for c in [1u32, 2, 4, 8] {
            let s = SplittingSchema::new(b, c);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "c={c}: {report:?}");
            // Replication is exactly c — exactly on the hyperbola.
            assert!(
                (report.replication_rate - c as f64).abs() < 1e-9,
                "c={c}: r={}",
                report.replication_rate
            );
            // Reducer load is exactly 2^{b/c} for every reducer.
            assert_eq!(report.max_load, s.q());
            let bound = theorem32_lower_bound(b, s.q() as f64);
            assert!(
                (report.replication_rate - bound).abs() < 1e-9,
                "c={c}: r={} vs bound {bound}",
                report.replication_rate
            );
        }
    }

    #[test]
    fn splitting_c1_is_single_reducer() {
        let s = SplittingSchema::new(6, 1);
        let p = HammingProblem::distance_one(6);
        let report = validate_schema(&p, &s);
        assert!(report.is_valid());
        assert_eq!(report.num_reducers, 1);
        assert!((report.replication_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn splitting_rejects_non_divisor() {
        SplittingSchema::new(8, 3);
    }

    #[test]
    fn combinations_enumeration() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(4, 2)[0], vec![0, 1]);
        assert_eq!(combinations(4, 2)[5], vec![2, 3]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn distance_d_splitting_covers_distance_2() {
        let b = 8;
        let p = HammingProblem::new(b, 2);
        let s = DistanceDSplittingSchema::new(b, 4, 2);
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        // r = C(4,2) = 6 exactly.
        assert!((report.replication_rate - 6.0).abs() < 1e-9);
        assert_eq!(report.max_load, s.q()); // 2^{8/4*2} = 16
    }

    #[test]
    fn distance_d_splitting_also_covers_smaller_distances() {
        // Deleting d segments hides up to d differing bits, so the schema
        // covers distance-1 pairs too.
        let b = 8;
        let p1 = HammingProblem::distance_one(b);
        let s = DistanceDSplittingSchema::new(b, 4, 2);
        let report = validate_schema(&p1, &s);
        assert_eq!(report.uncovered_outputs, 0);
    }

    #[test]
    fn distance_d_reduces_to_plain_splitting_when_d_is_1() {
        let b = 8;
        let p = HammingProblem::distance_one(b);
        let plain = validate_schema(&p, &SplittingSchema::new(b, 4));
        let viad = validate_schema(&p, &DistanceDSplittingSchema::new(b, 4, 1));
        assert_eq!(plain.replication_rate, viad.replication_rate);
        assert_eq!(plain.max_load, viad.max_load);
        assert_eq!(plain.num_reducers, viad.num_reducers);
    }

    #[test]
    fn splitting_covers_the_cumulative_fuzzy_join_problem() {
        // §3.6 / [3]: deleting d segments covers ALL pairs at distance
        // <= d, i.e. the within-distance problem.
        let p = HammingProblem::within_distance(8, 2);
        let s = DistanceDSplittingSchema::new(8, 4, 2);
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
    }

    #[test]
    fn fuzzy_join_on_instance_data_matches_serial_scan() {
        use mr_sim::{run_schema, EngineConfig};
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        // A random subset of 12-bit strings; find all pairs at distance
        // <= 2 via the distributed schema and a serial all-pairs scan.
        let b = 12u32;
        let d = 2u32;
        let mut rng = StdRng::seed_from_u64(77);
        let mut strings: Vec<u64> = (0..500).map(|_| rng.random_range(0..(1u64 << b))).collect();
        strings.sort_unstable();
        strings.dedup();

        let mut expected: Vec<(u64, u64)> = Vec::new();
        for i in 0..strings.len() {
            for j in (i + 1)..strings.len() {
                let dist = hamming_distance(strings[i], strings[j]);
                if dist >= 1 && dist <= d {
                    expected.push((strings[i], strings[j]));
                }
            }
        }
        expected.sort_unstable();

        let schema = DistanceDSplittingSchema::new(b, 4, d);
        for cfg in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
            let (mut found, metrics) = run_schema(&strings, &schema, &cfg).unwrap();
            found.sort_unstable();
            assert_eq!(found, expected);
            // Replication is exactly C(k,d) = 6 per input.
            assert!((metrics.replication_rate() - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_3_coverage() {
        let b = 6;
        let p = HammingProblem::new(b, 3);
        let s = DistanceDSplittingSchema::new(b, 3, 3);
        // Deleting all 3 segments leaves one reducer per combo — i.e. one
        // reducer total per group, covering everything.
        let report = validate_schema(&p, &s);
        assert!(report.is_valid(), "{report:?}");
        assert!((report.replication_rate - 1.0).abs() < 1e-9);
    }
}
