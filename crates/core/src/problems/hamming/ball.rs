//! The Ball-2 schema for Hamming distance 2 (§3.6, after \[3\]).
//!
//! One reducer per `b`-bit string `s`; every input `w` is sent to the `b`
//! reducers whose centre is at distance 1 from `w`. The reducer for `s`
//! therefore holds exactly the ball of radius 1 around `s` minus its
//! centre — `b` strings, pairwise at distance 2 — and covers all `C(b,2)`
//! distance-2 pairs through `s`. With `q = b` and `Θ(q²)` outputs per
//! reducer, this construction is why no `O(q log q)`-style `g(q)` (and
//! hence no tight lower bound) exists for distance 2.

use crate::model::{MappingSchema, ReducerId};
use crate::problems::hamming::problem::HammingProblem;

/// The Ball-2 schema: reducer per centre string, `q = b`, `r = b`.
#[derive(Debug, Clone, Copy)]
pub struct Ball2Schema {
    /// Bit-string length.
    pub b: u32,
}

impl Ball2Schema {
    /// Creates the schema.
    pub fn new(b: u32) -> Self {
        Ball2Schema { b }
    }

    /// Outputs covered per reducer: `C(b,2) ≈ q²/2` (§3.6).
    pub fn outputs_per_reducer(&self) -> u64 {
        let b = self.b as u64;
        b * (b - 1) / 2
    }
}

impl MappingSchema<HammingProblem> for Ball2Schema {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        // Send w to the reducers of all centres at distance 1.
        (0..self.b).map(|i| *input ^ (1u64 << i)).collect()
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.b as u64
    }

    fn name(&self) -> String {
        format!("ball-2(b={})", self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;

    #[test]
    fn ball2_covers_all_distance_2_pairs() {
        for b in [4u32, 6, 8] {
            let p = HammingProblem::new(b, 2);
            let s = Ball2Schema::new(b);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "b={b}: {report:?}");
            // Every string is a centre; every string is sent to b reducers.
            assert_eq!(report.num_reducers, 1u64 << b);
            assert!((report.replication_rate - b as f64).abs() < 1e-9);
            assert_eq!(report.max_load, b as u64);
        }
    }

    #[test]
    fn ball2_reducer_load_is_exactly_b() {
        // Each centre receives precisely its b distance-1 neighbours.
        let b = 6;
        let p = HammingProblem::new(b, 2);
        let report = validate_schema(&p, &Ball2Schema::new(b));
        assert_eq!(report.max_load, b as u64);
        assert_eq!(report.total_assignments, (1u64 << b) * b as u64);
    }

    #[test]
    fn ball2_demonstrates_quadratic_coverage() {
        // The §3.6 point: coverage per reducer is Θ(q²), far above
        // Lemma 3.1's (q/2)log₂q, so the d=1 lower-bound recipe cannot
        // extend to d=2.
        let s = Ball2Schema::new(16);
        let q = 16.0f64;
        let quadratic = s.outputs_per_reducer() as f64;
        let lemma31_style = q / 2.0 * q.log2();
        assert!(quadratic > 3.0 * lemma31_style);
    }

    #[test]
    fn ball2_does_not_cover_distance_1() {
        // The ball around s contains strings pairwise at distance exactly
        // 2 — so distance-1 pairs are *not* covered (documented
        // non-goal; the schema is for the distance-2 problem only).
        let b = 5;
        let p1 = HammingProblem::distance_one(b);
        let report = validate_schema(&p1, &Ball2Schema::new(b));
        assert!(report.uncovered_outputs > 0);
    }
}
