//! Multi-round Hamming-distance-1 structures for the round-structure
//! search.
//!
//! The one-round Splitting algorithm (§3.3,
//! [`SplittingSchema`](super::splitting::SplittingSchema)) sits
//! exactly on the Theorem 3.2 hyperbola: `k` segments give `q = 2^{b/k}`,
//! `r = k`. This module re-expresses it as a [`DagJob`] and adds the two
//! multi-round variants the planner enumerates:
//!
//! * [`split_dag`] — the classic one-round schema: one node, every string
//!   replicated to its `k` group reducers (`r = k`, `q = 2^{b/k}`);
//! * [`parallel_split_dag`] — `k` *source* nodes, one per held-out
//!   segment, each keyed by the other `b − b/k` bits. Per-node `r = 1`
//!   and `q = 2^{b/k}`; the totals match the one-round schema exactly
//!   (`k` rounds of `2^b` pairs each), so under cost
//!   `Σ rounds (a·r + b·q)` the extra per-round `b·q` charges make it
//!   strictly worse whenever `b > 0` — a structure the search must
//!   *consider and reject*, and the depth stays 1 because the nodes run
//!   in one stage;
//! * [`split_consolidate_dag`] — the parallel split feeding a
//!   consolidation round that re-keys every found pair by the top bits of
//!   its smaller endpoint (depth 2). The extra round only costs, so it
//!   documents where deeper Hamming structures stop paying.
//!
//! Every variant emits each distance-1 pair exactly once (a pair's single
//! differing bit lies in exactly one segment), as
//! [`HammingProblem`](super::problem::HammingProblem)
//! requires, so the variants are interchangeable up to output order.

use super::problem::hamming_distance;
use super::splitting::remove_segment;
use mr_sim::{DagJob, FnMapper, FnReducer};

/// The uniform token a Hamming [`DagJob`] flows between rounds: input
/// strings in, found pairs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HamToken {
    /// A `b`-bit input string.
    Str(u64),
    /// A found pair at Hamming distance 1, smaller endpoint first.
    Pair(u64, u64),
}

/// All `2^b` strings as tokens — the instance every Hamming DAG runs on
/// (the §3 problem takes the full cube as input).
pub fn all_strings(b: u32) -> Vec<HamToken> {
    (0..(1u64 << b)).map(HamToken::Str).collect()
}

/// Asserts the segment-count precondition shared by every variant.
fn check(b: u32, k: u32) {
    assert!(k >= 1 && k <= b, "k={k} must be in 1..={b}");
    assert_eq!(b % k, 0, "k={k} must divide b={b}");
}

/// Emits each distance-1 pair among the reducer's strings, smaller
/// endpoint first, in scan order over the input slice.
fn emit_close_pairs(inputs: &[HamToken], emit: &mut dyn FnMut(HamToken)) {
    for i in 0..inputs.len() {
        for j in (i + 1)..inputs.len() {
            let (HamToken::Str(a), HamToken::Str(b)) = (inputs[i], inputs[j]) else {
                unreachable!("split rounds consume strings only");
            };
            if hamming_distance(a, b) == 1 {
                emit(HamToken::Pair(a.min(b), a.max(b)));
            }
        }
    }
}

/// The one-round Splitting algorithm as a single-node DAG: string `w`
/// goes to the `k` reducers obtained by deleting one segment (group `i`
/// prefixed into the key, exactly like [`SplittingSchema`]).
///
/// [`SplittingSchema`]: super::splitting::SplittingSchema
pub fn split_dag(b: u32, k: u32) -> DagJob<HamToken> {
    check(b, k);
    let width = b / k;
    let residual_bits = b - width;
    let mut dag = DagJob::new();
    dag.add_round(
        format!("split(k={k})"),
        vec![],
        FnMapper(
            move |token: &HamToken, emit: &mut dyn FnMut(u64, HamToken)| {
                let HamToken::Str(w) = token else {
                    unreachable!("split rounds consume strings only");
                };
                for i in 0..k {
                    let key = remove_segment(*w, i, width);
                    emit((i as u64) << residual_bits | key, *token);
                }
            },
        ),
        FnReducer(
            |_: &u64, inputs: &[HamToken], emit: &mut dyn FnMut(HamToken)| {
                emit_close_pairs(inputs, emit)
            },
        ),
    );
    dag
}

/// The splitting groups as `k` independent DAG nodes, one per held-out
/// segment: node `i` keys every string by its bits outside segment `i`
/// (per-node `r = 1`), and all nodes are sinks.
pub fn parallel_split_dag(b: u32, k: u32) -> DagJob<HamToken> {
    check(b, k);
    let width = b / k;
    let mut dag = DagJob::new();
    for i in 0..k {
        dag.add_round(
            format!("split-seg-{i}"),
            vec![],
            FnMapper(
                move |token: &HamToken, emit: &mut dyn FnMut(u64, HamToken)| {
                    let HamToken::Str(w) = token else {
                        unreachable!("split rounds consume strings only");
                    };
                    emit(remove_segment(*w, i, width), *token);
                },
            ),
            FnReducer(
                |_: &u64, inputs: &[HamToken], emit: &mut dyn FnMut(HamToken)| {
                    emit_close_pairs(inputs, emit)
                },
            ),
        );
    }
    dag
}

/// [`parallel_split_dag`] feeding a depth-2 consolidation round that
/// buckets every found pair by the top two bits of its smaller endpoint
/// and re-emits it — the "collect the answer somewhere" round a real
/// pipeline would append before writing output.
pub fn split_consolidate_dag(b: u32, k: u32) -> DagJob<HamToken> {
    let mut dag = parallel_split_dag(b, k);
    let deps: Vec<usize> = (0..k as usize).collect();
    let shift = b.saturating_sub(2);
    dag.add_round(
        "consolidate",
        deps,
        FnMapper(
            move |token: &HamToken, emit: &mut dyn FnMut(u64, HamToken)| {
                let HamToken::Pair(u, _) = token else {
                    unreachable!("the consolidation round consumes pairs only");
                };
                emit(u >> shift, *token);
            },
        ),
        FnReducer(
            |_: &u64, inputs: &[HamToken], emit: &mut dyn FnMut(HamToken)| {
                for token in inputs {
                    emit(*token);
                }
            },
        ),
    );
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_sim::EngineConfig;

    /// Ground truth: serial all-pairs scan.
    fn expected_pairs(b: u32) -> Vec<(u64, u64)> {
        let n = 1u64 << b;
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if hamming_distance(u, v) == 1 {
                    out.push((u, v));
                }
            }
        }
        out
    }

    fn found_pairs(dag: &DagJob<HamToken>, b: u32, cfg: &EngineConfig) -> Vec<(u64, u64)> {
        let (out, _) = dag.run(&all_strings(b), cfg).unwrap();
        let mut pairs: Vec<(u64, u64)> = out
            .into_iter()
            .map(|t| match t {
                HamToken::Pair(u, v) => (u, v),
                HamToken::Str(_) => panic!("strings in the output"),
            })
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn every_variant_finds_every_pair_exactly_once() {
        let b = 6;
        let expected = expected_pairs(b);
        assert_eq!(expected.len() as u64, (b as u64) << (b - 1)); // b·2^(b−1)
        let cfg = EngineConfig::sequential();
        for k in [1u32, 2, 3, 6] {
            assert_eq!(
                found_pairs(&split_dag(b, k), b, &cfg),
                expected,
                "split k={k}"
            );
        }
        for k in [2u32, 3, 6] {
            assert_eq!(
                found_pairs(&parallel_split_dag(b, k), b, &cfg),
                expected,
                "parallel k={k}"
            );
            assert_eq!(
                found_pairs(&split_consolidate_dag(b, k), b, &cfg),
                expected,
                "consolidate k={k}"
            );
        }
    }

    #[test]
    fn census_matches_the_splitting_closed_forms() {
        let b = 6;
        let k = 3;
        let n = 1u64 << b;
        let cfg = EngineConfig::sequential();
        // One round: q = 2^{b/k}, pairs = k·2^b.
        let (_, m) = split_dag(b, k).run(&all_strings(b), &cfg).unwrap();
        assert_eq!(m.rounds.len(), 1);
        assert_eq!(m.rounds[0].load.max, 1 << (b / k));
        assert_eq!(m.rounds[0].kv_pairs, k as u64 * n);
        // Parallel: k rounds of q = 2^{b/k}, pairs = 2^b each — identical
        // totals, spread over nodes.
        let (_, mp) = parallel_split_dag(b, k).run(&all_strings(b), &cfg).unwrap();
        assert_eq!(mp.rounds.len(), k as usize);
        for r in &mp.rounds {
            assert_eq!(r.load.max, 1 << (b / k));
            assert_eq!(r.kv_pairs, n);
        }
    }

    #[test]
    fn parallel_split_runs_in_one_stage_and_consolidate_in_two() {
        assert_eq!(parallel_split_dag(6, 3).depth(), 1);
        assert_eq!(split_consolidate_dag(6, 3).depth(), 2);
    }

    #[test]
    fn variants_are_worker_count_independent() {
        let b = 6;
        for build in [
            split_dag as fn(u32, u32) -> DagJob<HamToken>,
            parallel_split_dag,
            split_consolidate_dag,
        ] {
            let dag = build(b, 2);
            let (seq, ms) = dag
                .run(&all_strings(b), &EngineConfig::sequential())
                .unwrap();
            for workers in [1usize, 4, 16] {
                let (par, mp) = dag
                    .run(&all_strings(b), &EngineConfig::parallel(workers))
                    .unwrap();
                assert_eq!(seq, par, "workers={workers}");
                assert_eq!(ms, mp, "workers={workers}");
            }
        }
    }
}
