//! Weight-partition algorithms for large `q` (§3.4, §3.5).
//!
//! These algorithms reach replication rates strictly below 2 — the region
//! between `log₂q = b/2` and `log₂q = b` in Figure 1 that the Splitting
//! family cannot reach.
//!
//! The 2-D version (§3.4) halves each string and buckets it by the pair of
//! half weights, `k` consecutive weights per bucket. Strings whose half
//! weight sits on the *lower border* of its bucket are replicated to the
//! neighbouring bucket so that flipping a 1→0 across the border is still
//! covered. Replication is `1 + 2/k − O(1/k²)` (§3.4 approximates it as
//! `1 + 2/k`), and the most populous cell has about `k²·2^b/(πb)` strings.
//!
//! The `d`-dimensional version (§3.5) splits into `d` pieces and replicates
//! across each of the `d` lower faces: `r = 1 + d/k`,
//! `log₂q ≈ b − (d/2)·log₂b`.

use crate::model::{MappingSchema, ReducerId};
use crate::problems::hamming::problem::HammingProblem;
use crate::recipe::binomial;

/// Weight-bucket index for weight `w` with bucket side `k` and
/// `num_groups` buckets (the last bucket absorbs the top weight, §3.4).
fn group_of(w: u32, k: u32, num_groups: u32) -> u32 {
    (w / k).min(num_groups - 1)
}

/// True when weight `w` is the lowest weight of its bucket (and there is a
/// bucket below): such strings are replicated to the neighbouring bucket.
fn is_lower_border(w: u32, k: u32, num_groups: u32) -> bool {
    w > 0 && w.is_multiple_of(k) && w / k < num_groups
}

/// Per-bucket `(native, replica)` string counts for one dimension of
/// `piece`-bit halves/pieces: `native[g]` counts strings whose weight maps
/// to bucket `g`; `replica[g]` counts border strings of bucket `g+1`
/// replicated down into `g`.
fn dim_counts(piece: u32, k: u32, num_groups: u32) -> (Vec<u64>, Vec<u64>) {
    let mut native = vec![0u64; num_groups as usize];
    let mut replica = vec![0u64; num_groups as usize];
    for w in 0..=piece {
        let count = binomial(piece as u64, w as u64);
        native[group_of(w, k, num_groups) as usize] += count;
        if is_lower_border(w, k, num_groups) {
            replica[(w / k - 1) as usize] += count;
        }
    }
    (native, replica)
}

/// The two-dimensional weight-partition schema (§3.4).
#[derive(Debug, Clone, Copy)]
pub struct WeightSchema2D {
    /// Bit-string length (must be even).
    pub b: u32,
    /// Bucket side: `k` consecutive weights per bucket (must divide `b/2`).
    pub k: u32,
}

impl WeightSchema2D {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `b` is even and `k` divides `b/2`.
    pub fn new(b: u32, k: u32) -> Self {
        assert!(b >= 2 && b.is_multiple_of(2), "b={b} must be even");
        let half = b / 2;
        assert!(k >= 1 && k <= half, "k={k} must be in 1..={half}");
        assert_eq!(half % k, 0, "k={k} must divide b/2={half}");
        WeightSchema2D { b, k }
    }

    fn num_groups(&self) -> u32 {
        (self.b / 2) / self.k
    }

    /// Exact maximum cell load, counted with binomials. A cell `(i, j)`
    /// holds its native strings plus single-dimension border replicas from
    /// the bucket above in *one* coordinate (a distance-1 pair changes only
    /// one half, so no diagonal replicas exist):
    /// `load = Nᵢ·Nⱼ + Rᵢ·Nⱼ + Nᵢ·Rⱼ`.
    pub fn exact_max_load(&self) -> u64 {
        let (native, replica) = dim_counts(self.b / 2, self.k, self.num_groups());
        let ng = self.num_groups() as usize;
        let mut max = 0u64;
        for i in 0..ng {
            for j in 0..ng {
                let load = native[i] * native[j] + replica[i] * native[j] + native[i] * replica[j];
                max = max.max(load);
            }
        }
        max
    }

    /// §3.4's approximation of the most populous cell: `k²·2^b/(πb)`.
    pub fn approx_q(&self) -> f64 {
        let k = self.k as f64;
        let b = self.b as f64;
        k * k * (2.0f64).powf(b) / (std::f64::consts::PI * b)
    }

    /// §3.4's replication approximation `1 + 2/k`.
    pub fn approx_replication(&self) -> f64 {
        1.0 + 2.0 / self.k as f64
    }

    /// Exact replication rate: the fraction of strings whose left (resp.
    /// right) half weight is a lower border, counted with binomials.
    pub fn exact_replication(&self) -> f64 {
        let half = self.b / 2;
        let ng = self.num_groups();
        let total: u64 = 1u64 << half;
        let border: u64 = (0..=half)
            .filter(|&w| is_lower_border(w, self.k, ng))
            .map(|w| binomial(half as u64, w as u64))
            .sum();
        let frac = border as f64 / total as f64;
        // Each half contributes independently: E[replicas] = 1 + 2·frac.
        1.0 + 2.0 * frac
    }
}

impl MappingSchema<HammingProblem> for WeightSchema2D {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        let half = self.b / 2;
        let ng = self.num_groups();
        let mask = (1u64 << half) - 1;
        let wl = (*input & mask).count_ones();
        let wr = (*input >> half).count_ones();
        let gl = group_of(wl, self.k, ng);
        let gr = group_of(wr, self.k, ng);
        let id = |a: u32, b_: u32| (a as u64) * ng as u64 + b_ as u64;
        let mut rs = vec![id(gl, gr)];
        if is_lower_border(wl, self.k, ng) {
            rs.push(id(gl - 1, gr));
        }
        if is_lower_border(wr, self.k, ng) {
            rs.push(id(gl, gr - 1));
        }
        rs
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.exact_max_load()
    }

    fn name(&self) -> String {
        format!("weight-2d(b={}, k={})", self.b, self.k)
    }
}

/// The `d`-dimensional weight-partition schema (§3.5): split into `d`
/// pieces of `b/d` bits, bucket each piece's weight, and replicate across
/// each lower face.
#[derive(Debug, Clone, Copy)]
pub struct WeightSchemaD {
    /// Bit-string length (must be divisible by `d`).
    pub b: u32,
    /// Number of pieces.
    pub d: u32,
    /// Bucket side (must divide `b/d`).
    pub k: u32,
}

impl WeightSchemaD {
    /// Creates the schema.
    ///
    /// # Panics
    /// Panics unless `d` divides `b` and `k` divides `b/d`.
    pub fn new(b: u32, d: u32, k: u32) -> Self {
        assert!(d >= 1 && d <= b, "d={d} must be in 1..={b}");
        assert_eq!(b % d, 0, "d={d} must divide b={b}");
        let piece = b / d;
        assert!(k >= 1 && k <= piece, "k={k} must be in 1..={piece}");
        assert_eq!(piece % k, 0, "k={k} must divide b/d={piece}");
        WeightSchemaD { b, d, k }
    }

    fn num_groups(&self) -> u32 {
        (self.b / self.d) / self.k
    }

    /// §3.5's replication approximation `1 + d/k`.
    pub fn approx_replication(&self) -> f64 {
        1.0 + self.d as f64 / self.k as f64
    }

    /// Exact maximum cell load over all group tuples. A cell's load is
    /// `Π_t N_{g_t} + Σ_t R_{g_t}·Π_{u≠t} N_{g_u}` (native strings plus
    /// single-dimension border replicas), maximised by brute force over
    /// the `ng^d` cells.
    pub fn exact_max_load(&self) -> u64 {
        let ng = self.num_groups() as usize;
        let d = self.d as usize;
        let (native, replica) = dim_counts(self.b / self.d, self.k, self.num_groups());
        let mut max = 0u64;
        let mut cell = vec![0usize; d];
        loop {
            let mut load: u64 = cell.iter().map(|&g| native[g]).product();
            for t in 0..d {
                // Replicas in dimension t multiply the native counts of
                // every other dimension.
                let others: u64 = cell
                    .iter()
                    .enumerate()
                    .filter(|&(u, _)| u != t)
                    .map(|(_, &g)| native[g])
                    .product();
                load += replica[cell[t]] * others;
            }
            max = max.max(load);
            // Advance the mixed-radix counter.
            let mut t = 0;
            loop {
                if t == d {
                    return max;
                }
                cell[t] += 1;
                if cell[t] < ng {
                    break;
                }
                cell[t] = 0;
                t += 1;
            }
        }
    }
}

impl MappingSchema<HammingProblem> for WeightSchemaD {
    fn assign(&self, input: &u64) -> Vec<ReducerId> {
        let piece = self.b / self.d;
        let ng = self.num_groups();
        let mask = (1u64 << piece) - 1;
        // Per-piece weights and groups.
        let weights: Vec<u32> = (0..self.d)
            .map(|t| ((*input >> (t * piece)) & mask).count_ones())
            .collect();
        let groups: Vec<u32> = weights.iter().map(|&w| group_of(w, self.k, ng)).collect();
        let encode =
            |gs: &[u32]| -> u64 { gs.iter().fold(0u64, |acc, &g| acc * ng as u64 + g as u64) };
        let mut rs = vec![encode(&groups)];
        // A pair at distance 1 differs in exactly one piece, so only
        // single-dimension neighbours are needed.
        for t in 0..self.d as usize {
            if is_lower_border(weights[t], self.k, ng) {
                let mut gs = groups.clone();
                gs[t] -= 1;
                rs.push(encode(&gs));
            }
        }
        rs
    }

    fn max_inputs_per_reducer(&self) -> u64 {
        self.exact_max_load()
    }

    fn name(&self) -> String {
        format!("weight-{}d(b={}, k={})", self.d, self.b, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_schema;

    #[test]
    fn group_and_border_logic() {
        // b/2 = 6, k = 3 → groups {0,1,2}, {3,4,5,6}.
        assert_eq!(group_of(0, 3, 2), 0);
        assert_eq!(group_of(2, 3, 2), 0);
        assert_eq!(group_of(3, 3, 2), 1);
        assert_eq!(group_of(6, 3, 2), 1); // absorbed extra weight
        assert!(is_lower_border(3, 3, 2));
        assert!(!is_lower_border(0, 3, 2));
        assert!(!is_lower_border(6, 3, 2)); // top weight is interior
        assert!(!is_lower_border(4, 3, 2));
    }

    #[test]
    fn weight_2d_is_a_valid_schema() {
        // All cases have at least two weight buckets per half, so the
        // border machinery is actually exercised.
        for (b, k) in [(8u32, 2u32), (10, 1), (12, 2), (12, 3)] {
            let p = HammingProblem::distance_one(b);
            let s = WeightSchema2D::new(b, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "b={b} k={k}: {report:?}");
            // Exact replication accounting matches the measured rate.
            assert!(
                (report.replication_rate - s.exact_replication()).abs() < 1e-9,
                "b={b} k={k}: measured {} vs exact {}",
                report.replication_rate,
                s.exact_replication()
            );
            // And the §3.4 approximation 1 + 2/k is close.
            assert!(
                (report.replication_rate - s.approx_replication()).abs() < 0.45,
                "b={b} k={k}: measured {} vs approx {}",
                report.replication_rate,
                s.approx_replication()
            );
        }
    }

    #[test]
    fn weight_2d_replication_is_below_two() {
        // The whole point of §3.4: r < 2 where splitting can only give 2.
        // (k must leave at least two buckets per half, else r trivially 1.)
        for k in [2u32, 3] {
            let s = WeightSchema2D::new(12, k);
            let p = HammingProblem::distance_one(12);
            let report = validate_schema(&p, &s);
            assert!(
                report.replication_rate < 2.0,
                "k={k}: r={}",
                report.replication_rate
            );
            assert!(report.replication_rate > 1.0);
        }
    }

    #[test]
    fn weight_2d_exact_max_load_matches_measured() {
        let b = 10;
        let s = WeightSchema2D::new(b, 1);
        let p = HammingProblem::distance_one(b);
        let report = validate_schema(&p, &s);
        assert_eq!(report.max_load, s.exact_max_load());
    }

    #[test]
    fn weight_2d_q_approximation_is_in_the_ballpark() {
        // The §3.4 estimate k²2^b/(πb) keeps only the central binomial
        // term and ignores the replicated border weight, so it undershoots
        // by a b-independent constant; check the ratio is bounded and does
        // not grow with b.
        let ratio = |b: u32| {
            let s = WeightSchema2D::new(b, 2);
            s.exact_max_load() as f64 / s.approx_q()
        };
        // With k=2 the true cell load is ≈ 8·C(b/2, b/4)² ≈ 8·approx/k²·…,
        // i.e. the ratio tends to a constant ≈ 8 from below.
        let r16 = ratio(16);
        let r32 = ratio(32);
        assert!((1.0..8.0).contains(&r16), "ratio at b=16: {r16}");
        assert!((1.0..8.0).contains(&r32), "ratio at b=32: {r32}");
    }

    #[test]
    fn weight_d_reduces_to_2d() {
        let b = 8;
        let p = HammingProblem::distance_one(b);
        let s2 = WeightSchema2D::new(b, 2);
        let sd = WeightSchemaD::new(b, 2, 2);
        let r2 = validate_schema(&p, &s2);
        let rd = validate_schema(&p, &sd);
        assert_eq!(r2.total_assignments, rd.total_assignments);
        assert_eq!(r2.max_load, rd.max_load);
        assert!(rd.is_valid());
    }

    #[test]
    fn weight_3d_and_4d_are_valid() {
        let b = 12;
        let p = HammingProblem::distance_one(b);
        for (d, k) in [(3u32, 2u32), (4, 3), (4, 1)] {
            let s = WeightSchemaD::new(b, d, k);
            let report = validate_schema(&p, &s);
            assert!(report.is_valid(), "d={d} k={k}: {report:?}");
            // r ≈ 1 + d/k, always within the paper's constant slack.
            let approx = s.approx_replication();
            assert!(
                (report.replication_rate - approx).abs() / approx < 0.6,
                "d={d} k={k}: measured {} vs approx {approx}",
                report.replication_rate
            );
            assert_eq!(report.max_load, s.exact_max_load(), "d={d} k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_k() {
        WeightSchema2D::new(10, 4); // 4 does not divide 5
    }
}
