//! The cluster cost model of §1.2.
//!
//! Once the tradeoff curve `r = f(q)` is known for a problem, choosing an
//! algorithm for a specific cluster reduces to minimising a money/time
//! cost of the form
//!
//! ```text
//! cost(q) = a·f(q) + processing(q)
//! ```
//!
//! where `a` converts replication rate into communication dollars
//! (Example 1.1: EC2 transfer price × data size) and `processing(q)`
//! models the reducers' compute cost — e.g. `b·q` when per-reducer work is
//! quadratic (`O(q²)` work × `O(1/q)` reducers), plus an optional `c·q²`
//! wall-clock term for the single-reducer latency.

/// A cluster cost model over the `(q, r)` tradeoff.
pub struct CostModel {
    /// Communication price per unit of replication rate (the `a` of
    /// Example 1.1).
    pub comm_price: f64,
    /// Processing cost as a function of the reducer size `q`.
    pub processing: Box<dyn Fn(f64) -> f64 + Sync>,
}

impl CostModel {
    /// The linear model of Example 1.1: `a·r + b·q` — all-pairs reducers
    /// (`O(q²)` work each, `∝ 1/q` of them).
    pub fn linear(a: f64, b: f64) -> Self {
        CostModel {
            comm_price: a,
            processing: Box::new(move |q| b * q),
        }
    }

    /// The wall-clock-aware model of Example 1.1's footnote:
    /// `a·r + b·q + c·q²` (the `c·q²` term is the single-reducer
    /// execution time).
    pub fn with_wall_clock(a: f64, b: f64, c: f64) -> Self {
        CostModel {
            comm_price: a,
            processing: Box::new(move |q| b * q + c * q * q),
        }
    }

    /// Total cost at a `(q, r)` point.
    pub fn total(&self, q: f64, r: f64) -> f64 {
        self.comm_price * r + (self.processing)(q)
    }

    /// Scans a tradeoff frontier (a set of `(q, r)` points achieved by
    /// concrete algorithms) and returns the cheapest point
    /// `(q, r, total_cost)`.
    ///
    /// Points whose cost evaluates to NaN (a NaN coordinate, or a NaN
    /// produced by the processing closure) are skipped rather than
    /// poisoning the minimum. Returns `None` on an empty frontier — or
    /// one consisting entirely of NaN-cost points.
    ///
    /// ```
    /// use mr_core::cost::CostModel;
    /// let m = CostModel::linear(1.0, 1.0);
    /// assert_eq!(m.cheapest_point(&[]), None);
    /// // The NaN point is ignored; the finite one wins.
    /// let (q, r, cost) = m
    ///     .cheapest_point(&[(f64::NAN, 1.0), (4.0, 2.0)])
    ///     .unwrap();
    /// assert_eq!((q, r, cost), (4.0, 2.0, 6.0));
    /// ```
    pub fn cheapest_point(&self, frontier: &[(f64, f64)]) -> Option<(f64, f64, f64)> {
        frontier
            .iter()
            .map(|&(q, r)| (q, r, self.total(q, r)))
            .filter(|&(_, _, cost)| !cost.is_nan())
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN costs were filtered"))
    }

    /// Minimises `a·f(q) + processing(q)` over a q-grid for an analytic
    /// tradeoff curve `f`. Returns `Some((q*, cost*))`, skipping grid
    /// points whose cost evaluates to NaN; `None` when the grid is empty
    /// or every point's cost is NaN.
    ///
    /// ```
    /// use mr_core::cost::CostModel;
    /// let m = CostModel::linear(1.0, 1.0);
    /// assert_eq!(m.minimize_over_curve(|q| 100.0 / q, &[]), None);
    /// // f(0) = NaN·… is skipped, not propagated.
    /// let (q, _) = m
    ///     .minimize_over_curve(|q| 0.0 / q, &[0.0, 2.0])
    ///     .unwrap();
    /// assert_eq!(q, 2.0);
    /// ```
    pub fn minimize_over_curve(
        &self,
        f: impl Fn(f64) -> f64,
        q_grid: &[f64],
    ) -> Option<(f64, f64)> {
        q_grid
            .iter()
            .map(|&q| (q, self.total(q, f(q))))
            .filter(|&(_, cost)| !cost.is_nan())
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN costs were filtered"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_total() {
        let m = CostModel::linear(10.0, 2.0);
        assert!((m.total(100.0, 3.0) - (30.0 + 200.0)).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_model_total() {
        let m = CostModel::with_wall_clock(1.0, 1.0, 0.5);
        assert!((m.total(4.0, 2.0) - (2.0 + 4.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn cheapest_point_on_frontier() {
        // Hamming-1 style frontier for b = 12: (q = 2^(b/c), r = c).
        let b = 12u32;
        let frontier: Vec<(f64, f64)> = [1u32, 2, 3, 4, 6, 12]
            .iter()
            .map(|&c| ((2.0f64).powf(b as f64 / c as f64), c as f64))
            .collect();
        // Expensive communication → prefer big reducers (small r).
        let comm_heavy = CostModel::linear(1000.0, 0.01);
        let (q, r, _) = comm_heavy.cheapest_point(&frontier).unwrap();
        assert_eq!(r, 1.0);
        assert_eq!(q, 4096.0);
        // Expensive processing → prefer small reducers (large r).
        let proc_heavy = CostModel::linear(0.01, 1000.0);
        let (q2, r2, _) = proc_heavy.cheapest_point(&frontier).unwrap();
        assert_eq!(r2, 12.0);
        assert_eq!(q2, 2.0);
    }

    #[test]
    fn interior_minimum_on_curve() {
        // With balanced prices the optimum falls strictly inside the
        // curve r = f(q) = 1000/q, cost = f(q) + q → q* = sqrt(1000).
        let m = CostModel::linear(1.0, 1.0);
        let grid: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (q_star, _) = m.minimize_over_curve(|q| 1000.0 / q, &grid).unwrap();
        assert!((q_star - 32.0).abs() < 1.0, "q* = {q_star}");
    }

    #[test]
    fn empty_frontier_is_none() {
        let m = CostModel::linear(1.0, 1.0);
        assert!(m.cheapest_point(&[]).is_none());
        assert!(m.minimize_over_curve(|q| q, &[]).is_none());
    }

    #[test]
    fn nan_points_are_skipped_not_propagated() {
        let m = CostModel::linear(1.0, 1.0);
        // NaN q, NaN r, and a NaN produced inside the curve itself must
        // all be ignored; the finite minimum survives.
        let frontier = [(f64::NAN, 1.0), (3.0, f64::NAN), (5.0, 2.0), (2.0, 4.0)];
        let (q, r, cost) = m.cheapest_point(&frontier).unwrap();
        assert_eq!((q, r), (2.0, 4.0));
        assert!((cost - 6.0).abs() < 1e-12);

        let grid = [f64::NAN, 1.0, 4.0];
        let (q_star, cost_star) = m.minimize_over_curve(|q| 16.0 / q, &grid).unwrap();
        assert_eq!(q_star, 4.0);
        assert!((cost_star - 8.0).abs() < 1e-12);
    }

    #[test]
    fn all_nan_inputs_yield_none() {
        let m = CostModel::linear(1.0, 1.0);
        assert!(m.cheapest_point(&[(f64::NAN, 1.0)]).is_none());
        assert!(m.minimize_over_curve(|_| f64::NAN, &[1.0, 2.0]).is_none());
    }
}
