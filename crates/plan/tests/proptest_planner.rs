//! Property tests for the planner: the §6 crossover never misfires, and
//! every emitted plan survives execution under its own prediction.

use mr_core::family::Scale;
use mr_plan::{plan_family, plannable_families, Choice, ClusterSpec, PlanError};
use proptest::prelude::*;

/// Random cost weights spanning comm-dominated to compute-dominated
/// clusters (the planner must behave at both extremes and in between).
fn weights() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.001f64..100.0, 0.001f64..100.0, 0.0f64..0.1)
}

/// Communication-leaning weights: compute and latency priced well below
/// communication (`b = a·f` with `f ≤ 0.05`, `c = a·g` with
/// `g ≤ 0.0002`). This is the regime where §6.3's communication
/// comparison is the whole story — under the per-round cost model,
/// sufficiently compute- or latency-heavy weights *legitimately* prefer
/// a multi-round tree even above `q = n²` (its per-round reducers are
/// smaller), so the paper's crossover boundary is a theorem about
/// comm-dominated clusters, and that is what we pin.
fn comm_leaning_weights() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.001f64..100.0, 0.001f64..0.05, 0.0f64..0.0002).prop_map(|(a, f, g)| (a, a * f, a * g))
}

fn cluster(a: f64, b: f64, c: f64, capacity: Option<u64>) -> ClusterSpec {
    let mut spec = ClusterSpec::new(2, a, b).with_latency_weight(c);
    spec.reducer_capacity = capacity;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small-scale matmul has n = 4, n² = 16: under comm-leaning
    /// weights, a budget at or above n² (or no budget) must never
    /// produce a multi-round plan — §6.3's crossover condition is
    /// `q < n²` strictly, and the round-structure search must rediscover
    /// it for every such cluster.
    #[test]
    fn matmul_stays_one_phase_at_or_above_n_squared(
        w in comm_leaning_weights(),
        budget in 16u64..400,
        bounded in 0u32..2,
    ) {
        let (a, b, c) = w;
        let capacity = if bounded == 1 { Some(budget) } else { None };
        let plan = plan_family("matmul", &cluster(a, b, c, capacity), Scale::Small)
            .expect("budget ≥ n² always admits some one-phase point");
        prop_assert!(
            matches!(plan.choice, Choice::Registry { .. }),
            "budget {:?} picked {}", capacity, plan.schema
        );
    }

    /// Below n² the search must always land on a multi-round tree, for
    /// *any* weights: whenever the one-phase point q = 2n fits at all,
    /// the flat (s=2, t=1) tree prices at most equal (4a + 8b + 32c vs
    /// 4a + 8b + 64c) and the cost tie breaks toward the smaller
    /// per-round reducers.
    #[test]
    fn matmul_always_multi_round_below_n_squared(
        w in weights(),
        budget in 4u64..16,
    ) {
        let (a, b, c) = w;
        let plan = plan_family("matmul", &cluster(a, b, c, Some(budget)), Scale::Small)
            .expect("budgets ≥ 4 admit a flat tree shape at n = 4");
        prop_assert!(
            matches!(plan.choice, Choice::MatMulTree { .. }),
            "budget {budget} picked {}", plan.schema
        );
        prop_assert!(plan.predicted_q <= budget);
    }

    /// Every plan any family emits, for any cost weights and any budget,
    /// executes without `ReducerOverflow` at its own predicted q — the
    /// execution path enforces `max_reducer_inputs = predicted_q`, so
    /// reaching a report at all proves the prediction was not undershot.
    /// (An infeasible budget must be a `NoFeasiblePoint` error, never a
    /// plan that would overflow.)
    #[test]
    fn every_plan_executes_within_its_own_prediction(
        w in weights(),
        family_idx in 0usize..6,
        budget in 1u64..200,
        bounded in 0u32..2,
    ) {
        let (a, b, c) = w;
        let family = plannable_families()[family_idx];
        let capacity = if bounded == 1 { Some(budget) } else { None };
        match plan_family(family, &cluster(a, b, c, capacity), Scale::Small) {
            Ok(plan) => {
                let report = plan.execute().expect("a plan overflowed its own prediction");
                prop_assert!(
                    report.measured_q <= plan.predicted_q,
                    "{family}: measured q={} over predicted {}",
                    report.measured_q, plan.predicted_q
                );
                prop_assert!(
                    (report.measured_r - plan.predicted_r).abs() < 1e-9,
                    "{family}: predicted r={}, measured {}",
                    plan.predicted_r, report.measured_r
                );
                if let Some(cap) = capacity {
                    prop_assert!(plan.predicted_q <= cap);
                }
            }
            Err(PlanError::NoFeasiblePoint { budget: reported, .. }) => {
                // Only reachable with a bound tighter than the whole grid.
                prop_assert_eq!(Some(reported), capacity);
            }
            Err(other) => prop_assert!(false, "{family}: unexpected {other}"),
        }
    }
}
