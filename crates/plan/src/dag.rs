//! Multi-round plans: a DAG of rounds with per-round `(q, r)` accounting
//! and a cost-driven **round-structure search**.
//!
//! The single-round planners in [`planner`](crate::planner) pick a point
//! on one schema family's `(q, r)` frontier. This module generalises the
//! *shape* of the plan itself: a [`RoundDag`] is a DAG whose nodes are
//! MapReduce rounds, each carrying a census-exact predicted `(q, r)`, and
//! whose cost is the §1.2 money model summed per round plus a fixed
//! latency charge per critical-path level:
//!
//! ```text
//! cost = Σ_rounds (a·r_i + b·q_i + c·q_i²) + ℓ·depth
//! ```
//!
//! With one round and `ℓ = 0` this is exactly
//! [`ClusterSpec::cost`], so every single-round plan is a degenerate case
//! of the same model. [`plan_dag`] enumerates a workload's round
//! structures — one-phase **and** flat two-phase **and** deeper
//! aggregation trees for matrix multiplication, so the §6.3 crossover at
//! `q = n²` is *reproduced by the search* rather than special-cased —
//! prices each candidate, and returns the cheapest as an executable
//! [`DagPlan`]. Executing the plan stages the corresponding
//! [`DagJob`] under each round's own predicted `q` as a hard budget and
//! reports per-round predicted-vs-measured `(q, r)`.
//!
//! Three workloads have multi-round structures to search
//! ([`DagWorkload`]):
//!
//! * **matmul** — one-phase tiling, the flat §6.3 two-phase method, and
//!   recursive aggregation trees of any fan-in (3+ rounds); candidates
//!   are priced by [`RecursiveMatMul::round_specs`]'s closed forms;
//! * **hamming-d1** — one-round Splitting, the per-segment parallel
//!   split (same totals, structure the search must reject), and a
//!   depth-2 consolidation variant;
//! * **join-agg** — the experiment-`e71` join→`COUNT(*) GROUP BY A₀`
//!   pipeline: naive two-round, partial-count push-down, and a
//!   three-round partial-merge tree.
//!
//! Hamming and join candidates are priced by *reference execution*: the
//! candidate DAG is run once sequentially and its measured per-round
//! census becomes the prediction — exact by construction, like the
//! closed forms.

use crate::cluster::ClusterSpec;
use crate::planner::PlanError;
use mr_core::family::{family_by_name, Scale};
use mr_core::problems::hamming::{
    all_strings, parallel_split_dag, split_consolidate_dag, split_dag,
};
use mr_core::problems::join::{
    naive_count_dag, pushed_count_dag, tagged_inputs, Database, Query, SharesSchema,
};
use mr_core::problems::matmul::problem::numeric_inputs;
use mr_core::problems::matmul::{MatToken, Matrix, RecursiveMatMul};
use mr_sim::{DagJob, EngineConfig, EngineError, JobMetrics};
use std::time::Duration;

/// One round of a [`RoundDag`]: its position in the DAG and its
/// census-exact predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSpec {
    /// Display name (matches the executed [`DagJob`] node name).
    pub name: String,
    /// Indices of the rounds whose outputs this round consumes (empty =
    /// reads the plan's external inputs).
    pub deps: Vec<usize>,
    /// Predicted maximum reducer load of this round.
    pub q: u64,
    /// Predicted key-value pairs shuffled **into** this round — the
    /// intermediate-data volume crossing the network on this round's
    /// inbound edges.
    pub pairs: u64,
}

/// A DAG of rounds with per-round `(q, r)` accounting.
///
/// `r` for a round is its shuffled pairs over the *plan's* input count
/// `|I|` — so a one-round DAG's `r` is the paper's replication rate, and
/// the sum over rounds prices total communication in the same unit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDag {
    /// `|I|`: number of external inputs the DAG reads.
    pub inputs: u64,
    /// The rounds, in node order (dependencies precede dependents).
    pub rounds: Vec<RoundSpec>,
}

impl RoundDag {
    /// An empty DAG over `inputs` external inputs.
    pub fn new(inputs: u64) -> Self {
        RoundDag {
            inputs,
            rounds: Vec::new(),
        }
    }

    /// Appends a round; `deps` must point at earlier rounds.
    pub fn push(&mut self, name: impl Into<String>, deps: Vec<usize>, q: u64, pairs: u64) -> usize {
        let idx = self.rounds.len();
        assert!(
            deps.iter().all(|&d| d < idx),
            "round {idx} depends on a later round"
        );
        self.rounds.push(RoundSpec {
            name: name.into(),
            deps,
            q,
            pairs,
        });
        idx
    }

    /// ASAP level of every round (0 for rounds reading external inputs).
    fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.rounds.len()];
        for (i, r) in self.rounds.iter().enumerate() {
            levels[i] = r.deps.iter().map(|&d| levels[d] + 1).max().unwrap_or(0);
        }
        levels
    }

    /// Critical-path length in rounds — what the per-round latency term
    /// `ℓ` multiplies. Independent rounds share a level.
    pub fn depth(&self) -> usize {
        self.levels().iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// The DAG's edges `(from, to)`; the volume crossing each edge is
    /// recorded on the destination's [`RoundSpec::pairs`].
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.rounds
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.deps.iter().map(move |&d| (d, i)))
            .collect()
    }

    /// Predicted replication rate of round `i`: `pairs_i / |I|`.
    pub fn round_r(&self, i: usize) -> f64 {
        self.rounds[i].pairs as f64 / self.inputs as f64
    }

    /// The largest per-round reducer load — the plan's effective `q`.
    pub fn max_q(&self) -> u64 {
        self.rounds.iter().map(|r| r.q).max().unwrap_or(0)
    }

    /// Total predicted communication across all rounds.
    pub fn total_pairs(&self) -> u64 {
        self.rounds.iter().map(|r| r.pairs).sum()
    }

    /// Total communication over `|I|` — the multi-round generalisation of
    /// the replication rate.
    pub fn replication(&self) -> f64 {
        self.total_pairs() as f64 / self.inputs as f64
    }

    /// The plan cost under `cluster`:
    /// `Σ_rounds cluster.cost(q_i, r_i) + round_latency · depth`. A
    /// single round at `round_latency = 0` reduces to
    /// [`ClusterSpec::cost`] exactly.
    pub fn cost(&self, cluster: &ClusterSpec) -> f64 {
        let per_round: f64 = self
            .rounds
            .iter()
            .enumerate()
            .map(|(i, r)| cluster.cost(r.q as f64, self.round_r(i)))
            .sum();
        per_round + cluster.round_latency * self.depth() as f64
    }

    /// Whether every round's predicted load fits the cluster's budget.
    pub fn admitted_by(&self, cluster: &ClusterSpec) -> bool {
        self.rounds.iter().all(|r| cluster.admits(r.q))
    }

    /// Compact deterministic description: `name(q=…, r=…)` per round.
    pub fn describe(&self) -> String {
        self.rounds
            .iter()
            .enumerate()
            .map(|(i, r)| format!("{}(q={}, r={})", r.name, r.q, fmt(self.round_r(i))))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Compact deterministic number formatting (same as the planners').
fn fmt(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:.4}")
    }
}

/// The round structure a [`DagPlan`] commits to, in lowerable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagStructure {
    /// One-phase matmul tiling (§6.2): a single round with row/column
    /// bands of `s`.
    MatMulOnePhase {
        /// Matrix side length.
        n: u32,
        /// Band size (divides `n`).
        s: u32,
    },
    /// The recursive-aggregation matmul chain: `fanin = n/t` is the flat
    /// §6.3 two-phase method, smaller fan-ins give deeper trees.
    MatMulTree {
        /// Matrix side length.
        n: u32,
        /// Row/column block side (divides `n`).
        s: u32,
        /// j-dimension block depth (divides `n`).
        t: u32,
        /// Aggregation-tree fan-in.
        fanin: u32,
    },
    /// One-round Hamming splitting with `k` segments (§3.3).
    HammingSplit {
        /// String length.
        b: u32,
        /// Segment count (divides `b`).
        k: u32,
    },
    /// The splitting groups as `k` independent depth-1 nodes.
    HammingParallelSplit {
        /// String length.
        b: u32,
        /// Segment count (divides `b`).
        k: u32,
    },
    /// Parallel split plus a depth-2 consolidation round.
    HammingSplitConsolidate {
        /// String length.
        b: u32,
        /// Segment count (divides `b`).
        k: u32,
    },
    /// Naive join→count: full Shares join, then hot-key aggregation.
    JoinAggNaive {
        /// Domain size of the complete chain-join instance.
        n: u32,
        /// Middle-variable share count.
        s: u32,
    },
    /// Push-down join→count: partial counts at the join reducers, merged
    /// in one round (`fanout = 1`) or through a bucket tree
    /// (`fanout ≥ 2`, three rounds).
    JoinAggPushed {
        /// Domain size of the complete chain-join instance.
        n: u32,
        /// Middle-variable share count.
        s: u32,
        /// Partial-merge bucket count.
        fanout: u32,
    },
}

impl DagStructure {
    /// Deterministic display name.
    pub fn name(&self) -> String {
        match *self {
            DagStructure::MatMulOnePhase { n, s } => format!("one-phase(n={n}, s={s})"),
            DagStructure::MatMulTree { n, s, t, fanin } => {
                if fanin as u64 >= ((n / t) as u64).max(1) {
                    format!("two-phase(n={n}, s={s}, t={t})")
                } else {
                    format!("recursive(n={n}, s={s}, t={t}, fanin={fanin})")
                }
            }
            DagStructure::HammingSplit { b, k } => format!("split(b={b}, k={k})"),
            DagStructure::HammingParallelSplit { b, k } => {
                format!("parallel-split(b={b}, k={k})")
            }
            DagStructure::HammingSplitConsolidate { b, k } => {
                format!("split+consolidate(b={b}, k={k})")
            }
            DagStructure::JoinAggNaive { n, s } => format!("naive-count(n={n}, s={s})"),
            DagStructure::JoinAggPushed { n, s, fanout } => {
                format!("pushed-count(n={n}, s={s}, fanout={fanout})")
            }
        }
    }
}

/// A workload whose round structure [`plan_dag`] searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagWorkload {
    /// Square matrix multiplication (§6) at the registry's `matmul`
    /// scale.
    MatMul,
    /// Hamming distance 1 (§3) at the registry's `hamming-d1` scale.
    Hamming,
    /// The `e71` join→aggregate pipeline on the complete chain(2)
    /// instance at the registry's `join-cycle3` domain size.
    JoinAgg,
}

impl DagWorkload {
    /// Every searchable workload, in display order.
    pub const ALL: [DagWorkload; 3] = [
        DagWorkload::MatMul,
        DagWorkload::Hamming,
        DagWorkload::JoinAgg,
    ];

    /// The workload's display name (also the `repro dag` row key).
    pub fn name(&self) -> &'static str {
        match self {
            DagWorkload::MatMul => "matmul",
            DagWorkload::Hamming => "hamming-d1",
            DagWorkload::JoinAgg => "join-agg",
        }
    }

    /// The registry family whose declared instance parameters size this
    /// workload at a given [`Scale`].
    fn registry_family(&self) -> &'static str {
        match self {
            DagWorkload::MatMul => "matmul",
            DagWorkload::Hamming => "hamming-d1",
            DagWorkload::JoinAgg => "join-cycle3",
        }
    }

    /// The workload's size parameter (`n`, `b`, or the join domain) at
    /// `scale`, read from the registry so DAG plans and single-round
    /// plans describe the same instances.
    pub fn size(&self, scale: Scale) -> u32 {
        let fam = family_by_name(self.registry_family(), scale)
            .unwrap_or_else(|| panic!("family {} not in the registry", self.registry_family()));
        let key = match self {
            DagWorkload::Hamming => "b",
            _ => "n",
        };
        fam.params()
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("{}: missing parameter {key}", fam.name()))
            .1 as u32
    }
}

/// One enumerated round structure with its priced [`RoundDag`].
#[derive(Debug, Clone)]
pub struct DagCandidate {
    /// The lowerable structure.
    pub structure: DagStructure,
    /// Its per-round census predictions.
    pub dag: RoundDag,
}

/// Builds a [`RoundDag`] by running the candidate once sequentially and
/// reading the per-round census off the measured metrics — exact by
/// construction (reference execution has no budget to overflow).
fn measured_round_dag<T: Clone + Send + Sync + 'static>(
    dag: &DagJob<T>,
    deps: Vec<Vec<usize>>,
    inputs: &[T],
) -> RoundDag {
    let (_, metrics) = dag
        .run(inputs, &EngineConfig::sequential())
        .expect("reference execution runs without a budget");
    assert_eq!(deps.len(), metrics.rounds.len());
    let mut rd = RoundDag::new(inputs.len() as u64);
    for ((name, m), d) in dag.round_names().into_iter().zip(&metrics.rounds).zip(deps) {
        rd.push(name, d, m.load.max, m.kv_pairs);
    }
    rd
}

/// The divisors of `n`, ascending.
fn divisors(n: u32) -> Vec<u32> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

/// The `(q, pairs)` chain of a [`RecursiveMatMul`] as a [`RoundDag`].
fn matmul_tree_dag(rm: &RecursiveMatMul) -> RoundDag {
    let n = rm.n as u64;
    let mut rd = RoundDag::new(2 * n * n);
    let mut prev = None;
    for (i, (q, pairs)) in rm.round_specs().into_iter().enumerate() {
        let name = if i == 0 {
            "phase-1".to_string()
        } else {
            format!("aggregate-{i}")
        };
        let deps = prev.map(|p| vec![p]).unwrap_or_default();
        prev = Some(rd.push(name, deps, q, pairs));
    }
    rd
}

/// The instance every matmul DAG plan runs on — the same seeds the
/// registry's matmul family uses, so one- and multi-round plans are
/// directly comparable.
fn matmul_instance(n: u32) -> (Matrix, Matrix) {
    (Matrix::random(n as usize, 3), Matrix::random(n as usize, 4))
}

/// The complete chain(2) join→aggregate instance at domain size `n`.
fn join_instance(n: u32) -> (Query, Database) {
    let query = Query::chain(2);
    let db = Database::complete(&query, n);
    (query, db)
}

/// Enumerates every round structure the search considers for `workload`
/// at `scale`, in deterministic order: **multi-round candidates first**,
/// so a cost tie breaks toward the structure with the smaller per-round
/// reducers (first-wins under strict `<`).
pub fn enumerate_dag_candidates(workload: DagWorkload, scale: Scale) -> Vec<DagCandidate> {
    let size = workload.size(scale);
    let mut out = Vec::new();
    match workload {
        DagWorkload::MatMul => {
            let n = size;
            let divs = divisors(n);
            // Flat two-phase shapes (fanin = n/t), lexicographic (s, t).
            for &s in &divs {
                for &t in &divs {
                    let rm = RecursiveMatMul::flat(n, s, t);
                    out.push(DagCandidate {
                        structure: DagStructure::MatMulTree {
                            n,
                            s,
                            t,
                            fanin: (n / t).max(1),
                        },
                        dag: matmul_tree_dag(&rm),
                    });
                }
            }
            // Deeper trees: fan-in strictly below n/t (3+ rounds).
            for &s in &divs {
                for &t in &divs {
                    let m = n / t;
                    for fanin in 2..m {
                        let rm = RecursiveMatMul::new(n, s, t, fanin);
                        out.push(DagCandidate {
                            structure: DagStructure::MatMulTree { n, s, t, fanin },
                            dag: matmul_tree_dag(&rm),
                        });
                    }
                }
            }
            // One-phase tiling: a single round, q = 2sn, pairs = 2n³/s.
            for &s in &divs {
                let n64 = n as u64;
                let mut rd = RoundDag::new(2 * n64 * n64);
                rd.push(
                    "one-phase",
                    vec![],
                    2 * s as u64 * n64,
                    2 * n64 * n64 * (n64 / s as u64),
                );
                out.push(DagCandidate {
                    structure: DagStructure::MatMulOnePhase { n, s },
                    dag: rd,
                });
            }
        }
        DagWorkload::Hamming => {
            let b = size;
            let strings = all_strings(b);
            for k in divisors(b) {
                if k >= 2 {
                    out.push(DagCandidate {
                        structure: DagStructure::HammingParallelSplit { b, k },
                        dag: measured_round_dag(
                            &parallel_split_dag(b, k),
                            vec![vec![]; k as usize],
                            &strings,
                        ),
                    });
                    let mut deps = vec![vec![]; k as usize];
                    deps.push((0..k as usize).collect());
                    out.push(DagCandidate {
                        structure: DagStructure::HammingSplitConsolidate { b, k },
                        dag: measured_round_dag(&split_consolidate_dag(b, k), deps, &strings),
                    });
                }
                out.push(DagCandidate {
                    structure: DagStructure::HammingSplit { b, k },
                    dag: measured_round_dag(&split_dag(b, k), vec![vec![]], &strings),
                });
            }
        }
        DagWorkload::JoinAgg => {
            let n = size;
            let (query, db) = join_instance(n);
            let inputs = tagged_inputs(&db);
            let schema = |s: u32| SharesSchema::new(query.clone(), vec![1, s as u64, 1]);
            for s in 1..=n {
                // Bucket-tree merges first (3 rounds), then the 2-round
                // push-down, then naive — multi-round-first tie order.
                for fanout in 2..s {
                    out.push(DagCandidate {
                        structure: DagStructure::JoinAggPushed { n, s, fanout },
                        dag: measured_round_dag(
                            &pushed_count_dag(schema(s), fanout),
                            vec![vec![], vec![0], vec![1]],
                            &inputs,
                        ),
                    });
                }
                out.push(DagCandidate {
                    structure: DagStructure::JoinAggPushed { n, s, fanout: 1 },
                    dag: measured_round_dag(
                        &pushed_count_dag(schema(s), 1),
                        vec![vec![], vec![0]],
                        &inputs,
                    ),
                });
                out.push(DagCandidate {
                    structure: DagStructure::JoinAggNaive { n, s },
                    dag: measured_round_dag(
                        &naive_count_dag(schema(s)),
                        vec![vec![], vec![0]],
                        &inputs,
                    ),
                });
            }
        }
    }
    out
}

/// A costed, runnable multi-round decision.
#[derive(Debug, Clone)]
pub struct DagPlan {
    /// The workload the plan is for.
    pub workload: DagWorkload,
    /// The chosen round structure.
    pub structure: DagStructure,
    /// The chosen structure's display name.
    pub schema: String,
    /// Per-round census predictions.
    pub dag: RoundDag,
    /// The cluster the plan was made for.
    pub cluster: ClusterSpec,
    /// Instance-size preset.
    pub scale: Scale,
    /// Predicted cost: `Σ rounds (a·r + b·q + c·q²) + ℓ·depth`.
    pub predicted_cost: f64,
    /// Why this structure: candidates priced, winner, runner-up.
    pub rationale: String,
}

/// Per-round predicted-vs-measured numbers from executing a [`DagPlan`].
#[derive(Debug, Clone)]
pub struct RoundObservation {
    /// Round name.
    pub name: String,
    /// Planner-predicted maximum reducer load.
    pub predicted_q: u64,
    /// Engine-measured maximum reducer load.
    pub measured_q: u64,
    /// Planner-predicted `pairs / |I|`.
    pub predicted_r: f64,
    /// Engine-measured `pairs / |I|`.
    pub measured_r: f64,
    /// Engine-observed shuffle-partition skew of the round, `max
    /// partition load / mean` (0 when the round was not partitioned).
    /// Execution metadata, excluded from semantic comparisons.
    pub partition_skew: f64,
    /// Engine-observed shuffle volume of the round in bytes. Execution
    /// metadata, like `partition_skew`.
    pub shuffle_bytes: u64,
}

/// The result of executing a [`DagPlan`].
#[derive(Debug, Clone)]
pub struct DagPlanReport {
    /// The executed plan.
    pub plan: DagPlan,
    /// Per-round predicted-vs-measured `(q, r)`, in node order.
    pub rounds: Vec<RoundObservation>,
    /// Cluster cost of the measured per-round census (same formula as
    /// the prediction).
    pub measured_cost: f64,
    /// Outputs the final stage emitted.
    pub outputs: u64,
    /// Wall-clock time (execution metadata, varies run to run).
    pub wall: Duration,
}

/// Searches the workload's round structures and returns the cheapest
/// admissible one as an executable plan.
pub fn plan_dag(
    workload: DagWorkload,
    cluster: &ClusterSpec,
    scale: Scale,
) -> Result<DagPlan, PlanError> {
    let candidates = enumerate_dag_candidates(workload, scale);
    let total = candidates.len();
    let mut admissible: Vec<&DagCandidate> = candidates
        .iter()
        .filter(|c| c.dag.admitted_by(cluster))
        .collect();
    let feasible = admissible.len();
    if admissible.is_empty() {
        return Err(PlanError::NoFeasiblePoint {
            family: workload.name(),
            budget: cluster.reducer_capacity.unwrap_or(0),
        });
    }
    // Stable selection: strict `<` keeps the earliest of equal-cost
    // candidates, and multi-round structures are enumerated first.
    let mut best = 0usize;
    for (i, c) in admissible.iter().enumerate().skip(1) {
        if c.dag.cost(cluster) < admissible[best].dag.cost(cluster) {
            best = i;
        }
    }
    let chosen = admissible.swap_remove(best);
    let runner_up = admissible
        .iter()
        .map(|c| (c.structure.name(), c.dag.cost(cluster)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(name, cost)| format!(" Runner-up: {name} → cost {}.", fmt(cost)))
        .unwrap_or_default();
    let cost = chosen.dag.cost(cluster);
    let rationale = format!(
        "Round-structure search: {total} candidate DAGs ({feasible} with every round within \
         budget); cheapest: {} — depth {}, rounds [{}] → cost {}.{}",
        chosen.structure.name(),
        chosen.dag.depth(),
        chosen.dag.describe(),
        fmt(cost),
        runner_up,
    );
    Ok(DagPlan {
        workload,
        structure: chosen.structure,
        schema: chosen.structure.name(),
        dag: chosen.dag.clone(),
        cluster: cluster.clone(),
        scale,
        predicted_cost: cost,
        rationale,
    })
}

/// Searches every [`DagWorkload`], in display order.
pub fn plan_all_dags(cluster: &ClusterSpec, scale: Scale) -> Result<Vec<DagPlan>, PlanError> {
    DagWorkload::ALL
        .iter()
        .map(|w| plan_dag(*w, cluster, scale))
        .collect()
}

impl DagPlan {
    /// Stages the chosen structure's [`DagJob`] with each round's
    /// predicted `q` as that round's hard budget (and its predicted
    /// pairs as the emission-buffer hint), runs it on the cluster's
    /// engine, and reports per-round predicted-vs-measured `(q, r)`.
    ///
    /// Errors are the engine's: a round that overflows its own
    /// prediction surfaces as
    /// [`EngineError::ReducerOverflow`] — a planner bug by definition,
    /// reported, not panicked.
    pub fn execute(&self) -> Result<DagPlanReport, EngineError> {
        self.execute_with(&self.cluster.engine())
    }

    /// [`execute`](DagPlan::execute) on an explicit engine configuration.
    pub fn execute_with(&self, engine: &EngineConfig) -> Result<DagPlanReport, EngineError> {
        let _span = mr_obs::span("dag.execute");
        let (outputs, metrics, wall) = match self.structure {
            DagStructure::MatMulOnePhase { n, s } | DagStructure::MatMulTree { n, s, .. } => {
                let (a, b) = matmul_instance(n);
                let tokens: Vec<MatToken> = numeric_inputs(&a, &b)
                    .into_iter()
                    .map(MatToken::Entry)
                    .collect();
                let dag = match self.structure {
                    DagStructure::MatMulOnePhase { .. } => one_phase_dag(n, s),
                    DagStructure::MatMulTree { t, fanin, .. } => {
                        RecursiveMatMul::new(n, s, t, fanin).dag()
                    }
                    _ => unreachable!(),
                };
                self.run_budgeted(dag, &tokens, engine)?
            }
            DagStructure::HammingSplit { b, k } => {
                self.run_budgeted(split_dag(b, k), &all_strings(b), engine)?
            }
            DagStructure::HammingParallelSplit { b, k } => {
                self.run_budgeted(parallel_split_dag(b, k), &all_strings(b), engine)?
            }
            DagStructure::HammingSplitConsolidate { b, k } => {
                self.run_budgeted(split_consolidate_dag(b, k), &all_strings(b), engine)?
            }
            DagStructure::JoinAggNaive { n, s } | DagStructure::JoinAggPushed { n, s, .. } => {
                let (query, db) = join_instance(n);
                let schema = SharesSchema::new(query, vec![1, s as u64, 1]);
                let dag = match self.structure {
                    DagStructure::JoinAggNaive { .. } => naive_count_dag(schema),
                    DagStructure::JoinAggPushed { fanout, .. } => pushed_count_dag(schema, fanout),
                    _ => unreachable!(),
                };
                self.run_budgeted(dag, &tagged_inputs(&db), engine)?
            }
        };
        let rounds: Vec<RoundObservation> = self
            .dag
            .rounds
            .iter()
            .enumerate()
            .zip(&metrics.rounds)
            .map(|((i, spec), m)| RoundObservation {
                name: spec.name.clone(),
                predicted_q: spec.q,
                measured_q: m.load.max,
                predicted_r: self.dag.round_r(i),
                measured_r: m.kv_pairs as f64 / self.dag.inputs as f64,
                partition_skew: m.shuffle.partition_skew(),
                shuffle_bytes: m.shuffle.bytes_moved.unwrap_or(0),
            })
            .collect();
        let measured_cost: f64 = rounds
            .iter()
            .map(|r| self.cluster.cost(r.measured_q as f64, r.measured_r))
            .sum::<f64>()
            + self.cluster.round_latency * self.dag.depth() as f64;
        Ok(DagPlanReport {
            plan: self.clone(),
            rounds,
            measured_cost,
            outputs,
            wall,
        })
    }

    /// Applies per-round budgets and hints, then runs.
    fn run_budgeted<T: Clone + Send + Sync + 'static>(
        &self,
        mut dag: DagJob<T>,
        inputs: &[T],
        engine: &EngineConfig,
    ) -> Result<(u64, JobMetrics, Duration), EngineError> {
        assert_eq!(dag.num_rounds(), self.dag.rounds.len());
        for (i, spec) in self.dag.rounds.iter().enumerate() {
            dag.set_budget(i, spec.q);
            dag.set_pairs_hint(i, spec.pairs);
        }
        let (out, metrics, wall) = dag.run_timed(inputs, engine)?;
        Ok((out.len() as u64, metrics, wall))
    }
}

/// The one-phase tiling as a single-node [`DagJob`] over [`MatToken`]s,
/// reproducing [`OnePhaseSchema`](mr_core::problems::matmul::OnePhaseSchema)'s
/// band assignment so the degenerate structure runs on the same executor
/// as the trees.
fn one_phase_dag(n: u32, s: u32) -> DagJob<MatToken> {
    use mr_core::problems::matmul::problem::MatEntry;
    use mr_sim::{FnMapper, FnReducer};
    let groups = (n / s) as u64;
    let mut dag: DagJob<MatToken> = DagJob::new();
    dag.add_round(
        "one-phase",
        vec![],
        FnMapper(
            move |input: &MatToken, emit: &mut dyn FnMut(u64, MatToken)| {
                let MatToken::Entry((entry, _)) = input else {
                    unreachable!("one-phase consumes matrix entries only");
                };
                match entry {
                    MatEntry::R(i, _) => {
                        let bi = (*i / s) as u64;
                        for bk in 0..groups {
                            emit(bi * groups + bk, *input);
                        }
                    }
                    MatEntry::S(_, k) => {
                        let bk = (*k / s) as u64;
                        for bi in 0..groups {
                            emit(bi * groups + bk, *input);
                        }
                    }
                }
            },
        ),
        FnReducer(
            move |band: &u64, inputs: &[MatToken], emit: &mut dyn FnMut(MatToken)| {
                let (bi, bk) = (band / groups, band % groups);
                let (row0, col0) = (bi as usize * s as usize, bk as usize * s as usize);
                let su = s as usize;
                let nu = n as usize;
                let mut rows = vec![0.0f64; su * nu];
                let mut cols = vec![0.0f64; nu * su];
                for token in inputs {
                    let MatToken::Entry((e, bits)) = token else {
                        unreachable!("one-phase consumes matrix entries only");
                    };
                    let val = f64::from_bits(u64::from_be_bytes(*bits));
                    match e {
                        MatEntry::R(i, j) => rows[(*i as usize - row0) * nu + *j as usize] = val,
                        MatEntry::S(j, k) => cols[*j as usize * su + (*k as usize - col0)] = val,
                    }
                }
                for di in 0..su {
                    for dk in 0..su {
                        let mut acc = 0.0;
                        for j in 0..nu {
                            acc += rows[di * nu + j] * cols[j * su + dk];
                        }
                        emit(MatToken::Partial {
                            i: (row0 + di) as u32,
                            k: (col0 + dk) as u32,
                            group: 0,
                            bits: acc.to_bits().to_be_bytes(),
                        });
                    }
                }
            },
        ),
    );
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_round_dag_prices_like_the_single_round_model() {
        let cluster = ClusterSpec::default();
        let mut rd = RoundDag::new(64);
        rd.push("only", vec![], 8, 128); // r = 2
        assert_eq!(rd.depth(), 1);
        assert!((rd.cost(&cluster) - cluster.cost(8.0, 2.0)).abs() < 1e-12);
        // With round latency the same DAG costs exactly ℓ more.
        let slow = ClusterSpec::default().with_round_latency(0.5);
        assert!((rd.cost(&slow) - (cluster.cost(8.0, 2.0) + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn depth_counts_levels_not_rounds() {
        let mut rd = RoundDag::new(10);
        let a = rd.push("a", vec![], 1, 10);
        let b = rd.push("b", vec![], 1, 10);
        rd.push("c", vec![a, b], 1, 10);
        assert_eq!(rd.depth(), 2); // a and b share a level
        assert_eq!(rd.edges(), vec![(0, 2), (1, 2)]);
        assert_eq!(rd.max_q(), 1);
        assert_eq!(rd.total_pairs(), 30);
    }

    #[test]
    fn matmul_search_reproduces_the_crossover() {
        // Small scale: n = 4, n² = 16. Below n² the generic search lands
        // on the flat two-phase structure; at and above (and unbounded)
        // on one-phase — §6.3 found by costing, not special-cased.
        for budget in [4u64, 8, 12, 15] {
            let plan = plan_dag(
                DagWorkload::MatMul,
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(
                    plan.structure,
                    DagStructure::MatMulTree { n: 4, fanin, t, .. } if fanin == 4 / t
                ),
                "budget {budget}: expected flat two-phase, got {}",
                plan.schema
            );
            assert!(plan.dag.max_q() <= budget);
        }
        for budget in [16u64, 17, 32, 1000] {
            let plan = plan_dag(
                DagWorkload::MatMul,
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(plan.structure, DagStructure::MatMulOnePhase { .. }),
                "budget {budget}: expected one-phase, got {}",
                plan.schema
            );
        }
        let unbounded =
            plan_dag(DagWorkload::MatMul, &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(matches!(
            unbounded.structure,
            DagStructure::MatMulOnePhase { .. }
        ));
    }

    #[test]
    fn round_latency_makes_the_deep_tree_win() {
        // A strongly latency-weighted cluster (c = 1 on q², ℓ = 0.05 per
        // round): big reducers are ruinous, so the fan-in-2 tree's three
        // small rounds beat every flatter shape *including* paying two
        // extra rounds of latency — the §6-style "when does another
        // phase pay" question answered by the search.
        let cluster = ClusterSpec::new(4, 1.0, 0.1)
            .with_latency_weight(1.0)
            .with_round_latency(0.05);
        let plan = plan_dag(DagWorkload::MatMul, &cluster, Scale::Small).unwrap();
        assert_eq!(
            plan.structure,
            DagStructure::MatMulTree {
                n: 4,
                s: 1,
                t: 1,
                fanin: 2
            },
            "got {}",
            plan.schema
        );
        assert_eq!(plan.dag.rounds.len(), 3);
        assert_eq!(plan.dag.depth(), 3);
        assert!(
            (plan.predicted_cost - 19.75).abs() < 1e-9,
            "{}",
            plan.predicted_cost
        );
    }

    #[test]
    fn hamming_search_rejects_the_multi_round_variants() {
        // The parallel and consolidate variants shuffle the same volume
        // (or more) while adding per-round charges, so the one-round
        // split must win under the default weights — but only after the
        // search actually priced the alternatives.
        let candidates = enumerate_dag_candidates(DagWorkload::Hamming, Scale::Small);
        assert!(candidates
            .iter()
            .any(|c| matches!(c.structure, DagStructure::HammingParallelSplit { .. })));
        assert!(candidates
            .iter()
            .any(|c| matches!(c.structure, DagStructure::HammingSplitConsolidate { .. })));
        let plan = plan_dag(DagWorkload::Hamming, &ClusterSpec::default(), Scale::Small).unwrap();
        assert_eq!(
            plan.structure,
            DagStructure::HammingSplit { b: 6, k: 2 },
            "got {}",
            plan.schema
        );
    }

    #[test]
    fn join_agg_search_prefers_the_push_down() {
        let plan = plan_dag(DagWorkload::JoinAgg, &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(
            matches!(plan.structure, DagStructure::JoinAggPushed { .. }),
            "got {}",
            plan.schema
        );
        // The naive structure was priced and lost.
        assert!(plan.rationale.contains("candidate DAGs"));
    }

    #[test]
    fn execution_matches_the_per_round_predictions_exactly() {
        for workload in DagWorkload::ALL {
            let plan = plan_dag(workload, &ClusterSpec::default(), Scale::Small).unwrap();
            let report = plan.execute().unwrap();
            assert_eq!(report.rounds.len(), plan.dag.rounds.len());
            for r in &report.rounds {
                assert_eq!(
                    r.measured_q, r.predicted_q,
                    "{}: round {} q diverged",
                    plan.schema, r.name
                );
                assert!(
                    (r.measured_r - r.predicted_r).abs() < 1e-12,
                    "{}: round {} r diverged",
                    plan.schema,
                    r.name
                );
            }
            assert!(report.outputs > 0);
            assert!((report.measured_cost - plan.predicted_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn one_phase_execution_is_a_true_degenerate_case() {
        // The forced one-phase structure (unbounded default cluster)
        // must reproduce the registry one-phase census: q = 2sn,
        // r = n/s.
        let plan = plan_dag(DagWorkload::MatMul, &ClusterSpec::default(), Scale::Small).unwrap();
        let DagStructure::MatMulOnePhase { n, s } = plan.structure else {
            panic!("expected one-phase, got {}", plan.schema);
        };
        let report = plan.execute().unwrap();
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.rounds[0].measured_q, 2 * s as u64 * n as u64);
        assert!((report.rounds[0].measured_r - n as f64 / s as f64).abs() < 1e-12);
        assert_eq!(report.outputs, n as u64 * n as u64);
    }

    #[test]
    fn planning_is_deterministic() {
        for workload in DagWorkload::ALL {
            let a = plan_dag(workload, &ClusterSpec::default(), Scale::Small).unwrap();
            let b = plan_dag(workload, &ClusterSpec::default(), Scale::Small).unwrap();
            assert_eq!(a.schema, b.schema);
            assert_eq!(a.dag, b.dag);
            assert_eq!(a.rationale, b.rationale);
        }
    }

    #[test]
    fn budget_excluding_everything_is_an_error() {
        let err = plan_dag(
            DagWorkload::Hamming,
            &ClusterSpec::default().with_q_budget(1),
            Scale::Small,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePoint { budget: 1, .. }));
    }
}
