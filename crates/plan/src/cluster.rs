//! The cluster description a plan is made *for*.

use mr_core::cost::CostModel;
use mr_sim::EngineConfig;

/// A cluster specification: how many workers execute, how much a reducer
/// may hold, and what communication and compute cost.
///
/// This generalises [`CostModel`] — the §1.2 money/time model
/// `a·r + b·q (+ c·q²)` — with the two operational facts a planner also
/// needs: the **reducer capacity** (a hard per-reducer memory budget on
/// `q`, the paper's design constraint) and the **worker count** plans
/// execute with. [`cost_model`](ClusterSpec::cost_model) recovers the
/// plain `CostModel`, so anything priced here is priced identically by
/// the rest of the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Engine worker threads a plan executes with. Semantically inert —
    /// the engine's results are worker-count independent — but part of
    /// the spec because a real cluster has a size.
    pub workers: usize,
    /// Per-reducer memory budget: the largest `q` any schema may declare.
    /// `None` means unbounded (the planner may use the whole frontier).
    pub reducer_capacity: Option<u64>,
    /// Communication price per unit of replication rate (the `a` of
    /// Example 1.1).
    pub comm_weight: f64,
    /// Linear processing price per unit of reducer size (the `b` term:
    /// `O(q²)` work per reducer × `O(1/q)` reducers).
    pub compute_weight: f64,
    /// Wall-clock price on the square of the reducer size (the `c·q²`
    /// single-reducer latency term of Example 1.1's footnote).
    pub latency_weight: f64,
    /// Fixed price per sequential round of a multi-round plan (job
    /// start-up, barrier, shuffle spin-up — the reason §6.3 asks when a
    /// second phase *pays*). Charged once per level of a DAG's critical
    /// path; `0` (the default) reproduces the single-round model exactly.
    pub round_latency: f64,
}

impl Default for ClusterSpec {
    /// A balanced mid-size cluster: 4 workers, unbounded reducers,
    /// communication-leaning weights (`a = 1`, `b = 0.05`, `c = 0`) that
    /// place every family's optimum strictly inside its frontier.
    fn default() -> Self {
        ClusterSpec {
            workers: 4,
            reducer_capacity: None,
            comm_weight: 1.0,
            compute_weight: 0.05,
            latency_weight: 0.0,
            round_latency: 0.0,
        }
    }
}

impl ClusterSpec {
    /// A cluster with explicit cost weights and no capacity bound.
    pub fn new(workers: usize, comm_weight: f64, compute_weight: f64) -> Self {
        ClusterSpec {
            workers,
            reducer_capacity: None,
            comm_weight,
            compute_weight,
            latency_weight: 0.0,
            round_latency: 0.0,
        }
    }

    /// A communication-dominated profile (expensive shuffle, cheap CPU):
    /// pushes optima toward big reducers / small `r`.
    pub fn comm_heavy() -> Self {
        ClusterSpec::new(4, 100.0, 0.001)
    }

    /// A compute-dominated profile (cheap shuffle, expensive CPU): pushes
    /// optima toward small reducers / large `r`.
    pub fn compute_heavy() -> Self {
        ClusterSpec::new(4, 0.001, 10.0)
    }

    /// Sets the per-reducer memory budget.
    pub fn with_q_budget(mut self, q: u64) -> Self {
        self.reducer_capacity = Some(q);
        self
    }

    /// Sets the wall-clock `c·q²` weight.
    pub fn with_latency_weight(mut self, c: f64) -> Self {
        self.latency_weight = c;
        self
    }

    /// Sets the fixed per-round price `ℓ` charged per critical-path level
    /// of a multi-round plan.
    pub fn with_round_latency(mut self, l: f64) -> Self {
        self.round_latency = l;
        self
    }

    /// The equivalent §1.2 [`CostModel`]: `a·r + b·q + c·q²`.
    pub fn cost_model(&self) -> CostModel {
        CostModel::with_wall_clock(self.comm_weight, self.compute_weight, self.latency_weight)
    }

    /// Total cost of a `(q, r)` point under this cluster's weights.
    pub fn cost(&self, q: f64, r: f64) -> f64 {
        self.comm_weight * r + self.compute_weight * q + self.latency_weight * q * q
    }

    /// Whether a reducer load `q` fits the memory budget.
    pub fn admits(&self, q: u64) -> bool {
        self.reducer_capacity.is_none_or(|cap| q <= cap)
    }

    /// The engine configuration plans execute with (budget enforcement is
    /// added per plan — each plan runs under its own predicted `q`).
    pub fn engine(&self) -> EngineConfig {
        EngineConfig::parallel(self.workers)
    }

    /// A deterministic one-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "workers={}, q-budget={}, cost = {}·r + {}·q{}",
            self.workers,
            match self.reducer_capacity {
                Some(q) => q.to_string(),
                None => "unbounded".to_string(),
            },
            self.comm_weight,
            self.compute_weight,
            if self.latency_weight != 0.0 {
                format!(" + {}·q²", self.latency_weight)
            } else {
                String::new()
            }
        ) + &if self.round_latency != 0.0 {
            format!(" + {}·rounds", self.round_latency)
        } else {
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_cost_model() {
        let c = ClusterSpec::new(2, 3.0, 0.5).with_latency_weight(0.01);
        let m = c.cost_model();
        for (q, r) in [(2.0, 10.0), (64.0, 2.0), (1.0, 1.0)] {
            assert!((c.cost(q, r) - m.total(q, r)).abs() < 1e-12, "({q}, {r})");
        }
    }

    #[test]
    fn capacity_gates_admission() {
        let unbounded = ClusterSpec::default();
        assert!(unbounded.admits(u64::MAX));
        let capped = ClusterSpec::default().with_q_budget(100);
        assert!(capped.admits(100));
        assert!(!capped.admits(101));
    }

    #[test]
    fn engine_carries_workers_but_no_budget() {
        let c = ClusterSpec::new(8, 1.0, 1.0).with_q_budget(5);
        let e = c.engine();
        assert_eq!(e.effective_workers(), 8);
        assert!(e.max_reducer_inputs.is_none());
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(
            ClusterSpec::default().describe(),
            "workers=4, q-budget=unbounded, cost = 1·r + 0.05·q"
        );
        assert_eq!(
            ClusterSpec::new(2, 2.0, 1.0)
                .with_q_budget(64)
                .with_latency_weight(0.5)
                .describe(),
            "workers=2, q-budget=64, cost = 2·r + 1·q + 0.5·q²"
        );
        assert_eq!(
            ClusterSpec::new(2, 2.0, 1.0)
                .with_round_latency(0.25)
                .describe(),
            "workers=2, q-budget=unbounded, cost = 2·r + 1·q + 0.25·rounds"
        );
    }
}
