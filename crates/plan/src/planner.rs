//! Per-family planners: closed forms where the paper gives them, the
//! share-exponent LP for joins, and exact census pricing everywhere.

use crate::cluster::ClusterSpec;
use crate::plan::{Choice, Plan};
use mr_core::family::{family_by_name, AssignCensus, DynFamily, Scale};
use mr_core::problems::matmul::{one_phase_communication, two_phase_communication};
use mr_lp::cover::share_exponents;
use mr_lp::{Hypergraph, LpError};

/// Why a plan could not be made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The family name matches no planner.
    UnknownFamily {
        /// The name that failed to resolve.
        family: String,
        /// The plannable vocabulary.
        known: Vec<&'static str>,
    },
    /// No schema in the family fits the cluster's reducer budget.
    NoFeasiblePoint {
        /// The family whose whole grid overflowed.
        family: &'static str,
        /// The budget that excluded everything.
        budget: u64,
    },
    /// The Shares exponent LP failed (degenerate query shape).
    Lp(LpError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownFamily { family, known } => write!(
                f,
                "no planner for family '{family}'; plannable families: {}",
                known.join(", ")
            ),
            PlanError::NoFeasiblePoint { family, budget } => write!(
                f,
                "{family}: no schema fits the reducer budget q ≤ {budget}"
            ),
            PlanError::Lp(e) => write!(f, "share-exponent LP failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<LpError> for PlanError {
    fn from(e: LpError) -> Self {
        PlanError::Lp(e)
    }
}

/// A cost-based planner for one problem family.
///
/// `plan` must be **pure**: same cluster and scale, same plan. The
/// returned [`Plan`] carries exact predictions (census- or closed-form
/// priced), so [`Plan::execute`] runs under `predicted_q` as a hard
/// budget and cannot overflow unless the planner itself is wrong.
pub trait Planner: Send + Sync {
    /// The registry family this planner covers.
    fn family(&self) -> &'static str;

    /// Produces the cheapest plan for `cluster` at `scale` — cheapest
    /// among the family's single-round candidates under the cluster's
    /// cost weights; algorithm-structure decisions the paper makes by a
    /// different criterion (the §6 phase crossover, which compares
    /// communication at the budget) follow the paper and are documented
    /// on the planner concerned.
    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError>;
}

/// Compact deterministic number formatting for rationale strings.
fn fmt(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:.4}")
    }
}

/// Builds a registry family by name at the given scale — just the one,
/// via [`family_by_name`]: instance construction is the expensive part
/// of the registry, and a planner needs only its own family's.
fn registry_family(name: &'static str, scale: Scale) -> Box<dyn DynFamily> {
    family_by_name(name, scale).unwrap_or_else(|| panic!("family {name} not in the registry"))
}

/// Reads one of the family's declared instance parameters.
fn param(fam: &dyn DynFamily, key: &str) -> u64 {
    fam.params()
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("{}: missing parameter {key}", fam.name()))
        .1
}

/// One priced candidate: a grid point with its exact census and cost.
struct Candidate {
    point: usize,
    schema: String,
    census: AssignCensus,
    cost: f64,
}

/// The shared grid path: census-price every point, keep the admissible
/// ones, pick the cheapest (first wins ties — grid order is fixed), and
/// package the plan with the family's closed-form story in front.
fn cheapest_grid_plan(
    fam: &dyn DynFamily,
    cluster: &ClusterSpec,
    scale: Scale,
    closed_form: &str,
) -> Result<Plan, PlanError> {
    let grid = fam.grid();
    let mut best: Option<Candidate> = None;
    let mut feasible = 0usize;
    for (point, gp) in grid.iter().enumerate() {
        let census = fam.census(point);
        if !cluster.admits(census.q) {
            continue;
        }
        feasible += 1;
        let cost = cluster.cost(census.q as f64, census.r);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Candidate {
                point,
                schema: gp.schema.clone(),
                census,
                cost,
            });
        }
    }
    let best = best.ok_or(PlanError::NoFeasiblePoint {
        family: fam.name(),
        budget: cluster.reducer_capacity.unwrap_or(0),
    })?;
    let rationale = format!(
        "{closed_form}. Census-priced {} grid points ({} within budget); cheapest: {} \
         with exact (q={}, r={}) → cost {}.",
        grid.len(),
        feasible,
        best.schema,
        best.census.q,
        fmt(best.census.r),
        fmt(best.cost),
    );
    Ok(Plan {
        family: fam.name(),
        schema: best.schema,
        choice: Choice::Registry {
            scale,
            point: best.point,
        },
        cluster: cluster.clone(),
        predicted_q: best.census.q,
        predicted_r: best.census.r,
        predicted_pairs: best.census.pairs,
        predicted_cost: best.cost,
        rationale,
    })
}

// ---------------------------------------------------------------------
// Per-family planners.
// ---------------------------------------------------------------------

/// Hamming distance 1 (§3): the Theorem 3.2 hyperbola at divisor points.
pub struct HammingPlanner;

impl Planner for HammingPlanner {
    fn family(&self) -> &'static str {
        "hamming-d1"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let b = param(&*fam, "b");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "Thm 3.2: every algorithm obeys r ≥ b/log₂q (b={b}); splitting sits exactly \
                 on that hyperbola at the divisor points q=2^(b/k), r=k"
            ),
        )
    }
}

/// Triangles (§4): node partition against the `n/√(2q)` bound.
pub struct TrianglePlanner;

impl Planner for TrianglePlanner {
    fn family(&self) -> &'static str {
        "triangles"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§4.1: r ≥ n/√(2q) (n={n}); node partition into k groups achieves r ≈ k at \
                 q ≈ 3(n/k choose 2) — within the constant factor 3 of the bound"
            ),
        )
    }
}

/// Sample graphs (§5.1–5.3): the 4-cycle pattern under multiset partition.
pub struct SampleGraphPlanner;

impl Planner for SampleGraphPlanner {
    fn family(&self) -> &'static str {
        "sample-c4"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let (n, s) = (param(&*fam, "n"), param(&*fam, "s"));
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.3: Alon-class sample graph with s={s} nodes (n={n}), g(q) = q^(s/2); \
                 multiset partition over k groups trades r ~ k^(s-2) against q"
            ),
        )
    }
}

/// 2-paths (§5.4): per-node vs the bucket-pair refinement.
pub struct TwoPathPlanner;

impl Planner for TwoPathPlanner {
    fn family(&self) -> &'static str {
        "two-path"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.4: r ≥ 2n/q (n={n}); per-node (q=n, r=2) is bound-optimal, bucket-pair \
                 buys q ≈ 2n/k at r = 2(k−1)"
            ),
        )
    }
}

/// Multiway joins (§5.5): symmetric Shares with LP-derived exponents.
pub struct JoinPlanner;

impl Planner for JoinPlanner {
    fn family(&self) -> &'static str {
        "join-cycle3"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let atoms = param(&*fam, "atoms") as usize;
        // The Shares exponents x_v (s_v = p^{x_v}) by simplex — in the
        // spirit of Abo Khamis–Ngo–Suciu's fractional-cover machinery.
        // For the symmetric cycle the LP proves the symmetric grid the
        // registry sweeps is the right shape.
        let (tau, x) = share_exponents(&Hypergraph::cycle(atoms))?;
        let exps = x.iter().map(|&xi| fmt(xi)).collect::<Vec<_>>().join(", ");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.5/LP: share exponents x = [{exps}] (τ = {}), so the optimal grid is \
                 symmetric (s_v = p^(1/{atoms})) with per-atom replication p^(1−τ)",
                fmt(tau)
            ),
        )
    }
}

/// Matrix multiplication (§6): one-phase tiling, or the two-round job
/// when the reducer budget crosses below `n²`.
///
/// **Contract of the phase dispatch.** The one- vs two-phase decision is
/// the paper's, not the cost model's: §6.3 compares *communication* at a
/// fixed reducer budget (`4n³/√q` vs `4n⁴/q`), which flips exactly at
/// `q = n²`, and this planner reproduces that boundary exactly —
/// budget `< n²` ⇒ two-phase, `≥ n²` (or unbounded) ⇒ one-phase. The
/// cluster's `a·r + b·q (+ c·q²)` weights choose *within* the one-phase
/// grid; they do not move the phase boundary. (A single-round cost model
/// priced against a two-round job would be comparing unlike quantities —
/// e.g. a compute-heavy weight on the two-phase job's small first-phase
/// `q` ignores that its partials cross the network a second time.)
/// Likewise the two-phase block shape minimises §6.3 communication
/// subject to the budget, tie-breaking toward the smallest `(s, t)`.
pub struct MatMulPlanner;

impl MatMulPlanner {
    /// The communication-cheapest two-phase divisor shape whose loads —
    /// `2st` in phase 1, `n/t` in phase 2 — both fit `budget`. Ties break
    /// toward the lexicographically smallest `(s, t)`.
    fn best_two_phase_shape(n: u32, budget: u64) -> Option<(u32, u32, u64)> {
        let divisors: Vec<u32> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
        let n3 = (n as u64).pow(3);
        let mut best: Option<(u32, u32, u64)> = None;
        for &s in &divisors {
            for &t in &divisors {
                let load = (2 * s as u64 * t as u64).max((n / t) as u64);
                if load > budget {
                    continue;
                }
                let comm = 2 * n3 / s as u64 + n3 / t as u64;
                if best.is_none_or(|(_, _, c)| comm < c) {
                    best = Some((s, t, comm));
                }
            }
        }
        best
    }
}

impl Planner for MatMulPlanner {
    fn family(&self) -> &'static str {
        "matmul"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n") as u32;
        let n_sq = n as u64 * n as u64;
        // One phase can use at most q = 2n² (a single reducer, r = 1);
        // an unbounded cluster is equivalent to that budget.
        let budget = cluster.reducer_capacity.unwrap_or(2 * n_sq).min(2 * n_sq);
        let q = budget as f64;
        // §6.3: two-phase total communication 4n³/√q beats the one-phase
        // 4n⁴/q exactly when q < n² (they tie at q = n²).
        if two_phase_communication(n, q) < one_phase_communication(n, q) {
            let (s, t, comm) =
                Self::best_two_phase_shape(n, budget).ok_or(PlanError::NoFeasiblePoint {
                    family: self.family(),
                    budget,
                })?;
            let predicted_q = (2 * s as u64 * t as u64).max((n / t) as u64);
            let predicted_r = comm as f64 / (2 * n_sq) as f64;
            let predicted_cost = cluster.cost(predicted_q as f64, predicted_r);
            return Ok(Plan {
                family: self.family(),
                schema: format!("two-phase(n={n}, s={s}, t={t})"),
                choice: Choice::TwoPhaseMatMul { n, s, t },
                cluster: cluster.clone(),
                predicted_q,
                predicted_r,
                predicted_pairs: comm,
                predicted_cost,
                rationale: format!(
                    "§6 crossover: budget q={budget} < n²={n_sq}, where two-phase \
                     communication 4n³/√q beats one-phase 4n⁴/q. Best divisor shape \
                     s={s}, t={t} (Lagrangean optimum is s=2t): total communication \
                     {comm} = 2n³/s + n³/t, reducer loads max(2st, n/t) = {predicted_q}."
                ),
            });
        }
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§6.1–6.2: one-phase square tiling sits exactly on r = 2n²/q (n={n}), and \
                 with budget q={budget} ≥ n²={n_sq} it also communicates least (the §6.3 \
                 crossover to two-phase lies at q = n²)"
            ),
        )
    }
}

// ---------------------------------------------------------------------
// The planner registry.
// ---------------------------------------------------------------------

/// All per-family planners, in registry order.
pub fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(HammingPlanner),
        Box::new(TrianglePlanner),
        Box::new(SampleGraphPlanner),
        Box::new(TwoPathPlanner),
        Box::new(JoinPlanner),
        Box::new(MatMulPlanner),
    ]
}

/// The family names [`plan_family`] accepts, in registry order.
pub fn plannable_families() -> Vec<&'static str> {
    planners().iter().map(|p| p.family()).collect()
}

/// Plans one family by name.
pub fn plan_family(family: &str, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
    planners()
        .iter()
        .find(|p| p.family() == family)
        .ok_or_else(|| PlanError::UnknownFamily {
            family: family.to_string(),
            known: plannable_families(),
        })?
        .plan(cluster, scale)
}

/// Plans every registry family, in registry order.
pub fn plan_all(cluster: &ClusterSpec, scale: Scale) -> Result<Vec<Plan>, PlanError> {
    planners().iter().map(|p| p.plan(cluster, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::family::registry;

    #[test]
    fn planners_cover_the_registry_exactly() {
        let expected: Vec<&str> = registry().iter().map(|f| f.name()).collect();
        assert_eq!(plannable_families(), expected);
    }

    #[test]
    fn unknown_family_lists_the_vocabulary() {
        let err = plan_family("nonsense", &ClusterSpec::default(), Scale::Small).unwrap_err();
        match err {
            PlanError::UnknownFamily { family, known } => {
                assert_eq!(family, "nonsense");
                assert_eq!(known, plannable_families());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn comm_heavy_picks_bigger_reducers_than_compute_heavy() {
        for family in plannable_families() {
            let big = plan_family(family, &ClusterSpec::comm_heavy(), Scale::Small).unwrap();
            let small = plan_family(family, &ClusterSpec::compute_heavy(), Scale::Small).unwrap();
            assert!(
                big.predicted_q >= small.predicted_q,
                "{family}: comm-heavy q={} < compute-heavy q={}",
                big.predicted_q,
                small.predicted_q
            );
            assert!(
                big.predicted_r <= small.predicted_r + 1e-9,
                "{family}: comm-heavy r={} > compute-heavy r={}",
                big.predicted_r,
                small.predicted_r
            );
        }
    }

    #[test]
    fn plans_respect_the_reducer_budget() {
        for family in plannable_families() {
            let cluster = ClusterSpec::default().with_q_budget(30);
            match plan_family(family, &cluster, Scale::Small) {
                Ok(plan) => assert!(
                    plan.predicted_q <= 30,
                    "{family}: chose q={} over budget",
                    plan.predicted_q
                ),
                Err(PlanError::NoFeasiblePoint { .. }) => {} // honest refusal
                Err(other) => panic!("{family}: {other}"),
            }
        }
    }

    #[test]
    fn impossible_budget_is_an_error_not_a_bad_plan() {
        let cluster = ClusterSpec::default().with_q_budget(1);
        let err = plan_family("triangles", &cluster, Scale::Small).unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePoint { budget: 1, .. }));
        assert!(err.to_string().contains("q ≤ 1"));
    }

    #[test]
    fn matmul_crossover_is_exactly_at_n_squared() {
        // Small scale: n = 4, n² = 16. Below 16 the plan must be
        // two-phase; at and above 16 (and unbounded) one-phase.
        for budget in [4u64, 8, 12, 15] {
            let plan = plan_family(
                "matmul",
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(plan.choice, Choice::TwoPhaseMatMul { .. }),
                "budget {budget}: expected two-phase, got {}",
                plan.schema
            );
            assert!(plan.predicted_q <= budget);
        }
        for budget in [16u64, 17, 32, 1000] {
            let plan = plan_family(
                "matmul",
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(plan.choice, Choice::Registry { .. }),
                "budget {budget}: expected one-phase, got {}",
                plan.schema
            );
        }
        let unbounded = plan_family("matmul", &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(matches!(unbounded.choice, Choice::Registry { .. }));
    }

    #[test]
    fn join_rationale_carries_the_lp_exponents() {
        let plan = plan_family("join-cycle3", &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(
            plan.rationale.contains("0.3333"),
            "LP exponents missing: {}",
            plan.rationale
        );
        assert!(plan.rationale.contains("τ = 0.6667"), "{}", plan.rationale);
    }

    #[test]
    fn predicted_pairs_match_the_census() {
        // The pairs prediction (the execution path's pairs_hint) is exact
        // for grid choices: it is the census's pair count, re-derivable
        // from the chosen point. Two-phase matmul plans carry the §6.3
        // closed-form total instead, which is nonzero by construction.
        for family in plannable_families() {
            let plan = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            assert!(plan.predicted_pairs > 0, "{family}: zero pairs predicted");
            if let Choice::Registry { scale, point } = plan.choice {
                let fam = registry_family(plan.family, scale);
                assert_eq!(
                    plan.predicted_pairs,
                    fam.census(point).pairs,
                    "{family}: pairs prediction diverged from the census"
                );
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        for family in plannable_families() {
            let a = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            let b = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            assert_eq!(a.schema, b.schema);
            assert_eq!(a.predicted_q, b.predicted_q);
            assert_eq!(a.rationale, b.rationale);
        }
    }
}
