//! Per-family planners: closed forms where the paper gives them, the
//! share-exponent LP for joins, and exact census pricing everywhere.

use crate::cluster::ClusterSpec;
use crate::dag::{enumerate_dag_candidates, DagCandidate, DagStructure, DagWorkload};
use crate::plan::{Choice, Plan};
use mr_core::family::{family_by_name, AssignCensus, DynFamily, Scale};
use mr_lp::cover::share_exponents;
use mr_lp::{Hypergraph, LpError};

/// Why a plan could not be made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The family name matches no planner.
    UnknownFamily {
        /// The name that failed to resolve.
        family: String,
        /// The plannable vocabulary.
        known: Vec<&'static str>,
    },
    /// No schema in the family fits the cluster's reducer budget.
    NoFeasiblePoint {
        /// The family whose whole grid overflowed.
        family: &'static str,
        /// The budget that excluded everything.
        budget: u64,
    },
    /// The Shares exponent LP failed (degenerate query shape).
    Lp(LpError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownFamily { family, known } => write!(
                f,
                "no planner for family '{family}'; plannable families: {}",
                known.join(", ")
            ),
            PlanError::NoFeasiblePoint { family, budget } => write!(
                f,
                "{family}: no schema fits the reducer budget q ≤ {budget}"
            ),
            PlanError::Lp(e) => write!(f, "share-exponent LP failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<LpError> for PlanError {
    fn from(e: LpError) -> Self {
        PlanError::Lp(e)
    }
}

/// A cost-based planner for one problem family.
///
/// `plan` must be **pure**: same cluster and scale, same plan. The
/// returned [`Plan`] carries exact predictions (census- or closed-form
/// priced), so [`Plan::execute`] runs under `predicted_q` as a hard
/// budget and cannot overflow unless the planner itself is wrong.
pub trait Planner: Send + Sync {
    /// The registry family this planner covers.
    fn family(&self) -> &'static str;

    /// Produces the cheapest plan for `cluster` at `scale` — cheapest
    /// among the family's candidates under the cluster's cost weights.
    /// For families with multi-round structures (matmul), candidates
    /// from the round-structure search in [`crate::dag`] compete in the
    /// same pricing, so the §6 phase crossover is *found*, not
    /// special-cased.
    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError>;
}

/// Compact deterministic number formatting for rationale strings.
fn fmt(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:.4}")
    }
}

/// Builds a registry family by name at the given scale — just the one,
/// via [`family_by_name`]: instance construction is the expensive part
/// of the registry, and a planner needs only its own family's.
fn registry_family(name: &'static str, scale: Scale) -> Box<dyn DynFamily> {
    family_by_name(name, scale).unwrap_or_else(|| panic!("family {name} not in the registry"))
}

/// Reads one of the family's declared instance parameters.
fn param(fam: &dyn DynFamily, key: &str) -> u64 {
    fam.params()
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("{}: missing parameter {key}", fam.name()))
        .1
}

/// One priced candidate: a grid point with its exact census and cost.
struct Candidate {
    point: usize,
    schema: String,
    census: AssignCensus,
    cost: f64,
}

/// The shared grid path: census-price every point, keep the admissible
/// ones, pick the cheapest (first wins ties — grid order is fixed), and
/// package the plan with the family's closed-form story in front.
fn cheapest_grid_plan(
    fam: &dyn DynFamily,
    cluster: &ClusterSpec,
    scale: Scale,
    closed_form: &str,
) -> Result<Plan, PlanError> {
    let grid = fam.grid();
    let mut best: Option<Candidate> = None;
    let mut feasible = 0usize;
    for (point, gp) in grid.iter().enumerate() {
        let census = fam.census(point);
        if !cluster.admits(census.q) {
            continue;
        }
        feasible += 1;
        // A grid point is one round, so it pays the per-round latency
        // charge exactly once (a no-op at the default ℓ = 0) — the same
        // model multi-round DAG candidates are priced under.
        let cost = cluster.cost(census.q as f64, census.r) + cluster.round_latency;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Candidate {
                point,
                schema: gp.schema.clone(),
                census,
                cost,
            });
        }
    }
    let best = best.ok_or(PlanError::NoFeasiblePoint {
        family: fam.name(),
        budget: cluster.reducer_capacity.unwrap_or(0),
    })?;
    let rationale = format!(
        "{closed_form}. Census-priced {} grid points ({} within budget); cheapest: {} \
         with exact (q={}, r={}) → cost {}.",
        grid.len(),
        feasible,
        best.schema,
        best.census.q,
        fmt(best.census.r),
        fmt(best.cost),
    );
    Ok(Plan {
        family: fam.name(),
        schema: best.schema,
        choice: Choice::Registry {
            scale,
            point: best.point,
        },
        cluster: cluster.clone(),
        predicted_q: best.census.q,
        predicted_r: best.census.r,
        predicted_pairs: best.census.pairs,
        predicted_cost: best.cost,
        rationale,
    })
}

// ---------------------------------------------------------------------
// Per-family planners.
// ---------------------------------------------------------------------

/// Hamming distance 1 (§3): the Theorem 3.2 hyperbola at divisor points.
pub struct HammingPlanner;

impl Planner for HammingPlanner {
    fn family(&self) -> &'static str {
        "hamming-d1"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let b = param(&*fam, "b");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "Thm 3.2: every algorithm obeys r ≥ b/log₂q (b={b}); splitting sits exactly \
                 on that hyperbola at the divisor points q=2^(b/k), r=k"
            ),
        )
    }
}

/// Triangles (§4): node partition against the `n/√(2q)` bound.
pub struct TrianglePlanner;

impl Planner for TrianglePlanner {
    fn family(&self) -> &'static str {
        "triangles"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§4.1: r ≥ n/√(2q) (n={n}); node partition into k groups achieves r ≈ k at \
                 q ≈ 3(n/k choose 2) — within the constant factor 3 of the bound"
            ),
        )
    }
}

/// Sample graphs (§5.1–5.3): the 4-cycle pattern under multiset partition.
pub struct SampleGraphPlanner;

impl Planner for SampleGraphPlanner {
    fn family(&self) -> &'static str {
        "sample-c4"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let (n, s) = (param(&*fam, "n"), param(&*fam, "s"));
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.3: Alon-class sample graph with s={s} nodes (n={n}), g(q) = q^(s/2); \
                 multiset partition over k groups trades r ~ k^(s-2) against q"
            ),
        )
    }
}

/// 2-paths (§5.4): per-node vs the bucket-pair refinement.
pub struct TwoPathPlanner;

impl Planner for TwoPathPlanner {
    fn family(&self) -> &'static str {
        "two-path"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.4: r ≥ 2n/q (n={n}); per-node (q=n, r=2) is bound-optimal, bucket-pair \
                 buys q ≈ 2n/k at r = 2(k−1)"
            ),
        )
    }
}

/// Multiway joins (§5.5): symmetric Shares with LP-derived exponents.
pub struct JoinPlanner;

impl Planner for JoinPlanner {
    fn family(&self) -> &'static str {
        "join-cycle3"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let atoms = param(&*fam, "atoms") as usize;
        // The Shares exponents x_v (s_v = p^{x_v}) by simplex — in the
        // spirit of Abo Khamis–Ngo–Suciu's fractional-cover machinery.
        // For the symmetric cycle the LP proves the symmetric grid the
        // registry sweeps is the right shape.
        let (tau, x) = share_exponents(&Hypergraph::cycle(atoms))?;
        let exps = x.iter().map(|&xi| fmt(xi)).collect::<Vec<_>>().join(", ");
        cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§5.5/LP: share exponents x = [{exps}] (τ = {}), so the optimal grid is \
                 symmetric (s_v = p^(1/{atoms})) with per-atom replication p^(1−τ)",
                fmt(tau)
            ),
        )
    }
}

/// Matrix multiplication (§6): the round-structure search decides the
/// number of phases.
///
/// **Contract of the phase dispatch.** One-phase tiling, the flat §6.3
/// two-phase method, and the deeper recursive aggregation trees are all
/// priced under the *same* per-round model
/// `Σ rounds (a·r + b·q + c·q²) + ℓ·depth` (see [`crate::dag`]), and the
/// cheapest admissible structure wins. The §6.3 crossover at `q = n²`
/// falls out of this search rather than being special-cased: below the
/// boundary no one-phase point fits the budget, so the flat tree wins;
/// at and above it the one-phase grid is cheaper under
/// communication-leaning weights. A cost **tie breaks toward the
/// multi-round structure** — equal money, but its per-round reducers
/// are smaller, which is the resource the budget actually constrains.
/// (Exactly at the crossover the flat tree and the one-phase point tie
/// in communication, so the boundary stays at `q = n²`.)
pub struct MatMulPlanner;

impl MatMulPlanner {
    /// The cheapest admissible multi-round candidate from the DAG
    /// search, if any (first-wins on ties — candidate order is fixed).
    fn best_tree(cluster: &ClusterSpec, scale: Scale) -> Option<DagCandidate> {
        enumerate_dag_candidates(DagWorkload::MatMul, scale)
            .into_iter()
            .filter(|c| {
                matches!(c.structure, DagStructure::MatMulTree { .. }) && c.dag.admitted_by(cluster)
            })
            .min_by(|a, b| {
                a.dag
                    .cost(cluster)
                    .partial_cmp(&b.dag.cost(cluster))
                    .unwrap()
            })
    }

    /// Packages a winning tree candidate as a [`Plan`].
    fn tree_plan(tree: &DagCandidate, cluster: &ClusterSpec, grid_cost: Option<f64>) -> Plan {
        let DagStructure::MatMulTree { n, s, t, fanin } = tree.structure else {
            unreachable!("best_tree only returns tree candidates");
        };
        let cost = tree.dag.cost(cluster);
        let against = match grid_cost {
            Some(g) => format!("beats the cheapest one-phase grid point ({})", fmt(g)),
            None => "no one-phase grid point fits the budget".to_string(),
        };
        Plan {
            family: "matmul",
            schema: tree.structure.name(),
            choice: Choice::MatMulTree { n, s, t, fanin },
            cluster: cluster.clone(),
            predicted_q: tree.dag.max_q(),
            predicted_r: tree.dag.replication(),
            predicted_pairs: tree.dag.total_pairs(),
            predicted_cost: cost,
            rationale: format!(
                "§6 crossover found by round-structure search: {} at per-round cost {} \
                 {}. Rounds [{}]; total communication {}, max reducer load {}.",
                tree.structure.name(),
                fmt(cost),
                against,
                tree.dag.describe(),
                tree.dag.total_pairs(),
                tree.dag.max_q(),
            ),
        }
    }
}

impl Planner for MatMulPlanner {
    fn family(&self) -> &'static str {
        "matmul"
    }

    fn plan(&self, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
        let fam = registry_family(self.family(), scale);
        let n = param(&*fam, "n") as u32;
        let grid = cheapest_grid_plan(
            &*fam,
            cluster,
            scale,
            &format!(
                "§6.1–6.2: one-phase square tiling sits exactly on r = 2n²/q (n={n}), and \
                 under this cluster it prices below every §6.3-style multi-round \
                 aggregation tree the round-structure search enumerated"
            ),
        );
        match (Self::best_tree(cluster, scale), grid) {
            (Some(tree), Ok(grid_plan)) => {
                if tree.dag.cost(cluster) <= grid_plan.predicted_cost {
                    Ok(Self::tree_plan(
                        &tree,
                        cluster,
                        Some(grid_plan.predicted_cost),
                    ))
                } else {
                    Ok(grid_plan)
                }
            }
            (Some(tree), Err(_)) => Ok(Self::tree_plan(&tree, cluster, None)),
            (None, grid) => grid,
        }
    }
}

// ---------------------------------------------------------------------
// The planner registry.
// ---------------------------------------------------------------------

/// All per-family planners, in registry order.
pub fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(HammingPlanner),
        Box::new(TrianglePlanner),
        Box::new(SampleGraphPlanner),
        Box::new(TwoPathPlanner),
        Box::new(JoinPlanner),
        Box::new(MatMulPlanner),
    ]
}

/// The family names [`plan_family`] accepts, in registry order.
pub fn plannable_families() -> Vec<&'static str> {
    planners().iter().map(|p| p.family()).collect()
}

/// Plans one family by name.
pub fn plan_family(family: &str, cluster: &ClusterSpec, scale: Scale) -> Result<Plan, PlanError> {
    planners()
        .iter()
        .find(|p| p.family() == family)
        .ok_or_else(|| PlanError::UnknownFamily {
            family: family.to_string(),
            known: plannable_families(),
        })?
        .plan(cluster, scale)
}

/// Plans every registry family, in registry order.
pub fn plan_all(cluster: &ClusterSpec, scale: Scale) -> Result<Vec<Plan>, PlanError> {
    planners().iter().map(|p| p.plan(cluster, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::family::registry;

    #[test]
    fn planners_cover_the_registry_exactly() {
        let expected: Vec<&str> = registry().iter().map(|f| f.name()).collect();
        assert_eq!(plannable_families(), expected);
    }

    #[test]
    fn unknown_family_lists_the_vocabulary() {
        let err = plan_family("nonsense", &ClusterSpec::default(), Scale::Small).unwrap_err();
        match err {
            PlanError::UnknownFamily { family, known } => {
                assert_eq!(family, "nonsense");
                assert_eq!(known, plannable_families());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn comm_heavy_picks_bigger_reducers_than_compute_heavy() {
        for family in plannable_families() {
            let big = plan_family(family, &ClusterSpec::comm_heavy(), Scale::Small).unwrap();
            let small = plan_family(family, &ClusterSpec::compute_heavy(), Scale::Small).unwrap();
            assert!(
                big.predicted_q >= small.predicted_q,
                "{family}: comm-heavy q={} < compute-heavy q={}",
                big.predicted_q,
                small.predicted_q
            );
            assert!(
                big.predicted_r <= small.predicted_r + 1e-9,
                "{family}: comm-heavy r={} > compute-heavy r={}",
                big.predicted_r,
                small.predicted_r
            );
        }
    }

    #[test]
    fn plans_respect_the_reducer_budget() {
        for family in plannable_families() {
            let cluster = ClusterSpec::default().with_q_budget(30);
            match plan_family(family, &cluster, Scale::Small) {
                Ok(plan) => assert!(
                    plan.predicted_q <= 30,
                    "{family}: chose q={} over budget",
                    plan.predicted_q
                ),
                Err(PlanError::NoFeasiblePoint { .. }) => {} // honest refusal
                Err(other) => panic!("{family}: {other}"),
            }
        }
    }

    #[test]
    fn impossible_budget_is_an_error_not_a_bad_plan() {
        let cluster = ClusterSpec::default().with_q_budget(1);
        let err = plan_family("triangles", &cluster, Scale::Small).unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePoint { budget: 1, .. }));
        assert!(err.to_string().contains("q ≤ 1"));
    }

    #[test]
    fn matmul_crossover_is_exactly_at_n_squared() {
        // Small scale: n = 4, n² = 16. Below 16 the plan must be
        // two-phase; at and above 16 (and unbounded) one-phase.
        for budget in [4u64, 8, 12, 15] {
            let plan = plan_family(
                "matmul",
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(plan.choice, Choice::MatMulTree { .. }),
                "budget {budget}: expected two-phase, got {}",
                plan.schema
            );
            assert!(plan.predicted_q <= budget);
        }
        for budget in [16u64, 17, 32, 1000] {
            let plan = plan_family(
                "matmul",
                &ClusterSpec::default().with_q_budget(budget),
                Scale::Small,
            )
            .unwrap();
            assert!(
                matches!(plan.choice, Choice::Registry { .. }),
                "budget {budget}: expected one-phase, got {}",
                plan.schema
            );
        }
        let unbounded = plan_family("matmul", &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(matches!(unbounded.choice, Choice::Registry { .. }));
    }

    #[test]
    fn join_rationale_carries_the_lp_exponents() {
        let plan = plan_family("join-cycle3", &ClusterSpec::default(), Scale::Small).unwrap();
        assert!(
            plan.rationale.contains("0.3333"),
            "LP exponents missing: {}",
            plan.rationale
        );
        assert!(plan.rationale.contains("τ = 0.6667"), "{}", plan.rationale);
    }

    #[test]
    fn predicted_pairs_match_the_census() {
        // The pairs prediction (the execution path's pairs_hint) is exact
        // for grid choices: it is the census's pair count, re-derivable
        // from the chosen point. Two-phase matmul plans carry the §6.3
        // closed-form total instead, which is nonzero by construction.
        for family in plannable_families() {
            let plan = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            assert!(plan.predicted_pairs > 0, "{family}: zero pairs predicted");
            if let Choice::Registry { scale, point } = plan.choice {
                let fam = registry_family(plan.family, scale);
                assert_eq!(
                    plan.predicted_pairs,
                    fam.census(point).pairs,
                    "{family}: pairs prediction diverged from the census"
                );
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        for family in plannable_families() {
            let a = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            let b = plan_family(family, &ClusterSpec::default(), Scale::Small).unwrap();
            assert_eq!(a.schema, b.schema);
            assert_eq!(a.predicted_q, b.predicted_q);
            assert_eq!(a.rationale, b.rationale);
        }
    }
}
