//! Incremental (delta) planning: price a [`DeltaSpec`] before running it.
//!
//! [`Plan::execute`](crate::Plan::execute) proves the planner's full-run
//! predictions by executing under them as hard budgets. This module
//! extends that honesty contract to incremental execution:
//! [`plan_delta`] prices a delta with
//! [`DynFamily::delta_census`](mr_core::family::DynFamily::delta_census) —
//! exact by §2.2 obliviousness — and [`DeltaPlan::execute`] runs the
//! retained path budgeted at the predicted post-delta `q`
//! ([`DeltaCensus::post_q`]), so an under-prediction aborts loudly
//! instead of reporting a happy number.

use crate::cluster::ClusterSpec;
use mr_core::family::{family_by_name, DeltaCensus, DeltaReport, DeltaSpec, Scale};
use mr_sim::Pipeline;

/// A priced incremental step on a registry family's grid point: the
/// delta to apply and the exact map-side prediction its execution will
/// be budgeted with.
#[derive(Debug, Clone)]
pub struct DeltaPlan {
    /// Registry family the plan is for.
    pub family: String,
    /// Instance-size preset the plan was made for.
    pub scale: Scale,
    /// Index into the family's grid.
    pub point: usize,
    /// The delta to apply.
    pub spec: DeltaSpec,
    /// The exact prediction from
    /// [`DynFamily::delta_census`](mr_core::family::DynFamily::delta_census):
    /// execution runs under `census.post_q` as a hard reducer budget.
    pub census: DeltaCensus,
    /// The cluster the plan was made for (supplies the engine).
    pub cluster: ClusterSpec,
}

/// Prices the delta `spec` on grid point `point` of the named registry
/// family. Returns `None` for an unknown family name.
///
/// # Panics
/// Panics if `point` is out of range for the family's grid or `spec`
/// holds out-of-range input indices.
pub fn plan_delta(
    family: &str,
    scale: Scale,
    point: usize,
    spec: DeltaSpec,
    cluster: &ClusterSpec,
) -> Option<DeltaPlan> {
    let fam = family_by_name(family, scale)?;
    let census = fam.delta_census(point, &spec);
    Some(DeltaPlan {
        family: family.to_string(),
        scale,
        point,
        spec,
        census,
        cluster: cluster.clone(),
    })
}

impl DeltaPlan {
    /// Predicted fraction of the post-delta instance's reducers the
    /// incremental path re-executes — the work saved vs a full re-run is
    /// `1 − dirty_fraction` (in reducer invocations).
    pub fn dirty_fraction(&self) -> f64 {
        if self.census.post_reducers == 0 {
            0.0
        } else {
            self.census.dirty_reducers as f64 / self.census.post_reducers as f64
        }
    }

    /// Executes the plan on the cluster's engine through the selected
    /// [`Pipeline`], under the census prediction as the reducer budget —
    /// the delta analogue of [`Plan::execute`](crate::Plan::execute)'s
    /// self-check. The returned report carries the verdicts
    /// (`matches_full_run`, `prediction_exact`) the battery asserts.
    ///
    /// # Panics
    /// Panics if the predicted budget overflows (a census bug by
    /// definition), or if the plan's family/point no longer exists.
    pub fn execute(&self, pipeline: Pipeline) -> DeltaReport {
        let fam = family_by_name(&self.family, self.scale)
            .unwrap_or_else(|| panic!("family {} not in the registry", self.family));
        fam.delta_run(self.point, &self.cluster.engine(), pipeline, &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_sim::{run_schema_retained, Delta, DeltaError, EngineConfig, EngineError, SchemaJob};

    #[test]
    fn delta_plan_roundtrips_exactly() {
        let cluster = ClusterSpec::default();
        let spec = DeltaSpec::tail_churn(28); // K_8 has 28 edges
        let plan = plan_delta("triangles", Scale::Small, 0, spec, &cluster).unwrap();
        let report = plan.execute(Pipeline::Columnar);
        assert!(report.matches_full_run);
        assert!(report.prediction_exact);
        assert_eq!(report.census, plan.census);
        assert_eq!(report.dirty_reducers, plan.census.dirty_reducers);
        assert!(plan.dirty_fraction() > 0.0 && plan.dirty_fraction() <= 1.0);
    }

    #[test]
    fn unknown_family_is_rejected() {
        let cluster = ClusterSpec::default();
        assert!(plan_delta("nonsense", Scale::Small, 0, DeltaSpec::default(), &cluster).is_none());
    }

    /// Every input lands on reducer 0, so `q` = the live instance size.
    struct Funnel;
    impl SchemaJob<u32, u32> for Funnel {
        fn assign(&self, _input: &u32) -> Vec<u64> {
            vec![0]
        }
        fn reduce(&self, _r: u64, inputs: &[u32], emit: &mut dyn FnMut(u32)) {
            emit(inputs.iter().sum())
        }
    }

    #[test]
    fn under_predicted_post_q_aborts_loudly() {
        // The honesty contract itself: budget the retained job one unit
        // below the true post-delta q and the apply must abort with the
        // overflow — and leave the retained state untouched.
        let base: Vec<u32> = vec![1, 2, 3];
        let grow = Delta::add(vec![4, 5]); // post-q = 5
        let exact = EngineConfig::sequential().with_max_reducer_inputs(5);
        let mut job = run_schema_retained(&base, Funnel, Pipeline::Columnar, &exact).unwrap();
        let predicted = job.predict(&grow).unwrap();
        assert_eq!(predicted.post_q, 5);

        let short = EngineConfig::sequential().with_max_reducer_inputs(4);
        let mut starved = run_schema_retained(&base, Funnel, Pipeline::Columnar, &short).unwrap();
        let err = starved.apply(&grow).unwrap_err();
        assert_eq!(
            err,
            DeltaError::Engine(EngineError::ReducerOverflow {
                key: "0".into(),
                load: 5,
                limit: 4,
            })
        );
        assert_eq!(starved.outputs(), vec![6]); // state preserved

        // Under the exact predicted budget the same delta lands.
        let outcome = job.apply(&grow).unwrap();
        assert_eq!(outcome.metrics.dirty_reducers, 1);
        assert_eq!(job.outputs(), vec![15]);
    }
}
