#![warn(missing_docs)]

//! The decision layer between `mr-core`'s analytic bounds and `mr-sim`'s
//! executor: given a **cluster**, pick the **cheapest algorithm**.
//!
//! Every executor in this workspace takes a hand-picked schema parameter —
//! a splitting divisor, block sides `(s, t)`, Shares exponents. A
//! production system is not told `q`; it is told a cluster and derives the
//! cheapest point on the paper's `(q, r)` tradeoff frontier itself. This
//! crate closes that loop:
//!
//! * [`ClusterSpec`] describes the cluster — worker
//!   count, per-reducer memory budget, and the §1.2 cost weights
//!   `a·r + b·q (+ c·q²)` (generalising [`mr_core::cost::CostModel`]);
//! * the [`Planner`] trait has one implementation per
//!   problem family, each using the paper's closed forms where it gives
//!   them — the Theorem 3.2 Hamming hyperbola, §4.1 triangle
//!   partitioning, the §6 one- vs two-phase matmul crossover at
//!   `q = n²` — and [`mr_lp::share_exponents`]'s simplex for Shares
//!   exponents on cycle joins;
//! * candidate points are priced by [`mr_core::family::AssignCensus`] —
//!   an exact map-side prediction, so `predicted_q`/`predicted_r` equal
//!   what the engine will measure;
//! * every [`Plan`] is **runnable**:
//!   [`Plan::execute`] lowers the choice onto the
//!   [`DynFamily`](mr_core::family::DynFamily) registry /
//!   [`mr_sim::run_schema_dyn`] path (or a multi-round matmul tree),
//!   under a reducer budget equal to its own prediction, and reports
//!   measured `(q, r, cost)` next to the predicted ones;
//! * the [`dag`] module generalises the plan *shape*: a
//!   [`RoundDag`] is a DAG of rounds with per-round census-exact
//!   `(q, r)` and cost `Σ rounds (a·r + b·q + c·q²) + ℓ·depth`, and
//!   [`plan_dag`] searches a workload's round structures (one-phase,
//!   flat two-phase, deeper aggregation trees, join→aggregate
//!   pipelines, multi-round Hamming splitting) so the §6.3 crossover is
//!   *found* by costing rather than special-cased.
//!
//! Planning is pure — same `(family, cluster, scale)`, same plan — so a
//! resident process can memoise it: [`PlanCache`] fronts [`plan_family`]
//! and [`plan_dag`] with a bit-exact key over every planner input and
//! exposes [`CacheStats`] hit/miss counters.
//!
//! The `repro plan` and `repro dag` experiments in `mr-bench` drive this
//! end to end, and the planner-vs-sweep and DAG parity batteries prove
//! the planner's pick matches the empirically-cheapest alternative.

pub mod cache;
pub mod cluster;
pub mod dag;
pub mod delta;
pub mod plan;
pub mod planner;

pub use cache::{CacheStats, PlanCache};
pub use cluster::ClusterSpec;
pub use dag::{
    enumerate_dag_candidates, plan_all_dags, plan_dag, DagCandidate, DagPlan, DagPlanReport,
    DagStructure, DagWorkload, RoundDag, RoundObservation, RoundSpec,
};
pub use delta::{plan_delta, DeltaPlan};
pub use plan::{Choice, Plan, PlanReport};
pub use planner::{plan_all, plan_family, plannable_families, planners, PlanError, Planner};
