//! The resident plan cache.
//!
//! Planning is pure — the [`Planner`](crate::Planner) contract says
//! *"same cluster and scale, same plan"* — yet every `plan()` call pays
//! the full price again: the census enumeration over potential inputs,
//! the Shares LP for join exponents, the DAG round-structure search. A
//! resident process (the `mr-serve` daemon the roadmap points at)
//! re-plans the same handful of (family, cluster, scale) triples on
//! every request; [`PlanCache`] memoises them, the planning twin of the
//! execution substrate's resident [`WorkerPool`](mr_sim::WorkerPool).
//!
//! The cache key is the exact determinism domain of the planner: family
//! (or DAG workload) name, instance [`Scale`], and every field of the
//! [`ClusterSpec`] — the four `f64` cost weights keyed by their bit
//! patterns, so `0.1 + 0.2` and `0.3` are (correctly) different
//! clusters. Only successful plans are cached: a [`PlanError`] is
//! recomputed on the next call, which costs nothing extra in practice
//! (errors are rare and deterministic) and keeps the cache free of
//! negative-result invalidation questions.
//!
//! [`CacheStats`] hit/miss counters are surfaced in the `repro plan` /
//! `repro dag` semantic JSON — the first scrapeable operational stat for
//! the future daemon. The counters live in a per-cache
//! [`mr_obs::MetricsHub`] (keys `plan_cache.hits` /
//! `plan_cache.misses`), so the same registry the execution stack
//! reports into is the single source of truth; [`CacheStats`] is just a
//! snapshot of those two counters.

use crate::cluster::ClusterSpec;
use crate::dag::{plan_dag, DagPlan, DagWorkload};
use crate::plan::Plan;
use crate::planner::{plan_family, PlanError};
use mr_core::family::Scale;
use mr_obs::{Counter, MetricsHub};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Hit/miss counters of a [`PlanCache`], taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls answered from the cache.
    pub hits: u64,
    /// Calls that ran the underlying planner (including failed plans,
    /// which are never cached).
    pub misses: u64,
}

/// A memoising front for [`plan_family`] and [`plan_dag`].
///
/// Thread-safe; clone-out semantics (a hit clones the cached plan, so
/// callers own their copy and the cache never hands out references into
/// its own storage). See the [module docs](self) for the key and the
/// only-cache-successes policy.
#[derive(Debug)]
pub struct PlanCache {
    plans: Mutex<BTreeMap<String, Plan>>,
    dags: Mutex<BTreeMap<String, DagPlan>>,
    /// Per-cache metrics registry holding the `plan_cache.hits` /
    /// `plan_cache.misses` counters (cached handles below).
    hub: MetricsHub,
    hits: Counter,
    misses: Counter,
}

impl Default for PlanCache {
    fn default() -> Self {
        let hub = MetricsHub::new();
        let hits = hub.counter("plan_cache.hits");
        let misses = hub.counter("plan_cache.misses");
        PlanCache {
            plans: Mutex::new(BTreeMap::new()),
            dags: Mutex::new(BTreeMap::new()),
            hub,
            hits,
            misses,
        }
    }
}

/// The cache key: every input the pure planners read, rendered to a
/// stable string. Float weights go in as hex bit patterns — bit-exact
/// equality is the right equivalence for memoising a pure function.
fn key_of(name: &str, cluster: &ClusterSpec, scale: Scale) -> String {
    format!(
        "{name}|{scale:?}|w={}|cap={:?}|a={:016x}|b={:016x}|c={:016x}|l={:016x}",
        cluster.workers,
        cluster.reducer_capacity,
        cluster.comm_weight.to_bits(),
        cluster.compute_weight.to_bits(),
        cluster.latency_weight.to_bits(),
        cluster.round_latency.to_bits(),
    )
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`plan_family`] through the cache.
    pub fn plan_family(
        &self,
        family: &str,
        cluster: &ClusterSpec,
        scale: Scale,
    ) -> Result<Plan, PlanError> {
        let key = key_of(family, cluster, scale);
        if let Some(plan) = self.plans.lock().expect("plan cache poisoned").get(&key) {
            self.hits.incr();
            return Ok(plan.clone());
        }
        self.misses.incr();
        let plan = plan_family(family, cluster, scale)?;
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// [`plan_dag`] through the cache.
    pub fn plan_dag(
        &self,
        workload: DagWorkload,
        cluster: &ClusterSpec,
        scale: Scale,
    ) -> Result<DagPlan, PlanError> {
        let key = key_of(workload.name(), cluster, scale);
        if let Some(plan) = self.dags.lock().expect("plan cache poisoned").get(&key) {
            self.hits.incr();
            return Ok(plan.clone());
        }
        self.misses.incr();
        let plan = plan_dag(workload, cluster, scale)?;
        self.dags
            .lock()
            .expect("plan cache poisoned")
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// The counters so far — a snapshot of the `plan_cache.hits` /
    /// `plan_cache.misses` counters in [`metrics`](Self::metrics).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hub.counter_value("plan_cache.hits"),
            misses: self.hub.counter_value("plan_cache.misses"),
        }
    }

    /// The cache's metrics registry — the scrape surface the future
    /// `mr-serve` daemon reads, holding the same counters
    /// [`stats`](Self::stats) snapshots.
    pub fn metrics(&self) -> &MetricsHub {
        &self.hub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plannable_families;

    #[test]
    fn repeat_plans_hit() {
        let cache = PlanCache::new();
        let cluster = ClusterSpec::default();
        let first = cache
            .plan_family("hamming-d1", &cluster, Scale::Small)
            .expect("plannable");
        let second = cache
            .plan_family("hamming-d1", &cluster, Scale::Small)
            .expect("plannable");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // The hit is the same plan, not a re-derivation.
        assert_eq!(first.choice, second.choice);
        assert_eq!(first.predicted_q, second.predicted_q);
        assert_eq!(first.predicted_cost, second.predicted_cost);
    }

    #[test]
    fn different_clusters_do_not_collide() {
        let cache = PlanCache::new();
        let a = ClusterSpec::comm_heavy();
        let b = ClusterSpec::compute_heavy();
        let plan_a = cache.plan_family("hamming-d1", &a, Scale::Small).unwrap();
        let plan_b = cache.plan_family("hamming-d1", &b, Scale::Small).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // Opposite cost regimes pick opposite frontier ends.
        assert!(plan_a.predicted_q >= plan_b.predicted_q);
    }

    #[test]
    fn q_budget_is_part_of_the_key() {
        let cache = PlanCache::new();
        let unbounded = ClusterSpec::default();
        let capped = ClusterSpec::default().with_q_budget(4);
        cache
            .plan_family("hamming-d1", &unbounded, Scale::Small)
            .unwrap();
        cache
            .plan_family("hamming-d1", &capped, Scale::Small)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = PlanCache::new();
        let cluster = ClusterSpec::default();
        for _ in 0..2 {
            assert!(matches!(
                cache.plan_family("no-such-family", &cluster, Scale::Small),
                Err(PlanError::UnknownFamily { .. })
            ));
        }
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn cached_plans_match_direct_plans_for_every_family() {
        let cache = PlanCache::new();
        let cluster = ClusterSpec::default();
        for family in plannable_families() {
            let direct = plan_family(family, &cluster, Scale::Small).expect(family);
            let cached = cache
                .plan_family(family, &cluster, Scale::Small)
                .expect(family);
            assert_eq!(direct.choice, cached.choice, "{family}");
            assert_eq!(direct.predicted_cost, cached.predicted_cost, "{family}");
        }
    }

    #[test]
    fn dag_plans_hit_too() {
        let cache = PlanCache::new();
        let cluster = ClusterSpec::default();
        let first = cache
            .plan_dag(DagWorkload::MatMul, &cluster, Scale::Small)
            .expect("plannable");
        let second = cache
            .plan_dag(DagWorkload::MatMul, &cluster, Scale::Small)
            .expect("plannable");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(first.structure, second.structure);
    }
}
