//! Plans and their execution lowering.

use crate::cluster::ClusterSpec;
use mr_core::family::{family_by_name, Scale};
use mr_core::problems::matmul::problem::numeric_inputs;
use mr_core::problems::matmul::{Matrix, RecursiveMatMul};
use mr_sim::{EngineConfig, EngineError};
use std::time::Duration;

/// The algorithm a plan commits to, in lowerable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Grid point `point` of the named registry family at `scale` —
    /// lowered through [`DynFamily::run`](mr_core::family::DynFamily::run)
    /// onto the type-erased [`mr_sim::run_schema_dyn`] path.
    Registry {
        /// Instance-size preset the plan was made for.
        scale: Scale,
        /// Index into the family's [`grid`](mr_core::family::DynFamily::grid).
        point: usize,
    },
    /// A multi-round matrix-multiplication aggregation tree — the
    /// algorithms the one-phase registry grid cannot express, chosen by
    /// the round-structure search whenever some tree prices below every
    /// grid point (e.g. whenever the reducer budget drops below `n²`).
    /// `fanin = n/t` is exactly the §6.3 two-phase method; smaller
    /// fan-ins are deeper trees.
    MatMulTree {
        /// Matrix side length.
        n: u32,
        /// Row/column block side (divides `n`).
        s: u32,
        /// j-dimension block depth (divides `n`).
        t: u32,
        /// Aggregation-tree fan-in.
        fanin: u32,
    },
}

/// A costed, runnable decision: which schema to run, what it will
/// measure, and why it was picked.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Registry family the plan is for.
    pub family: &'static str,
    /// Chosen schema's display name (grid-point name, or the two-phase
    /// block shape).
    pub schema: String,
    /// The lowerable choice.
    pub choice: Choice,
    /// The cluster the plan was made for (costs and execution workers).
    pub cluster: ClusterSpec,
    /// Predicted maximum reducer load. Exact: grid points are priced by
    /// [`AssignCensus`](mr_core::family::AssignCensus), multi-round trees
    /// by their closed-form per-round loads — so execution runs under
    /// this very value as a hard budget.
    pub predicted_q: u64,
    /// Predicted replication rate (for multi-round choices: total
    /// communication over `|I|`).
    pub predicted_r: f64,
    /// Predicted shuffled key-value pairs (census pairs for grid points,
    /// total multi-round communication for trees). Exact, like the
    /// other predictions — and threaded into execution as the engine's
    /// [`pairs_hint`](mr_sim::EngineConfig::pairs_hint), so the emission
    /// buffers of a planned run are sized right up front instead of
    /// growing through doubling reallocations.
    pub predicted_pairs: u64,
    /// Predicted cluster cost `a·r + b·q (+ c·q²)`.
    pub predicted_cost: f64,
    /// Why this point: the closed form used, the candidates priced, and
    /// the winning numbers.
    pub rationale: String,
}

/// The result of executing a [`Plan`]: measurements next to predictions.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The executed plan.
    pub plan: Plan,
    /// Engine-measured maximum reducer load (max over rounds for
    /// multi-round choices).
    pub measured_q: u64,
    /// Engine-measured replication rate (total communication over `|I|`
    /// for multi-round choices).
    pub measured_r: f64,
    /// Cluster cost of the measured `(q, r)` point.
    pub measured_cost: f64,
    /// Outputs the execution emitted.
    pub outputs: u64,
    /// Engine-observed shuffle-partition skew, `max partition load /
    /// mean` (max over rounds for multi-round choices; 0 when the run
    /// was not partitioned). Execution metadata, like `wall`.
    pub partition_skew: f64,
    /// Engine-observed shuffle volume in bytes (summed over rounds).
    /// Execution metadata, like `wall`.
    pub shuffle_bytes: u64,
    /// Wall-clock time (execution metadata, varies run to run).
    pub wall: Duration,
}

impl Plan {
    /// Executes the plan on the cluster's engine. See
    /// [`execute_with`](Plan::execute_with).
    pub fn execute(&self) -> Result<PlanReport, EngineError> {
        self.execute_with(&self.cluster.engine())
    }

    /// Executes the plan on the given engine, **under its own prediction
    /// as the reducer budget**: every round runs with
    /// `max_reducer_inputs = predicted_q`, so a plan whose prediction
    /// undershot reality aborts loudly instead of reporting a happy
    /// number. Predictions are exact by construction, so this is a
    /// self-check that every execution re-proves; an
    /// [`EngineError::ReducerOverflow`] here means the planner itself is
    /// wrong, and it is *reported*, not panicked, so callers (the CLI,
    /// the experiments) surface it like any other refusal.
    ///
    /// The prediction also feeds the engine's performance side:
    /// `predicted_pairs` becomes the round's
    /// [`pairs_hint`](EngineConfig::pairs_hint), pre-sizing the columnar
    /// emission buffers exactly. (For multi-round trees the hint is the
    /// *total* communication — each round over-reserves a little, which
    /// is harmless for a capacity hint.)
    ///
    /// # Panics
    /// Panics if the plan's family/point no longer exists in the
    /// registry.
    pub fn execute_with(&self, engine: &EngineConfig) -> Result<PlanReport, EngineError> {
        let _span = mr_obs::span("plan.execute");
        let budgeted = engine
            .clone()
            .with_max_reducer_inputs(self.predicted_q)
            .with_pairs_hint(self.predicted_pairs);
        match self.choice {
            Choice::Registry { scale, point } => {
                let fam = family_by_name(self.family, scale)
                    .unwrap_or_else(|| panic!("family {} not in the registry", self.family));
                let fp = fam.run(point, &budgeted);
                Ok(PlanReport {
                    measured_q: fp.measured.q,
                    measured_r: fp.measured.r,
                    // One round pays the per-round latency charge once,
                    // mirroring the planner's pricing (0 by default).
                    measured_cost: self.cluster.cost(fp.measured.q as f64, fp.measured.r)
                        + self.cluster.round_latency,
                    outputs: fp.measured.outputs,
                    partition_skew: fp.partition_skew,
                    shuffle_bytes: fp.shuffle_bytes,
                    wall: fp.wall,
                    plan: self.clone(),
                })
            }
            Choice::MatMulTree { n, s, t, fanin } => {
                // The same instance the registry's matmul family builds
                // (seeds included), so one- and multi-round plans are
                // directly comparable.
                let a = Matrix::random(n as usize, 3);
                let b = Matrix::random(n as usize, 4);
                let inputs = numeric_inputs(&a, &b);
                let num_inputs = inputs.len() as f64;
                let job = RecursiveMatMul::new(n, s, t, fanin).job();
                let (out, metrics, wall) = job.run_timed(inputs, &budgeted)?;
                let measured_q = metrics.max_reducer_load();
                let measured_r = metrics.total_communication() as f64 / num_inputs;
                // Per-round pricing plus the latency charge per round —
                // the chain's depth equals its round count.
                let measured_cost = metrics
                    .rounds
                    .iter()
                    .map(|m| {
                        self.cluster
                            .cost(m.load.max as f64, m.kv_pairs as f64 / num_inputs)
                    })
                    .sum::<f64>()
                    + self.cluster.round_latency * metrics.rounds.len() as f64;
                Ok(PlanReport {
                    measured_q,
                    measured_r,
                    measured_cost,
                    outputs: out.len() as u64,
                    partition_skew: metrics
                        .rounds
                        .iter()
                        .map(|m| m.shuffle.partition_skew())
                        .fold(0.0, f64::max),
                    shuffle_bytes: metrics
                        .rounds
                        .iter()
                        .map(|m| m.shuffle.bytes_moved.unwrap_or(0))
                        .sum(),
                    wall,
                    plan: self.clone(),
                })
            }
        }
    }
}

impl PlanReport {
    /// Absolute relative error of the replication prediction
    /// (`|predicted − measured| / measured`); 0 for an exact planner.
    pub fn r_error(&self) -> f64 {
        (self.plan.predicted_r - self.measured_r).abs() / self.measured_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_family;

    #[test]
    fn registry_plan_roundtrips_exactly() {
        let cluster = ClusterSpec::default();
        let plan = plan_family("triangles", &cluster, Scale::Small).unwrap();
        assert!(matches!(plan.choice, Choice::Registry { .. }));
        let report = plan.execute().unwrap();
        assert_eq!(report.measured_q, plan.predicted_q);
        assert!((report.measured_r - plan.predicted_r).abs() < 1e-12);
        assert!((report.measured_cost - plan.predicted_cost).abs() < 1e-9);
        assert_eq!(report.r_error(), 0.0);
        assert!(report.outputs > 0);
    }

    #[test]
    fn two_phase_plan_roundtrips_exactly() {
        // Small-scale matmul n = 4: a budget below n² = 16 forces a
        // multi-round tree; its closed-form predictions must match the
        // multi-round execution to the pair.
        let cluster = ClusterSpec::default().with_q_budget(8);
        let plan = plan_family("matmul", &cluster, Scale::Small).unwrap();
        assert!(matches!(plan.choice, Choice::MatMulTree { .. }));
        let report = plan.execute().unwrap();
        assert_eq!(report.measured_q, plan.predicted_q);
        assert!(
            (report.measured_r - plan.predicted_r).abs() < 1e-12,
            "predicted r={}, measured {}",
            plan.predicted_r,
            report.measured_r
        );
        assert!(
            (report.measured_cost - plan.predicted_cost).abs() < 1e-9,
            "predicted cost={}, measured {}",
            plan.predicted_cost,
            report.measured_cost
        );
        assert_eq!(report.outputs, 16); // n² product cells
    }

    #[test]
    fn a_wrong_prediction_surfaces_as_reducer_overflow() {
        // Corrupting a tree plan's budget must come back as an engine
        // error, not a panic: planner bugs are reported like any other
        // refusal.
        let cluster = ClusterSpec::default().with_q_budget(8);
        let mut plan = plan_family("matmul", &cluster, Scale::Small).unwrap();
        assert!(matches!(plan.choice, Choice::MatMulTree { .. }));
        plan.predicted_q = 3;
        let err = plan.execute().unwrap_err();
        assert!(
            matches!(err, EngineError::ReducerOverflow { limit: 3, .. }),
            "wrong error: {err:?}"
        );
    }

    #[test]
    fn execution_is_engine_worker_independent() {
        let cluster = ClusterSpec::default();
        let plan = plan_family("two-path", &cluster, Scale::Small).unwrap();
        let seq = plan.execute_with(&EngineConfig::sequential()).unwrap();
        let par = plan.execute_with(&EngineConfig::parallel(8)).unwrap();
        assert_eq!(seq.measured_q, par.measured_q);
        assert_eq!(seq.measured_r, par.measured_r);
        assert_eq!(seq.outputs, par.outputs);
    }
}
