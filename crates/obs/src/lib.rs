#![warn(missing_docs)]

//! Structured observability for the execution stack: a sharded span
//! recorder and a counters/histograms registry.
//!
//! The engine ([`mr-sim`]), the resident worker pool, the retained delta
//! path, the DAG executor, and the planner's cache are all instrumented
//! with *spans* (named intervals) and *counters*. This crate is the
//! substrate they write into; it deliberately depends on nothing, so
//! every other crate in the workspace can depend on it without cycles.
//!
//! # The recorder
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! instrumentation site while off (the `engine_obs` bench pins the
//! disabled-mode overhead). [`record`] turns it on around a closure and
//! returns the collected [`Trace`] next to the closure's result:
//!
//! ```
//! let (sum, trace) = mr_obs::record(|| {
//!     let _g = mr_obs::span("add");
//!     1 + 1
//! });
//! assert_eq!(sum, 2);
//! assert_eq!(trace.span_count("add"), 1);
//! ```
//!
//! Every thread that records during a session gets its own **lane** — a
//! per-worker buffer named after the thread (the resident pool's workers
//! are `mr-pool-0`, `mr-pool-1`, …), so recording is contention-free on
//! the hot path. At collection the lanes are merged deterministically:
//! lanes sort by name, and each lane's events sort by start time with
//! longer (enclosing) spans first, which is exactly parent-before-child
//! order for the nested spans a lane produces.
//!
//! Spans are recorded *transactionally*: a [`SpanGuard`] stamps its
//! start on construction and emits one closed-interval event on drop.
//! There is no open-`Begin`/separate-`End` pair to split, so a collected
//! trace can never contain a half-open span — [`Trace::check_well_formed`]
//! verifies the remaining structural invariants (per-lane start-time
//! ordering and strict interval nesting, never partial overlap).
//!
//! Sessions serialise on a process-wide lock (concurrent [`record`]
//! calls queue), and guards carry the session epoch, so a guard that
//! outlives its session records nothing rather than leaking into the
//! next trace.
//!
//! # The metrics hub
//!
//! [`MetricsHub`] is a named-counter/histogram registry designed as the
//! scrape surface a future `mr-serve` daemon would expose. Counters are
//! always on (an atomic add is the whole cost); the process-wide hub is
//! [`global`], and subsystems that need per-instance stats (the plan
//! cache) own a private hub with the same API.
//!
//! # Exports
//!
//! [`Trace::chrome_json`] renders the Chrome `trace_event` format, which
//! loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! Aggregated JSON snapshots are rendered by the consumer (`repro
//! trace`) so they can share `mr-bench`'s JSON builder.
//!
//! [`mr-sim`]: https://docs.rs/mr-sim

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// -----------------------------------------------------------------
// Recorder state.
// -----------------------------------------------------------------

/// The one-word gate every instrumentation site checks first. Relaxed is
/// enough: a site that misses a just-started session records nothing,
/// which is indistinguishable from running slightly earlier.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a recording session is active. One relaxed atomic load — the
/// entire disabled-mode cost of a `span`/`instant` call site.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A span/instant name: static in the common case, owned when a call
/// site labels dynamically (DAG node names). The owned variant is only
/// ever constructed while tracing is on.
#[derive(Debug, Clone)]
enum Name {
    Static(&'static str),
    Owned(String),
}

impl Name {
    fn as_str(&self) -> &str {
        match self {
            Name::Static(s) => s,
            Name::Owned(s) => s,
        }
    }
}

/// One raw event as a lane stores it: absolute instants, converted to
/// session-relative offsets at collection.
#[derive(Debug)]
struct RawEvent {
    name: Name,
    at: Instant,
    /// `Some(dur)` for a closed span, `None` for an instant marker.
    dur: Option<Duration>,
    value: Option<u64>,
    /// True for cross-thread intervals (see [`complete`]): exempt from
    /// the lane's span-nesting discipline.
    asynchronous: bool,
}

/// A per-thread event buffer. Threads append under their own mutex (no
/// cross-thread contention while recording); collection drains it.
#[derive(Debug)]
struct LaneBuf {
    name: String,
    events: Mutex<Vec<RawEvent>>,
}

/// Process-wide recorder state behind [`state`].
struct RecorderState {
    /// Serialises sessions: held for the whole of [`record`].
    session: Mutex<()>,
    /// Bumped per session; guards and thread-lane caches carry it so
    /// stale writers from a previous session are rejected.
    epoch: AtomicU64,
    /// The active session's start instant (collection converts event
    /// instants to offsets from it).
    start: Mutex<Option<Instant>>,
    /// Every lane that wrote during the active session.
    lanes: Mutex<Vec<Arc<LaneBuf>>>,
}

fn state() -> &'static RecorderState {
    static STATE: OnceLock<RecorderState> = OnceLock::new();
    STATE.get_or_init(|| RecorderState {
        session: Mutex::new(()),
        epoch: AtomicU64::new(0),
        start: Mutex::new(None),
        lanes: Mutex::new(Vec::new()),
    })
}

/// Locks a mutex, recovering from poisoning (a panicking traced closure
/// must not wedge every later session).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// This thread's lane for the epoch it last recorded in.
    static LANE: RefCell<Option<(u64, Arc<LaneBuf>)>> = const { RefCell::new(None) };
}

/// The calling thread's lane for `epoch`, registering a fresh one (named
/// after the thread) on first use per session.
fn lane_for(epoch: u64) -> Arc<LaneBuf> {
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some((e, lane)) = slot.as_ref() {
            if *e == epoch {
                return Arc::clone(lane);
            }
        }
        let mut lanes = lock(&state().lanes);
        let name = match std::thread::current().name() {
            Some(n) => n.to_string(),
            None => format!("anon-{}", lanes.len()),
        };
        let lane = Arc::new(LaneBuf {
            name,
            events: Mutex::new(Vec::new()),
        });
        lanes.push(Arc::clone(&lane));
        drop(lanes);
        *slot = Some((epoch, Arc::clone(&lane)));
        lane
    })
}

/// Appends `event` to the calling thread's lane if the session `epoch`
/// is still the active one.
fn push(epoch: u64, event: RawEvent) {
    if !is_enabled() || state().epoch.load(Ordering::Relaxed) != epoch {
        return;
    }
    lock(&lane_for(epoch).events).push(event);
}

// -----------------------------------------------------------------
// Instrumentation API.
// -----------------------------------------------------------------

/// An open span: created by [`span`]/[`span_with`], recorded as one
/// closed interval when dropped. Inert (a no-op holding no allocation)
/// when tracing is off at construction or the session ended before the
/// drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    live: Option<(Name, Instant, u64)>,
}

impl SpanGuard {
    fn begin(name: Name) -> SpanGuard {
        let epoch = state().epoch.load(Ordering::Relaxed);
        SpanGuard {
            live: Some((name, Instant::now(), epoch)),
        }
    }

    const INERT: SpanGuard = SpanGuard { live: None };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, at, epoch)) = self.live.take() {
            let dur = at.elapsed();
            push(
                epoch,
                RawEvent {
                    name,
                    at,
                    dur: Some(dur),
                    value: None,
                    asynchronous: false,
                },
            );
        }
    }
}

/// Opens a statically named span over the guard's scope.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::begin(Name::Static(name))
}

/// Opens a dynamically labelled span; the label closure only runs (and
/// only allocates) while tracing is on.
#[inline]
pub fn span_with(label: impl FnOnce() -> String) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::begin(Name::Owned(label()))
}

/// Records a point-in-time marker.
#[inline]
pub fn instant(name: &'static str) {
    if !is_enabled() {
        return;
    }
    let epoch = state().epoch.load(Ordering::Relaxed);
    push(
        epoch,
        RawEvent {
            name: Name::Static(name),
            at: Instant::now(),
            dur: None,
            value: None,
            asynchronous: false,
        },
    );
}

/// Records a point-in-time marker carrying a value (an occupancy gauge,
/// a queue depth).
#[inline]
pub fn instant_value(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let epoch = state().epoch.load(Ordering::Relaxed);
    push(
        epoch,
        RawEvent {
            name: Name::Static(name),
            at: Instant::now(),
            dur: None,
            value: Some(value),
            asynchronous: false,
        },
    );
}

/// `Some(now)` while tracing is on — for spans whose start and end live
/// on different threads (a queue wait starts at enqueue on the caller
/// and ends at claim on a worker). Pair with [`complete`].
#[inline]
pub fn now_if_enabled() -> Option<Instant> {
    if is_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records a closed span that `started` at an instant captured earlier
/// (see [`now_if_enabled`]) and ends now, on the calling thread's lane.
///
/// The interval is marked *asynchronous*: its start predates whatever
/// spans the recording thread had open (the wait began on another
/// thread), so it is exempt from the lane's nesting discipline and the
/// Chrome export renders it as an async `b`/`e` pair rather than a
/// stack-nested `X` slice.
#[inline]
pub fn complete(name: &'static str, started: Instant) {
    if !is_enabled() {
        return;
    }
    let epoch = state().epoch.load(Ordering::Relaxed);
    push(
        epoch,
        RawEvent {
            name: Name::Static(name),
            at: started,
            dur: Some(started.elapsed()),
            value: None,
            asynchronous: true,
        },
    );
}

// -----------------------------------------------------------------
// Sessions and collection.
// -----------------------------------------------------------------

/// Resets [`ENABLED`] even if the traced closure panics.
struct EnabledGuard;

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Runs `f` with tracing enabled and returns its result next to the
/// collected [`Trace`].
///
/// Sessions serialise on a process-wide lock; a concurrent `record`
/// blocks until the active one finishes. Recording is process-global —
/// spans from unrelated threads that happen to run during the session
/// land in the trace too (they are closed intervals on their own lanes,
/// so the trace stays well-formed) — and, by the workspace determinism
/// contract, enabling it never perturbs any semantic output.
pub fn record<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    let s = state();
    let _session = lock(&s.session);
    let start = Instant::now();
    *lock(&s.start) = Some(start);
    lock(&s.lanes).clear();
    s.epoch.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    let enabled = EnabledGuard;
    let result = f();
    drop(enabled);
    (result, collect(start))
}

/// Drains the session's lanes into a [`Trace`]: lanes sorted by name,
/// each lane's events sorted by `(start, longest-first)` — parent
/// spans before their children.
fn collect(start: Instant) -> Trace {
    let mut lanes: Vec<Lane> = lock(&state().lanes)
        .drain(..)
        .map(|buf| {
            let mut events: Vec<Event> = lock(&buf.events)
                .drain(..)
                .map(|raw| Event {
                    name: raw.name.as_str().to_string(),
                    ts: raw.at.saturating_duration_since(start),
                    dur: raw.dur,
                    value: raw.value,
                    asynchronous: raw.asynchronous,
                })
                .collect();
            events.sort_by(|a, b| {
                a.ts.cmp(&b.ts)
                    .then_with(|| b.dur.unwrap_or_default().cmp(&a.dur.unwrap_or_default()))
                    .then_with(|| a.name.cmp(&b.name))
            });
            Lane {
                name: buf.name.clone(),
                events,
            }
        })
        .filter(|lane| !lane.events.is_empty())
        .collect();
    lanes.sort_by(|a, b| a.name.cmp(&b.name));
    Trace { lanes }
}

// -----------------------------------------------------------------
// The collected trace.
// -----------------------------------------------------------------

/// One collected event: a closed span (`dur: Some`) or an instant
/// marker (`dur: None`), at offset `ts` from the session start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name, e.g. `engine.map` or `pool.queue_wait`.
    pub name: String,
    /// Offset from the session start.
    pub ts: Duration,
    /// Span length; `None` for instant markers.
    pub dur: Option<Duration>,
    /// Gauge value for instants that carry one.
    pub value: Option<u64>,
    /// True for cross-thread intervals recorded with [`complete`]: their
    /// start predates the recording thread's open spans, so they are
    /// exempt from lane nesting and export as Chrome async events.
    pub asynchronous: bool,
}

/// One thread's merged event sequence, named after the thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lane {
    /// The recording thread's name (`mr-pool-3`, a test name, `anon-N`).
    pub name: String,
    /// Events sorted by start time, enclosing spans first.
    pub events: Vec<Event>,
}

/// A deterministically merged recording session: lanes in name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Per-thread lanes, sorted by lane name.
    pub lanes: Vec<Lane>,
}

impl Trace {
    /// Total number of events across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// How many events named `name` the trace holds (spans and instants).
    pub fn span_count(&self, name: &str) -> usize {
        self.lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.name == name)
            .count()
    }

    /// Per-name aggregates over all span events: `(count, total, max)`
    /// of the span durations, keyed by name in sorted order. Instant
    /// markers aggregate with zero duration.
    pub fn aggregate(&self) -> BTreeMap<String, SpanAggregate> {
        let mut agg: BTreeMap<String, SpanAggregate> = BTreeMap::new();
        for event in self.lanes.iter().flat_map(|l| &l.events) {
            let entry = agg.entry(event.name.clone()).or_default();
            entry.count += 1;
            let dur = event.dur.unwrap_or_default();
            entry.total += dur;
            entry.max = entry.max.max(dur);
        }
        agg
    }

    /// Verifies the structural invariants collection promises: per lane,
    /// events are sorted by start time, and synchronous span intervals
    /// either nest or are disjoint — never partially overlapping.
    /// Asynchronous intervals ([`complete`]) start on another thread, so
    /// they are sort-checked but exempt from the nesting discipline.
    /// Every span is closed by construction (guards record one complete
    /// interval), so a violation here means the recorder itself is
    /// broken.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for lane in &self.lanes {
            let mut prev_ts = Duration::ZERO;
            // Stack of enclosing span end-offsets.
            let mut open: Vec<Duration> = Vec::new();
            for event in &lane.events {
                if event.ts < prev_ts {
                    return Err(format!(
                        "lane {}: event {} starts before its predecessor",
                        lane.name, event.name
                    ));
                }
                prev_ts = event.ts;
                while let Some(&enclosing_end) = open.last() {
                    if enclosing_end <= event.ts {
                        open.pop();
                    } else {
                        break;
                    }
                }
                if event.asynchronous {
                    continue;
                }
                if let Some(dur) = event.dur {
                    let end = event.ts + dur;
                    if let Some(&enclosing_end) = open.last() {
                        if end > enclosing_end {
                            return Err(format!(
                                "lane {}: span {} partially overlaps its enclosing span",
                                lane.name, event.name
                            ));
                        }
                    }
                    open.push(end);
                }
            }
        }
        Ok(())
    }

    /// Renders the Chrome `trace_event` format (JSON Object Format with
    /// a `traceEvents` array of `X`/`b`/`e`/`i`/`M` events, timestamps
    /// in microseconds) — loadable in Perfetto or `chrome://tracing`.
    /// Synchronous spans export as stack-nested `X` slices; asynchronous
    /// intervals (queue waits) as `b`/`e` pairs with per-event ids, so
    /// their cross-thread extents never corrupt the thread stacks.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push_event = |s: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&s);
        };
        let mut async_id: u64 = 0;
        for (tid, lane) in self.lanes.iter().enumerate() {
            push_event(
                format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": {}}}}}",
                    json_string(&lane.name)
                ),
                &mut out,
            );
            for event in &lane.events {
                let ts = micros(event.ts);
                let rendered = match event.dur {
                    Some(dur) if event.asynchronous => {
                        async_id += 1;
                        let name = json_string(&event.name);
                        let end = micros(event.ts + dur);
                        push_event(
                            format!(
                                "{{\"ph\": \"b\", \"pid\": 1, \"tid\": {tid}, \"name\": {name}, \
                                 \"cat\": \"mr\", \"id\": \"0x{async_id:x}\", \"ts\": {ts}}}",
                            ),
                            &mut out,
                        );
                        format!(
                            "{{\"ph\": \"e\", \"pid\": 1, \"tid\": {tid}, \"name\": {name}, \
                             \"cat\": \"mr\", \"id\": \"0x{async_id:x}\", \"ts\": {end}}}",
                        )
                    }
                    Some(dur) => format!(
                        "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"name\": {}, \
                         \"cat\": \"mr\", \"ts\": {ts}, \"dur\": {}}}",
                        json_string(&event.name),
                        micros(dur)
                    ),
                    None => {
                        let args = match event.value {
                            Some(v) => format!(", \"args\": {{\"value\": {v}}}"),
                            None => String::new(),
                        };
                        format!(
                            "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {tid}, \"name\": {}, \
                             \"cat\": \"mr\", \"s\": \"t\", \"ts\": {ts}{args}}}",
                            json_string(&event.name)
                        )
                    }
                };
                push_event(rendered, &mut out);
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Per-name span statistics from [`Trace::aggregate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Number of events with this name.
    pub count: u64,
    /// Sum of span durations (zero for instants).
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

/// Microseconds with fixed millisecond-precision rendering — the
/// `trace_event` timestamp unit.
fn micros(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// A JSON string literal (quoted, escaped) — self-contained so this
/// crate stays dependency-free.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// -----------------------------------------------------------------
// The metrics hub.
// -----------------------------------------------------------------

/// A monotonically increasing counter handle — an `Arc`'d atomic, so
/// call sites clone it once and pay one atomic add per increment.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free histogram cell: count/sum/min/max over observed values.
#[derive(Debug)]
struct Histo {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// One histogram's statistics at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

/// A named counter/histogram registry — the scrape surface.
///
/// The process-wide instance is [`global`]; subsystems that need
/// per-instance stats (e.g. `PlanCache`) own a private hub. Counter
/// handles are get-or-create by name ([`MetricsHub::counter`]) and cheap
/// to clone; [`MetricsHub::counters`] / [`MetricsHub::histograms`]
/// snapshot everything in name order for export.
#[derive(Debug, Default)]
pub struct MetricsHub {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Arc<Histo>>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use. Clone the
    /// handle out of hot paths so increments skip the registry lock.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock(&self.counters);
        match counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Current value of the counter named `name` (zero if it was never
    /// touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).map_or(0, Counter::get)
    }

    /// Records `value` into the histogram named `name`, creating it on
    /// first use.
    pub fn observe(&self, name: &str, value: u64) {
        let cell = {
            let mut histograms = lock(&self.histograms);
            match histograms.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = Arc::new(Histo::default());
                    histograms.insert(name.to_string(), Arc::clone(&h));
                    h
                }
            }
        };
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.min.fetch_min(value, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The histogram named `name`, if it has any observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        lock(&self.histograms)
            .get(name)
            .map(|h| HistogramSnapshot {
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                min: h.min.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
            })
            .filter(|s| s.count > 0)
    }

    /// Every counter as `(name, value)`, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Every non-empty histogram as `(name, snapshot)`, in name order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let cells: Vec<String> = lock(&self.histograms).keys().cloned().collect();
        cells
            .into_iter()
            .filter_map(|name| self.histogram(&name).map(|s| (name, s)))
            .collect()
    }
}

/// The process-wide hub the execution stack's always-on counters live
/// in (`pool.*`, `engine.*`, `delta.*`, `dag.*`).
pub fn global() -> &'static MetricsHub {
    static GLOBAL: OnceLock<MetricsHub> = OnceLock::new();
    GLOBAL.get_or_init(MetricsHub::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_records_nothing() {
        assert!(!is_enabled());
        let g = span("never");
        instant("never");
        instant_value("never", 7);
        assert!(now_if_enabled().is_none());
        drop(g);
        let ((), trace) = record(|| {});
        assert_eq!(trace.total_events(), 0);
    }

    #[test]
    fn record_collects_nested_spans_in_parent_first_order() {
        let (value, trace) = record(|| {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_micros(50));
            }
            instant_value("gauge", 3);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(trace.lanes.len(), 1);
        let names: Vec<&str> = trace.lanes[0]
            .events
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, vec!["outer", "inner", "gauge"]);
        assert!(trace.lanes[0].events[0].dur >= trace.lanes[0].events[1].dur);
        assert_eq!(trace.lanes[0].events[2].value, Some(3));
        trace
            .check_well_formed()
            .expect("nested spans are well-formed");
        let agg = trace.aggregate();
        assert_eq!(agg["outer"].count, 1);
        assert!(agg["outer"].total >= agg["inner"].total);
    }

    #[test]
    fn lanes_merge_across_threads_sorted_by_name() {
        let ((), trace) = record(|| {
            let spawn = |name: &str| {
                std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(|| {
                        let _g = span("work");
                    })
                    .expect("spawn")
            };
            let b = spawn("lane-b");
            let a = spawn("lane-a");
            a.join().unwrap();
            b.join().unwrap();
        });
        let names: Vec<&str> = trace.lanes.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["lane-a", "lane-b"]);
        assert_eq!(trace.span_count("work"), 2);
        trace.check_well_formed().expect("one span per lane");
    }

    #[test]
    fn guards_outliving_their_session_record_nothing() {
        let (guard, trace) = record(|| span("straddler"));
        assert_eq!(trace.span_count("straddler"), 0);
        drop(guard); // after the session: must not panic, must not leak.
        let ((), next) = record(|| {});
        assert_eq!(next.span_count("straddler"), 0);
    }

    #[test]
    fn cross_thread_completes_record_the_enqueue_to_claim_interval() {
        let ((), trace) = record(|| {
            let t0 = now_if_enabled().expect("enabled inside record");
            std::thread::sleep(Duration::from_micros(100));
            complete("queue_wait", t0);
        });
        assert_eq!(trace.span_count("queue_wait"), 1);
        let event = &trace.lanes[0].events[0];
        assert!(event.dur.expect("a complete is a span") >= Duration::from_micros(100));
        assert!(event.asynchronous, "completes are cross-thread intervals");
        // Chrome export renders the interval as an async b/e pair.
        let json = trace.chrome_json();
        assert!(json.contains("\"ph\": \"b\""), "{json}");
        assert!(json.contains("\"ph\": \"e\""), "{json}");
    }

    #[test]
    fn well_formedness_rejects_partial_overlap() {
        let trace = Trace {
            lanes: vec![Lane {
                name: "bad".into(),
                events: vec![
                    Event {
                        name: "a".into(),
                        ts: Duration::from_micros(0),
                        dur: Some(Duration::from_micros(10)),
                        value: None,
                        asynchronous: false,
                    },
                    Event {
                        name: "b".into(),
                        ts: Duration::from_micros(5),
                        dur: Some(Duration::from_micros(10)),
                        value: None,
                        asynchronous: false,
                    },
                ],
            }],
        };
        let err = trace.check_well_formed().expect_err("partial overlap");
        assert!(err.contains("partially overlaps"), "{err}");

        // The same shape is legal when the straddling interval is a
        // cross-thread (asynchronous) one: its start lives on another
        // thread, so it is exempt from the lane's nesting discipline.
        let mut relaxed = trace;
        relaxed.lanes[0].events[1].asynchronous = true;
        relaxed.check_well_formed().expect("async overlap is legal");
    }

    #[test]
    fn chrome_json_renders_thread_metadata_and_x_events() {
        let ((), trace) = record(|| {
            let _g = span("engine.map");
            instant_value("pool.occupancy", 2);
        });
        let json = trace.chrome_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"name\": \"engine.map\""));
        assert!(json.contains("\"args\": {\"value\": 2}"));
    }

    #[test]
    fn json_strings_escape_controls_and_quotes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn hub_counters_are_shared_by_name() {
        let hub = MetricsHub::new();
        let a = hub.counter("x");
        let b = hub.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(hub.counter_value("x"), 3);
        assert_eq!(hub.counter_value("absent"), 0);
        assert_eq!(hub.counters(), vec![("x".to_string(), 3)]);
    }

    #[test]
    fn hub_histograms_track_count_sum_min_max() {
        let hub = MetricsHub::new();
        assert_eq!(hub.histogram("lat"), None);
        for v in [5u64, 1, 9] {
            hub.observe("lat", v);
        }
        let snap = hub.histogram("lat").expect("observed");
        assert_eq!(
            snap,
            HistogramSnapshot {
                count: 3,
                sum: 15,
                min: 1,
                max: 9
            }
        );
        assert_eq!(hub.histograms().len(), 1);
    }

    #[test]
    fn global_hub_is_one_instance() {
        let c = global().counter("obs.test.global");
        c.incr();
        assert!(global().counter_value("obs.test.global") >= 1);
    }
}
