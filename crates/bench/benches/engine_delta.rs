//! Incremental-execution microbenchmark: serving a changing instance
//! from a retained [`mr_sim::DeltaJob`] versus re-running it from
//! scratch.
//!
//! The workload is `mr_bench::baseline::delta_schema()` — 200k resident
//! inputs fanned over 32k reducers at replication rate 3, so each
//! reducer holds ~18 inputs and a small churn dirties a small fraction
//! of them. Two groups:
//! * `full_rerun` — the non-incremental alternative: execute the whole
//!   instance through `run_schema` every time it changes,
//! * `steady_churn` — one `DeltaJob::apply` per iteration, removing the
//!   256 previously-added inputs and adding 256 fresh ones (the
//!   instance size never drifts), so only the dirty reducers
//!   re-execute.
//!
//! `record_bench` re-times the same shapes in process when refreshing
//! the committed `BENCH_delta.json` baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mr_bench::baseline::delta_schema;
use mr_sim::{run_schema, run_schema_retained, Delta, EngineConfig, Pipeline, Seq};
use std::hint::black_box;

/// Resident instance size — matches `BENCH_delta.json`'s workload.
const N: u64 = 200_000;

/// Inputs removed and added per churn step.
const K: u64 = 256;

fn config(workers: usize) -> EngineConfig {
    if workers == 1 {
        EngineConfig::sequential()
    } else {
        EngineConfig::parallel(workers)
    }
}

fn bench(c: &mut Criterion) {
    let schema = delta_schema();
    let inputs: Vec<u64> = (0..N).collect();

    let mut grp = c.benchmark_group("engine_delta/full_rerun");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(N));
    for workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, &workers| {
                let cfg = config(workers);
                bencher.iter(|| {
                    run_schema(black_box(&inputs), &schema, &cfg)
                        .unwrap()
                        .1
                        .reducers
                })
            },
        );
    }
    grp.finish();

    let mut grp = c.benchmark_group("engine_delta/steady_churn");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(2 * K));
    for workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, &workers| {
                let cfg = config(workers);
                let mut job = run_schema_retained(&inputs, schema, Pipeline::Columnar, &cfg)
                    .expect("no budget configured");
                let mut last: Vec<Seq> = (0..K).collect();
                let mut next_value = N;
                bencher.iter(|| {
                    let fresh: Vec<u64> = (next_value..next_value + K).collect();
                    next_value += K;
                    let outcome = job
                        .apply(&Delta::new(fresh, std::mem::take(&mut last)))
                        .expect("no budget configured");
                    last = outcome.added_seqs.collect();
                    black_box(outcome.metrics.dirty_reducers)
                })
            },
        );
    }
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
