//! Bench for **Figure 1**: the full splitting sweep along the hyperbola.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_bench::experiments::fig1_hamming;
use mr_core::model::MappingSchema;
use mr_core::problems::hamming::SplittingSchema;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);

    g.bench_function("full_series_b12", |bencher| {
        bencher.iter(|| fig1_hamming::series(black_box(12)))
    });

    // Per-point assignment cost: mapping every input through the schema.
    for c_param in [2u32, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("assign_all_b16", c_param),
            &c_param,
            |bencher, &c_param| {
                let s = SplittingSchema::new(16, c_param);
                bencher.iter(|| {
                    let mut total = 0usize;
                    for w in 0..(1u64 << 16) {
                        total += MappingSchema::assign(&s, black_box(&w)).len();
                    }
                    total
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
