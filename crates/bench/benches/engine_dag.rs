//! Round-structure search benchmark: what does searching and running a
//! *DAG* of rounds cost?
//!
//! The first group is the full path — enumerate every round structure
//! for the three DAG workloads (matmul trees and tilings, multi-round
//! Hamming splitting, join→aggregate pipelines), price them per round,
//! execute each winner under its own per-round budgets. The second
//! group isolates the multi-round data plane: a q-budget of 8 (below
//! n² = 16 at Small scale) forces the matmul winner to be a genuine
//! aggregation tree staged through `DagJob`, so this times plan +
//! multi-round execution with the search mostly amortised.
//!
//! Baseline committed as `BENCH_dag.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_core::family::Scale;
use mr_plan::{plan_all_dags, plan_dag, ClusterSpec, DagWorkload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("engine_dag");
    grp.sample_size(10);
    grp.bench_function("search_and_execute/small_scale", |b| {
        b.iter(|| {
            let plans = plan_all_dags(black_box(&ClusterSpec::default()), Scale::Small).unwrap();
            plans
                .iter()
                .map(|p| p.execute().expect("plan fits its own budget").outputs)
                .sum::<u64>()
        })
    });
    grp.bench_function("matmul_tree/budget8", |b| {
        b.iter(|| {
            let cluster = ClusterSpec::default().with_q_budget(8);
            let plan = plan_dag(black_box(DagWorkload::MatMul), &cluster, Scale::Small).unwrap();
            plan.execute().expect("plan fits its own budget").outputs
        })
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
