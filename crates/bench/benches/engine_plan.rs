//! Planner benchmark: how much does *deciding* cost relative to *doing*?
//!
//! `plan_all` prices every family's whole grid with map-side censuses
//! (plus one simplex solve for the join exponents) — no engine rounds —
//! so planning the default-scale registry should sit orders of magnitude
//! below executing it (compare `engine_frontier`'s sweep times). The
//! second group executes each plan's single chosen point at Small scale:
//! the planner's end-to-end "decide then run one schema" path.
//!
//! Baseline committed as `BENCH_plan.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_core::family::Scale;
use mr_plan::{plan_all, ClusterSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("engine_plan");
    grp.sample_size(10);
    grp.bench_function("plan_all/default_scale", |b| {
        b.iter(|| {
            let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Default).unwrap();
            plans.len()
        })
    });
    grp.bench_function("plan_and_execute/small_scale", |b| {
        b.iter(|| {
            let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Small).unwrap();
            plans
                .iter()
                .map(|p| p.execute().expect("plan fits its own budget").outputs)
                .sum::<u64>()
        })
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
