//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * two-phase matmul block aspect ratio (the §6.3 `s = 2t` optimum vs
//!   square and inverted blocks at equal budget),
//! * Shares with optimised vs naive equal shares (communication and
//!   runtime),
//! * map-side combining on vs off for an aggregation job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::problems::join::{optimize_shares, Database, Query, SharesSchema};
use mr_core::problems::matmul::{Matrix, TwoPhaseMatMul};
use mr_sim::{run_round, run_round_combined, EngineConfig, FnCombiner, FnMapper, FnReducer};
use std::hint::black_box;

fn matmul_aspect_ratio(c: &mut Criterion) {
    let n = 32u32;
    let a = Matrix::random(n as usize, 1);
    let b = Matrix::random(n as usize, 2);
    let mut grp = c.benchmark_group("ablation_matmul_aspect");
    grp.sample_size(15);
    // Equal budget 2st = 64; §6.3 says (8,4) is optimal.
    for (s, t) in [(8u32, 4u32), (4, 8), (16, 2), (2, 16)] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(format!("s{s}_t{t}")),
            &(s, t),
            |bencher, &(s, t)| {
                let alg = TwoPhaseMatMul::new(n, s, t);
                bencher.iter(|| {
                    alg.run(black_box(&a), &b, &EngineConfig::sequential())
                        .unwrap()
                        .1
                        .total_communication()
                })
            },
        );
    }
    grp.finish();
}

fn shares_optimized_vs_equal(c: &mut Criterion) {
    let query = Query::chain(3);
    let db = Database::random(&query, 24, 300, 13);
    let mut grp = c.benchmark_group("ablation_shares");
    grp.sample_size(15);

    let optimized = optimize_shares(&query, &[300; 3], 16);
    let equal = vec![2u64, 2, 2, 2]; // same p = 16, spread naively
    for (name, shares) in [("optimized", optimized), ("equal", equal)] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(name),
            &shares,
            |bencher, shares| {
                let schema = SharesSchema::new(query.clone(), shares.clone());
                bencher.iter(|| {
                    schema
                        .run(black_box(&db), &EngineConfig::sequential())
                        .unwrap()
                        .1
                        .kv_pairs
                })
            },
        );
    }
    grp.finish();
}

fn combiner_on_off(c: &mut Criterion) {
    let docs: Vec<String> = (0..5_000)
        .map(|i| format!("k{} k{} k{} k{}", i % 50, i % 7, i % 13, i % 50))
        .collect();
    let mapper = FnMapper(|doc: &String, emit: &mut dyn FnMut(String, u64)| {
        for w in doc.split_whitespace() {
            emit(w.to_string(), 1);
        }
    });
    let reducer = FnReducer(
        |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        },
    );
    let combiner = FnCombiner(|_: &String, acc: &mut u64, v: u64| *acc += v);

    let mut grp = c.benchmark_group("ablation_combiner");
    grp.sample_size(15);
    grp.bench_function("off", |bencher| {
        bencher.iter(|| {
            run_round(
                black_box(&docs),
                &mapper,
                &reducer,
                &EngineConfig::parallel(4),
            )
            .unwrap()
            .1
            .kv_pairs
        })
    });
    grp.bench_function("on", |bencher| {
        bencher.iter(|| {
            run_round_combined(
                black_box(&docs),
                &mapper,
                &combiner,
                &reducer,
                &EngineConfig::parallel(4),
            )
            .unwrap()
            .1
            .round
            .kv_pairs
        })
    });
    grp.finish();
}

criterion_group!(
    benches,
    matmul_aspect_ratio,
    shares_optimized_vs_equal,
    combiner_on_off
);
criterion_main!(benches);
