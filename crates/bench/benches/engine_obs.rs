//! Observability overhead benchmark: the same engine round with the
//! mr-obs recorder disabled (the shipping default — every instrumentation
//! site reduces to one relaxed atomic load) and enabled (spans recorded
//! into per-worker lanes and merged).
//!
//! `full_round/disabled` vs `full_round/traced` is the pair the <3%
//! disabled-overhead target is judged on: `disabled` runs the exact
//! instrumented binary with recording off, so its cost over a
//! hypothetical uninstrumented build *is* the disabled-mode overhead the
//! tracing subsystem promises to keep near zero. `traced` prices the
//! enabled path (span timestamps, lane pushes, merge) for when a run is
//! actually being recorded.
//!
//! Baseline committed as `BENCH_obs.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_bench::baseline::delta_schema;
use mr_sim::{run_schema, EngineConfig};
use std::hint::black_box;

/// Inputs in the full-round instance (matches `engine_pool`'s baseline
/// workload, so the two benches price the same round).
const N: u64 = 200_000;

/// Engine fan-out width.
const WORKERS: usize = 8;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("engine_obs");
    grp.sample_size(10);
    let schema = delta_schema();
    let base: Vec<u64> = (0..N).collect();
    let cfg = EngineConfig::parallel(WORKERS);

    grp.bench_function("full_round/disabled", |b| {
        b.iter(|| {
            black_box(
                run_schema(black_box(&base), &schema, &cfg)
                    .unwrap()
                    .1
                    .reducers,
            )
        })
    });

    grp.bench_function("full_round/traced", |b| {
        b.iter(|| {
            let (reducers, trace) = mr_obs::record(|| {
                run_schema(black_box(&base), &schema, &cfg)
                    .unwrap()
                    .1
                    .reducers
            });
            black_box((reducers, trace.total_events()))
        })
    });

    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
