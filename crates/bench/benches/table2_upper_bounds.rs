//! Bench for **Table 2**: cost of exhaustively validating each
//! constructive algorithm against its problem model.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{HammingProblem, SplittingSchema};
use mr_core::problems::matmul::{MatMulProblem, OnePhaseSchema};
use mr_core::problems::triangle::{NodePartitionSchema, TriangleProblem};
use mr_core::problems::two_path::{BucketPairSchema, TwoPathProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_validate");
    g.sample_size(20);

    g.bench_function("hamming_splitting_b10_c2", |bencher| {
        let p = HammingProblem::distance_one(10);
        let s = SplittingSchema::new(10, 2);
        bencher.iter(|| validate_schema(black_box(&p), black_box(&s)))
    });

    g.bench_function("triangles_partition_n20_k4", |bencher| {
        let p = TriangleProblem::new(20);
        let s = NodePartitionSchema::new(20, 4);
        bencher.iter(|| validate_schema(black_box(&p), black_box(&s)))
    });

    g.bench_function("two_paths_bucket_n20_k4", |bencher| {
        let p = TwoPathProblem::new(20);
        let s = BucketPairSchema::new(20, 4);
        bencher.iter(|| validate_schema(black_box(&p), black_box(&s)))
    });

    g.bench_function("matmul_tiling_n12_s4", |bencher| {
        let p = MatMulProblem::new(12);
        let s = OnePhaseSchema::new(12, 4);
        bencher.iter(|| validate_schema(black_box(&p), black_box(&s)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
