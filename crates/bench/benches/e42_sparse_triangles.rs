//! Bench for **§4.2**: the distributed triangle algorithm on sparse
//! graphs, across group counts, plus the serial baseline for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::problems::triangle::NodePartitionSchema;
use mr_graph::{gen, subgraph};
use mr_sim::{run_schema, EngineConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::gnm(200, 2000, 99);
    let mut grp = c.benchmark_group("e42_triangles");
    grp.sample_size(20);

    grp.bench_function("serial_baseline", |bencher| {
        bencher.iter(|| subgraph::triangle_count(black_box(&g)))
    });

    for k in [2u32, 4, 8] {
        grp.bench_with_input(BenchmarkId::new("mapreduce_seq", k), &k, |bencher, &k| {
            let schema = NodePartitionSchema::new(200, k);
            bencher.iter(|| {
                run_schema::<_, [u32; 3], _>(
                    black_box(g.edges()),
                    &schema,
                    &EngineConfig::sequential(),
                )
                .unwrap()
                .0
                .len()
            })
        });
    }

    grp.bench_function("mapreduce_par4_k4", |bencher| {
        let schema = NodePartitionSchema::new(200, 4);
        bencher.iter(|| {
            run_schema::<_, [u32; 3], _>(black_box(g.edges()), &schema, &EngineConfig::parallel(4))
                .unwrap()
                .0
                .len()
        })
    });

    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
