//! Bench for **§6**: one-phase vs two-phase matrix multiplication on the
//! simulator, plus the serial product baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::problems::matmul::problem::run_one_phase;
use mr_core::problems::matmul::{Matrix, OnePhaseSchema, TwoPhaseMatMul};
use mr_sim::EngineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 32u32;
    let a = Matrix::random(n as usize, 61);
    let b = Matrix::random(n as usize, 62);
    let mut grp = c.benchmark_group("t6_matmul");
    grp.sample_size(20);

    grp.bench_function("serial_multiply", |bencher| {
        bencher.iter(|| black_box(&a).multiply(black_box(&b)))
    });

    for q in [256u64, 1024] {
        grp.bench_with_input(BenchmarkId::new("one_phase", q), &q, |bencher, &q| {
            let s = (q / (2 * n as u64)) as u32;
            let s = (1..=s.min(n))
                .rev()
                .find(|d| n.is_multiple_of(*d))
                .unwrap_or(1);
            let schema = OnePhaseSchema::new(n, s);
            bencher.iter(|| {
                run_one_phase(black_box(&a), &b, &schema, &EngineConfig::sequential()).unwrap()
            })
        });
        grp.bench_with_input(BenchmarkId::new("two_phase", q), &q, |bencher, &q| {
            let alg = TwoPhaseMatMul::for_budget(n, q);
            bencher.iter(|| {
                alg.run(black_box(&a), &b, &EngineConfig::sequential())
                    .unwrap()
            })
        });
    }

    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
