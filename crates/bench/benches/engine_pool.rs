//! Resident worker pool benchmark: the pooled execution substrate
//! against fresh scoped threads, on the fan-out shapes where spawn cost
//! shows up.
//!
//! Every group runs the same workload twice — `Executor::Pool` (the
//! default: morsels queued to the resident, parked-idle worker pool) and
//! `Executor::Scoped` (the retained oracle: a `std::thread::scope` spawn
//! per fan-out) — so the pair directly prices thread spawn/join against
//! queue-and-wake. `full_round` is one big schema round (three parallel
//! phases per round: map, partition-group, reduce); `steady_churn` is the
//! incremental regime where rounds are tiny and frequent, so per-round
//! substrate overhead dominates; `dag_staged` stages a diamond DAG whose
//! level fan-outs nest pool-backed rounds inside pool-backed nodes.
//!
//! Baseline committed as `BENCH_pool.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_bench::baseline::{delta_schema, pool_dag};
use mr_sim::{run_schema, run_schema_retained, Delta, EngineConfig, Executor, Pipeline, Seq};
use std::hint::black_box;

/// Resident inputs in the full-round / churn instance (matches
/// `engine_delta`'s baseline workload).
const N: u64 = 200_000;

/// Inputs removed *and* added per churn step.
const K: u64 = 256;

/// Fan-out width for every group.
const WORKERS: usize = 8;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("engine_pool");
    grp.sample_size(10);
    let schema = delta_schema();
    let base: Vec<u64> = (0..N).collect();
    let dag_inputs: Vec<u64> = (0..20_000u64).collect();
    for executor in Executor::ALL {
        let cfg = EngineConfig::parallel(WORKERS).with_executor(executor);

        grp.bench_function(format!("full_round/{}", executor.name()), |b| {
            b.iter(|| {
                black_box(
                    run_schema(black_box(&base), &schema, &cfg)
                        .unwrap()
                        .1
                        .reducers,
                )
            })
        });

        let mut job = run_schema_retained(&base, schema, Pipeline::Columnar, &cfg)
            .expect("no budget configured");
        let mut last: Vec<Seq> = {
            let outcome = job
                .apply(&Delta::add((N..N + K).collect()))
                .expect("no budget configured");
            outcome.added_seqs.collect()
        };
        let mut next_value = N + K;
        grp.bench_function(format!("steady_churn/{}", executor.name()), |b| {
            b.iter(|| {
                let fresh: Vec<u64> = (next_value..next_value + K).collect();
                next_value += K;
                let outcome = job
                    .apply(&Delta::new(fresh, std::mem::take(&mut last)))
                    .expect("no budget configured");
                last = outcome.added_seqs.collect();
                black_box(outcome.metrics.dirty_reducers)
            })
        });

        let dag = pool_dag();
        grp.bench_function(format!("dag_staged/{}", executor.name()), |b| {
            b.iter(|| {
                black_box(
                    dag.run(black_box(&dag_inputs), &cfg)
                        .expect("no budget set")
                        .1
                        .rounds
                        .len(),
                )
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
