//! Engine microbenchmark: raw map-shuffle-reduce throughput, sequential
//! vs parallel, on the canonical word-count job (Example 2.5) plus a
//! shuffle-bound high-key-cardinality workload where the partitioned
//! shuffle — not the map or reduce functions — is the dominant stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mr_sim::{run_round, EngineConfig, FnMapper, FnReducer};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Synthetic corpus: 20k "documents" of 8 short words each.
    let docs: Vec<String> = (0..20_000)
        .map(|i| {
            (0..8)
                .map(|j| format!("w{}", (i * 31 + j * 7) % 500))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let mapper = FnMapper(|doc: &String, emit: &mut dyn FnMut(String, u64)| {
        for w in doc.split_whitespace() {
            emit(w.to_string(), 1);
        }
    });
    let reducer = FnReducer(
        |k: &String, vs: &[u64], emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        },
    );

    let mut grp = c.benchmark_group("engine_wordcount");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(docs.len() as u64));

    for workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, &workers| {
                let cfg = if workers == 1 {
                    EngineConfig::sequential()
                } else {
                    EngineConfig::parallel(workers)
                };
                bencher.iter(|| {
                    run_round(black_box(&docs), &mapper, &reducer, &cfg)
                        .unwrap()
                        .1
                        .outputs
                })
            },
        );
    }

    grp.finish();
}

/// Shuffle-bound workload: trivial map and reduce over 200k distinct u64
/// keys, so wall-clock is dominated by grouping, sorting, and merging —
/// the stage the hash-partitioned shuffle spreads across workers.
fn bench_shuffle_bound(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..200_000u64).collect();
    let mapper = FnMapper(|x: &u64, emit: &mut dyn FnMut(u64, u64)| {
        // Multiply by a large odd constant so key order differs from
        // input order and every BTree insertion pays for its search.
        emit(x.wrapping_mul(0x9E37_79B9_7F4A_7C15), *x)
    });
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.len() as u64))
    });

    let mut grp = c.benchmark_group("engine_shuffle_bound");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(inputs.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, &workers| {
                let cfg = if workers == 1 {
                    EngineConfig::sequential()
                } else {
                    EngineConfig::parallel(workers)
                };
                bencher.iter(|| {
                    run_round(black_box(&inputs), &mapper, &reducer, &cfg)
                        .unwrap()
                        .1
                        .reducers
                })
            },
        );
    }
    grp.finish();
}

criterion_group!(benches, bench, bench_shuffle_bound);
criterion_main!(benches);
