//! Bench for **§5.4**: bucket-pair 2-path enumeration across bucket
//! counts vs the serial baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::problems::two_path::{BucketPairSchema, PerNodeSchema};
use mr_graph::{gen, subgraph};
use mr_sim::{run_schema, EngineConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::gnm(120, 1200, 7);
    let mut grp = c.benchmark_group("e54_two_paths");
    grp.sample_size(20);

    grp.bench_function("serial_baseline", |bencher| {
        bencher.iter(|| subgraph::two_paths(black_box(&g)).len())
    });

    grp.bench_function("per_node", |bencher| {
        let schema = PerNodeSchema { n: 120 };
        bencher.iter(|| {
            run_schema::<_, (u32, u32, u32), _>(
                black_box(g.edges()),
                &schema,
                &EngineConfig::sequential(),
            )
            .unwrap()
            .0
            .len()
        })
    });

    for k in [2u32, 4, 8] {
        grp.bench_with_input(BenchmarkId::new("bucket_pair", k), &k, |bencher, &k| {
            let schema = BucketPairSchema::new(120, k);
            bencher.iter(|| {
                run_schema::<_, (u32, u32, u32), _>(
                    black_box(g.edges()),
                    &schema,
                    &EngineConfig::sequential(),
                )
                .unwrap()
                .0
                .len()
            })
        });
    }

    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
