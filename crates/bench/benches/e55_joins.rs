//! Bench for **§5.5**: the fractional-edge-cover LP, share optimisation,
//! and Shares join execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::problems::join::{optimize_shares, Database, Query, SharesSchema};
use mr_sim::EngineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("e55_joins");
    grp.sample_size(20);

    grp.bench_function("rho_lp_chain7", |bencher| {
        let q = Query::chain(7);
        bencher.iter(|| black_box(&q).rho())
    });

    grp.bench_function("optimize_shares_chain5_p64", |bencher| {
        let q = Query::chain(5);
        bencher.iter(|| optimize_shares(black_box(&q), &[1000; 5], 64))
    });

    for p in [4u64, 16, 64] {
        grp.bench_with_input(BenchmarkId::new("shares_chain3", p), &p, |bencher, &p| {
            let query = Query::chain(3);
            let db = Database::random(&query, 24, 300, 13);
            let shares = optimize_shares(&query, &[300; 3], p);
            let schema = SharesSchema::new(query, shares);
            bencher.iter(|| {
                schema
                    .run(black_box(&db), &EngineConfig::sequential())
                    .unwrap()
                    .0
                    .len()
            })
        });
    }

    grp.bench_function("serial_join_chain3", |bencher| {
        let query = Query::chain(3);
        let db = Database::random(&query, 24, 300, 13);
        bencher.iter(|| black_box(&db).join(&query).len())
    });

    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
