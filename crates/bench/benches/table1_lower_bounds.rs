//! Bench for **Table 1**: cost of evaluating the lower-bound recipe and of
//! the exhaustive empirical `g(q)` prober that validates it.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_core::problems::hamming::HammingProblem;
use mr_core::problems::triangle::TriangleProblem;
use mr_core::recipe::max_outputs_covered;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");

    g.bench_function("recipe_eval_hamming_b20", |bencher| {
        let p = HammingProblem::distance_one(20);
        let recipe = p.recipe();
        bencher.iter(|| {
            let mut acc = 0.0;
            for log_q in 1..=20u32 {
                acc += recipe.replication_lower_bound(black_box((1u64 << log_q) as f64));
            }
            acc
        })
    });

    g.bench_function("empirical_g_hamming_b4_q6", |bencher| {
        let p = HammingProblem::distance_one(4);
        bencher.iter(|| max_outputs_covered(black_box(&p), 6))
    });

    g.bench_function("empirical_g_triangles_n6_q7", |bencher| {
        let p = TriangleProblem::new(6);
        bencher.iter(|| max_outputs_covered(black_box(&p), 7))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
