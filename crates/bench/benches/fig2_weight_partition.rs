//! Bench for **Figure 2 / §3.4–§3.5**: weight-partition assignment and
//! the exact load/replication accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::model::MappingSchema;
use mr_core::problems::hamming::{WeightSchema2D, WeightSchemaD};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");

    for k in [2u32, 4] {
        g.bench_with_input(
            BenchmarkId::new("assign_all_b16_2d", k),
            &k,
            |bencher, &k| {
                let s = WeightSchema2D::new(16, k);
                bencher.iter(|| {
                    let mut total = 0usize;
                    for w in 0..(1u64 << 16) {
                        total += MappingSchema::assign(&s, black_box(&w)).len();
                    }
                    total
                })
            },
        );
    }

    g.bench_function("exact_accounting_b32", |bencher| {
        bencher.iter(|| {
            let s = WeightSchema2D::new(black_box(32), 2);
            (s.exact_max_load(), s.exact_replication())
        })
    });

    g.bench_function("exact_max_load_4d_b32", |bencher| {
        bencher.iter(|| WeightSchemaD::new(black_box(32), 4, 2).exact_max_load())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
