//! Shuffle-stage microbenchmark: the workload is deliberately
//! shuffle-bound — a trivial mapper (one integer key per input, no
//! allocation) and a trivial reducer (count) over a large key cardinality,
//! so grouping + sorting + merging dominate the round. This is the stage
//! the hash-partitioned shuffle parallelises; before it, the shuffle was
//! the one serial stage left in the hot path.
//!
//! Two distributions:
//! * `uniform_150k` — 300k pairs over 150k distinct keys (the
//!   large-key-cardinality regime of the 2-path and join experiments),
//! * `hot_key_10pct` — same volume but 10% of all pairs hash to a single
//!   hub key, the paper's §1.4 skew caveat at engine level: the hub's
//!   partition caps the speedup (see `RoundMetrics::shuffle`'s
//!   partition-skew ratio).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mr_sim::{run_round, EngineConfig, FnMapper, FnReducer};
use std::hint::black_box;

const N: u64 = 300_000;

fn bench_distribution(c: &mut Criterion, group_name: &str, key_of: fn(u64) -> u64) {
    let inputs: Vec<u64> = (0..N).collect();
    let mapper = FnMapper(move |x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(key_of(*x), *x));
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.len() as u64))
    });

    let mut grp = c.benchmark_group(group_name);
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(N));
    for workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bencher, &workers| {
                let cfg = if workers == 1 {
                    EngineConfig::sequential()
                } else {
                    EngineConfig::parallel(workers)
                };
                bencher.iter(|| {
                    run_round(black_box(&inputs), &mapper, &reducer, &cfg)
                        .unwrap()
                        .1
                        .reducers
                })
            },
        );
    }
    grp.finish();
}

fn bench(c: &mut Criterion) {
    // 150k distinct keys, ~2 values each: maximal grouping work per pair.
    bench_distribution(c, "engine_shuffle/uniform_150k", |x| x % 150_000);
    // One hub key owns 10% of all pairs; the rest spread over 135k keys.
    bench_distribution(c, "engine_shuffle/hot_key_10pct", |x| {
        if x % 10 == 0 {
            u64::MAX
        } else {
            x % 135_000
        }
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
