//! Frontier-sweep benchmark: times the whole empirical q-grid (every
//! family's complete model instance through the engine) at a sweep of
//! fan-out worker counts. The grid has 25 independent points whose costs
//! span orders of magnitude (the Hamming k=1 point does ~500k pair
//! comparisons; the matmul s=8 point a handful), so this is a scheduling
//! benchmark as much as an engine one: the shared-queue fan-out must keep
//! workers busy despite the skewed point costs.
//!
//! Baseline committed as `BENCH_frontier.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_bench::sweep::{sweep_all, SweepConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut grp = c.benchmark_group("engine_frontier/sweep_all");
    grp.sample_size(10);
    for sweep_workers in [1usize, 2, 4, 8] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(sweep_workers),
            &sweep_workers,
            |bencher, &sweep_workers| {
                let cfg = SweepConfig {
                    sweep_workers,
                    ..SweepConfig::default()
                };
                bencher.iter(|| {
                    let rep = sweep_all(black_box(&cfg));
                    rep.families.iter().map(|f| f.points.len()).sum::<usize>()
                })
            },
        );
    }
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
