//! Minimal fixed-width table formatter for the `repro` binary's output.

/// A simple right-aligned text table.
///
/// ```
/// use mr_bench::Table;
/// let mut t = Table::new(&["q", "r"]);
/// t.row(vec!["2".into(), "10".into()]);
/// let rendered = t.render();
/// assert!(rendered.lines().next().unwrap().contains('q'));
/// assert!(rendered.lines().count() == 3); // header, rule, one row
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell/header mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as a JSON array of row objects keyed by header
    /// (cells stay strings — the table holds formatted text, not typed
    /// values), in the shared emission dialect of [`crate::json`].
    ///
    /// ```
    /// use mr_bench::Table;
    /// let mut t = Table::new(&["q", "r"]);
    /// t.row(vec!["2".into(), "10".into()]);
    /// assert_eq!(t.to_json(), "[\n  {\"q\": \"2\", \"r\": \"10\"}\n]\n");
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (ri, row) in self.rows.iter().enumerate() {
            let mut obj = crate::json::Obj::new();
            for (h, cell) in self.headers.iter().zip(row) {
                obj.str(h, cell);
            }
            out.push_str("  ");
            out.push_str(&obj.compact());
            if ri + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly (3 significant decimals, scientific for
/// large magnitudes).
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e7 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn to_json_emits_one_object_per_row() {
        let mut t = Table::new(&["name", "q"]);
        t.row(vec!["a\"b".into(), "1".into()]);
        t.row(vec!["c".into(), "2".into()]);
        let j = t.to_json();
        assert_eq!(
            j,
            "[\n  {\"name\": \"a\\\"b\", \"q\": \"1\"},\n  {\"name\": \"c\", \"q\": \"2\"}\n]\n"
        );
    }

    #[test]
    fn to_json_empty_table_is_empty_array() {
        assert_eq!(Table::new(&["x"]).to_json(), "[\n]\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.500");
        assert_eq!(fmt(123456789.0), "1.235e8");
    }
}
